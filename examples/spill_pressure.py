"""How spill code erodes performance as the register file shrinks.

Sweeps register budgets for one high-pressure kernel at latency 6 and shows
II, spilled values and traffic density per model -- a per-loop view of the
mechanism behind the paper's Figures 8 and 9.

Run:  python examples/spill_pressure.py
"""

from repro import Model, evaluate_loop
from repro.analysis import format_table
from repro.machine import paper_config
from repro.workloads import make_kernel

BUDGETS = (64, 48, 32, 24, 16, 12)
MODELS = (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED)


def main() -> None:
    loop = make_kernel("state_equation")
    machine = paper_config(6)
    ideal = evaluate_loop(loop, machine, Model.IDEAL)
    print(f"kernel: {loop.name}  ({loop.source})")
    print(
        f"ideal: II={ideal.ii}, needs {ideal.requirement.registers} "
        "registers with infinite supply\n"
    )

    rows = []
    for budget in BUDGETS:
        for model in MODELS:
            ev = evaluate_loop(loop, machine, model, register_budget=budget)
            rows.append(
                (
                    budget,
                    model.value,
                    ev.ii,
                    ev.spilled_values,
                    f"{ideal.ii / ev.ii:.2f}",
                    f"{ev.traffic_density:.2f}",
                )
            )
    print(
        format_table(
            ["budget", "model", "II", "spills", "perf", "density"],
            rows,
            title="register budget sweep (latency 6)",
        )
    )


if __name__ == "__main__":
    main()
