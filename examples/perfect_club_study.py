"""A scaled-down rerun of the paper's whole evaluation (Figures 6-9).

Uses a 120-loop slice of the Perfect-Club-like suite so it finishes in about
a minute; pass a size on the command line to scale up, e.g.::

    python examples/perfect_club_study.py 800      # paper scale

Run:  python examples/perfect_club_study.py
"""

import sys

from repro.experiments import figure6, figure7, figure8, figure9
from repro.workloads import perfect_club_like


def main() -> None:
    n_loops = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    suite = perfect_club_like(n_loops)
    loops = list(suite)
    spill_loops = list(suite.subset(max(16, n_loops // 8)))
    print(
        f"suite: {len(loops)} loops "
        f"({suite.total_trips} total iterations of weight)"
    )

    print("\n" + figure6.format_report(figure6.run_figure6(loops)))
    print("\n" + figure7.format_report(figure7.run_figure7(loops)))
    print(
        f"\n(spill pipeline on a {len(spill_loops)}-loop stratified subset)"
    )
    print("\n" + figure8.format_report(figure8.run_figure8(spill_loops)))
    print("\n" + figure9.format_report(figure9.run_figure9(spill_loops)))


if __name__ == "__main__":
    main()
