"""The hardware argument: what does each register-file organization cost?

Prints the Section 3.2 comparison for a few machine widths, showing why
the non-consistent dual file is attractive: consistent-dual hardware (half
the read ports per subfile, unchanged specifier width) with up to twice the
effective capacity.

Run:  python examples/register_file_cost.py
"""

from repro.experiments.cost import format_report, run_cost_study
from repro.machine import paper_config


def main() -> None:
    studies = [
        run_cost_study(32, machine=paper_config(3)),
        run_cost_study(64, machine=paper_config(3)),
        run_cost_study(128, machine=paper_config(3)),
    ]
    print(format_report(studies))
    print(
        "\nReading: 'non-consistent dual' always matches 'consistent dual'\n"
        "hardware cost -- the difference is purely how the compiler manages\n"
        "it -- while 'doubled unified' pays quadratic port area, a slower\n"
        "access path, and a wider operand specifier in every instruction."
    )


if __name__ == "__main__":
    main()
