"""Quickstart: walk the paper's Section 4.1 example through the pipeline.

Builds the example loop, modulo-schedules it on the example machine
(2 adders, 2 multipliers, 4 load/store units, FP latency 3), and prints the
register requirements of every model -- reproducing the famous 42 / 29 / 23
progression of Tables 2-4.

Run:  python examples/quickstart.py
"""

from repro import Model, modulo_schedule, required_registers
from repro.machine import example_config
from repro.regalloc import lifetimes, total_lifetime
from repro.workloads import example_loop


def main() -> None:
    loop = example_loop()
    machine = example_config()
    print(f"loop: {loop.name}  ({loop.source})")
    print(f"machine: {machine!r}")

    schedule = modulo_schedule(loop.graph, machine)
    print(f"\nmodulo schedule found with II = {schedule.ii}, "
          f"{schedule.stage_count} pipeline stages")
    print(schedule.format_kernel())

    lts = lifetimes(schedule)
    print("\nlifetimes (paper, Table 2):")
    for op in schedule.graph.values():
        lt = lts[op.op_id]
        print(f"  {op.name}: [{lt.start}, {lt.end})  length {lt.length}")
    print(f"  sum = {total_lifetime(lts)}")

    print("\nregister requirements (paper: 42 / 29 / 23):")
    for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
        requirement = required_registers(schedule, model)
        line = f"  {model.value:<12} {requirement.registers:>3} registers"
        if requirement.dual is not None:
            per = requirement.dual.per_cluster
            line += (
                f"   (globals {requirement.dual.global_registers}, "
                f"left {per[0]}, right {per[1]})"
            )
        print(line)


if __name__ == "__main__":
    main()
