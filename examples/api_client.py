"""Drive the typed facade in-process: one Session, every request kind.

The :class:`repro.api.Session` owns the machine defaults, the result
cache, and the engine -- requests are frozen dataclasses that round-trip
through JSON, so everything this script does in-process works identically
over ``python -m repro serve`` (see ``examples/serve_client.py``).

Pass a suite size to scale the experiment/sweep sections up, e.g.::

    python examples/api_client.py 64

Run:  python examples/api_client.py
"""

import json
import sys

from repro.api import (
    EvaluateRequest,
    ExperimentRequest,
    LoopSpec,
    MachineSpec,
    PressureRequest,
    ScheduleRequest,
    Session,
    SweepRequest,
    capabilities,
)


def main() -> None:
    n_loops = int(sys.argv[1]) if len(sys.argv) > 1 else 12

    caps = capabilities()
    print(
        f"capabilities: {len(caps['experiments'])} experiments, "
        f"{len(caps['kernels'])} kernels, "
        f"policies {', '.join(caps['spill_policies'])}"
    )

    with Session(machine=MachineSpec(kind="paper", latency=3)) as session:
        # The Section 4.1 example loop, scheduled on the example machine.
        schedule = session.schedule(
            ScheduleRequest(
                loop=LoopSpec(kind="example"),
                machine=MachineSpec(kind="example"),
            )
        )
        print(
            f"\nschedule: {schedule.loop_name} on {schedule.machine}: "
            f"II={schedule.ii} (MII={schedule.mii}), "
            f"{schedule.stage_count} stages"
        )

        # Register pressure of a kernel under the session's default machine.
        pressure = session.pressure(
            PressureRequest(loop=LoopSpec(kind="kernel", name="daxpy"))
        )
        print(
            f"pressure: {pressure.loop_name}: unified {pressure.unified}, "
            f"partitioned {pressure.partitioned}, "
            f"swapped {pressure.swapped} registers"
        )

        # Full spill-pipeline evaluation; the request is pure data.
        request = EvaluateRequest(
            loop=LoopSpec(kind="kernel", name="hydro_fragment"),
            model="swapped",
            register_budget=16,
        )
        print(f"\nwire form of the request:\n{json.dumps(request.to_dict())}")
        first = session.evaluate(request)
        again = session.evaluate(request)
        print(
            f"evaluate: II={first.ii}, {first.spilled_values} spilled, "
            f"fits={first.fits} (first cached={first.cached}, "
            f"repeat cached={again.cached})"
        )

        # A registry experiment with schema-validated parameters.
        experiment = session.experiment(
            ExperimentRequest(name="table1", params={"loops": n_loops})
        )
        print(f"\n{experiment.text}")

        # A named sweep, rescaled; structured rows plus the rendered table.
        sweep = session.sweep(SweepRequest(name="rf-size", n_loops=n_loops))
        print(
            f"sweep {sweep.name!r}: {sweep.points} points, "
            f"{len(sweep.rows)} aggregate rows, "
            f"cache {sweep.cache_hits} hits / {sweep.cache_misses} misses"
        )

        stats = session.stats()
        print(
            f"\nsession: {stats['requests_served']} requests, "
            f"{stats['engine_jobs']} engine jobs, "
            f"cache hits {stats['cache']['hits']}"
        )


if __name__ == "__main__":
    main()
