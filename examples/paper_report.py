"""Generate a reproduction artifact from Python.

Runs the full experiment suite at a small scale through the cached
engine, judges every registered paper expectation, and writes a
self-contained Markdown report -- the API behind
``python -m repro report``.

Pass a suite size to scale up, and optionally an output directory::

    python examples/paper_report.py 200 /tmp/report

Run:  python examples/paper_report.py
"""

import sys
import tempfile

from repro.report import generate_report


def main() -> None:
    n_loops = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    out_dir = (
        sys.argv[2] if len(sys.argv) > 2 else tempfile.mkdtemp(prefix="repro-")
    )
    result = generate_report(
        n_loops=n_loops,
        spill_loops=min(n_loops, 24),
        fmt="md",
        out_dir=out_dir,
    )
    print(f"suite: {n_loops} loops, "
          f"{result.suite.engine_jobs} evaluation points, "
          f"{result.suite.wall_seconds:.1f}s")
    print(result.summary())
    gated = [d for d in result.deltas if d.expectation.gate]
    print(f"\npaper-delta rows ({len(gated)} gated):")
    for delta in result.deltas:
        print(f"  [{delta.status:>4}] {delta.expectation.key}: "
              f"expected {delta.expected_display}, "
              f"reproduced {delta.reproduced_display}")


if __name__ == "__main__":
    main()
