"""Write your own loop with the builder DSL and study its register pressure.

The loop here is a complex dot product -- the kind of kernel the paper's
introduction motivates (floating-point intensive, software pipelined, more
live values than a unified register file comfortably holds at latency 6):

    cr = cr + ar(i)*br(i) - ai(i)*bi(i)
    ci = ci + ar(i)*bi(i) + ai(i)*br(i)

Run:  python examples/custom_loop.py
"""

from repro import LoopBuilder, Model, evaluate_loop, pressure_report
from repro.machine import paper_config


def build_complex_dot():
    b = LoopBuilder("complex-dot")
    ar = b.load("ar")
    ai = b.load("ai")
    br = b.load("br")
    bi = b.load("bi")

    cr_prev = b.placeholder()
    ci_prev = b.placeholder()
    cr = b.add(cr_prev, b.sub(b.mul(ar, br), b.mul(ai, bi)), name="cr")
    ci = b.add(ci_prev, b.add(b.mul(ar, bi), b.mul(ai, br)), name="ci")
    b.bind(cr_prev, cr, distance=1)
    b.bind(ci_prev, ci, distance=1)
    return b.build(
        trip_count=4096,
        source="cr += ar*br - ai*bi; ci += ar*bi + ai*br",
    )


def main() -> None:
    loop = build_complex_dot()
    print(f"loop: {loop.name}  ({loop.source})")

    for latency in (3, 6):
        machine = paper_config(latency)
        report = pressure_report(loop, machine)
        print(
            f"\nlatency {latency}: II={report.ii} (MII={report.mii}), "
            f"MaxLive={report.max_live}"
        )
        print(
            f"  registers: unified {report.unified}, "
            f"partitioned {report.partitioned}, swapped {report.swapped}"
        )

    # What happens in a 16-register file at latency 6?
    machine = paper_config(6)
    print("\nwith a 16-register budget at latency 6:")
    for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
        ev = evaluate_loop(loop, machine, model, register_budget=16)
        print(
            f"  {model.value:<12} II {ev.ii:>2}  "
            f"spilled {ev.spilled_values} values  "
            f"traffic density {ev.traffic_density:.2f}"
        )


if __name__ == "__main__":
    main()
