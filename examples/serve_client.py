"""Hit ``python -m repro serve`` over a socket: the facade as a service.

Two modes:

* **Self-contained** (default): spawn a ``repro serve`` subprocess on an
  ephemeral port, talk to it, shut it down gracefully, and check it
  exited 0 -- the full lifecycle in one script::

      python examples/serve_client.py 12

* **Against a running server** (what CI does)::

      python -m repro serve --port 0 --port-file port.txt &
      python examples/serve_client.py --url "http://127.0.0.1:$(cat port.txt)"

  With ``--url`` the script talks to the given server and sends it a
  graceful shutdown at the end (pass ``--no-shutdown`` to leave it up).

Both modes demonstrate the shared-session property: the *second*
identical evaluate request is answered from the server's result cache.
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]


def call(base: str, method: str, path: str, payload: dict | None = None):
    """One envelope round trip; returns the decoded body, raises on !ok."""
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        base + path,
        data=data,
        headers={"Content-Type": "application/json"},
        method=method,
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            body = json.loads(response.read())
    except urllib.error.HTTPError as error:
        body = json.loads(error.read())
        raise RuntimeError(
            f"{method} {path} -> {error.code}: {body['error']['message']}"
        ) from None
    if not body.get("ok"):
        raise RuntimeError(f"{method} {path}: {body}")
    return body["result"]


def spawn_server(port_file: Path) -> subprocess.Popen:
    """Start ``repro serve`` on an ephemeral port, importable as we are."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), env.get("PYTHONPATH", "")]
    ).rstrip(os.pathsep)
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            "0",
        ],
        env=env,
    )


def wait_for_port(port_file: Path, process: subprocess.Popen | None) -> int:
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if process is not None and process.poll() is not None:
            raise RuntimeError(
                f"server exited early with code {process.returncode}"
            )
        text = port_file.read_text() if port_file.exists() else ""
        if text.strip():
            return int(text)
        time.sleep(0.05)
    raise RuntimeError("server never wrote its port file")


def exercise(base: str, n_loops: int) -> None:
    health = call(base, "GET", "/v1/health")
    print(f"health: {health['status']} (schema v{health['schema_version']})")

    experiments = call(base, "GET", "/v1/experiments")
    names = ", ".join(e["name"] for e in experiments[:5])
    print(f"experiments: {len(experiments)} registered ({names}, ...)")

    evaluate = {
        "loop": {"kind": "kernel", "name": "hydro_fragment"},
        "model": "swapped",
        "register_budget": 16,
    }
    first = call(base, "POST", "/v1/evaluate", evaluate)
    second = call(base, "POST", "/v1/evaluate", evaluate)
    print(
        f"evaluate: II={first['ii']}, fits={first['fits']} "
        f"(first cached={first['cached']}, repeat cached={second['cached']})"
    )
    if not second["cached"]:
        raise RuntimeError("second identical request missed the cache")

    experiment = call(
        base, "POST", "/v1/experiment",
        {"name": "table1", "params": {"loops": n_loops}},
    )
    print(f"experiment {experiment['name']!r} in {experiment['seconds']:.2f}s")

    stats = call(base, "GET", "/v1/health")
    print(
        f"server totals: {stats['requests_served']} requests, "
        f"cache hits {stats['cache']['hits']}"
    )


def main() -> None:
    argv = sys.argv[1:]
    url = None
    shutdown = True
    if "--no-shutdown" in argv:
        argv.remove("--no-shutdown")
        shutdown = False
    if "--url" in argv:
        at = argv.index("--url")
        url = argv[at + 1].rstrip("/")
        del argv[at : at + 2]
    n_loops = int(argv[0]) if argv else 12

    if url is not None:
        exercise(url, n_loops)
        if shutdown:
            call(url, "POST", "/v1/shutdown", {})
            print("sent graceful shutdown")
        return

    with tempfile.TemporaryDirectory() as tmp:
        port_file = Path(tmp) / "port"
        process = spawn_server(port_file)
        try:
            port = wait_for_port(port_file, process)
            base = f"http://127.0.0.1:{port}"
            print(f"spawned repro serve on {base}")
            exercise(base, n_loops)
            call(base, "POST", "/v1/shutdown", {})
            code = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        if code != 0:
            raise RuntimeError(f"server exited with code {code}")
        print("server shut down cleanly (exit 0)")


if __name__ == "__main__":
    main()
