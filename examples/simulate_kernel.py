"""Execute a software-pipelined kernel cycle by cycle and watch the ports.

Takes a kernel name (default: the Livermore tridiagonal recurrence), runs it
through scheduling + swapped dual allocation, then executes 32 overlapped
iterations on the verifying simulator.  Every register read is checked
against a direct interpretation of the dependence graph, so what prints at
the end is *proof* the schedule and the non-consistent dual allocation are
semantically correct -- plus the port/bus pressure the paper's Section 3.2
argues about.

Run:  python examples/simulate_kernel.py [kernel-name]
"""

import sys

from repro.core import allocate_dual, greedy_swap
from repro.machine import paper_config
from repro.regalloc import allocate_unified
from repro.sched import modulo_schedule
from repro.sim import execute_kernel
from repro.workloads import kernel_names, make_kernel

ITERATIONS = 32


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "tridiag_elimination"
    if name not in kernel_names():
        raise SystemExit(
            f"unknown kernel {name!r}; available: {', '.join(kernel_names())}"
        )
    loop = make_kernel(name)
    machine = paper_config(6)
    print(f"kernel: {loop.name}  ({loop.source})")

    schedule = modulo_schedule(loop.graph, machine)
    print(f"II = {schedule.ii}, stages = {schedule.stage_count}")

    unified = allocate_unified(schedule)
    report = execute_kernel(schedule, unified, iterations=ITERATIONS)
    print(
        f"\nunified file ({unified.registers_required} registers): "
        f"{report.reads_checked} reads verified, "
        f"bus peak {report.bus_peak}/{machine.memory_bandwidth}"
    )

    swap = greedy_swap(schedule)
    dual = allocate_dual(swap.schedule, swap.assignment)
    report = execute_kernel(swap.schedule, dual, iterations=ITERATIONS)
    print(
        f"swapped dual file ({dual.registers_required} registers/subfile, "
        f"{swap.n_swaps} swaps): {report.reads_checked} reads verified"
    )
    for name_, stats in sorted(report.port_stats.items()):
        print(
            f"  {name_}: peak {stats.max_reads} reads/cycle, "
            f"{stats.max_writes} writes/cycle"
        )
    print(
        f"bus usage: {report.average_bus_usage(machine.memory_bandwidth):.2f} "
        "of bandwidth per cycle"
    )


if __name__ == "__main__":
    main()
