"""Custom scenario sweeps through the parallel engine.

Two ways to sweep:

1. a named grid from the registry (what ``python -m repro sweep`` runs)::

       python -m repro sweep --name rf-size --loops 64 --workers 4

2. an arbitrary :class:`repro.SweepSpec` built in Python -- this script
   sweeps register-file sizes across three cluster counts and two suite
   seeds, something no single paper figure covers.

Pass a suite size to scale up, e.g.::

    python examples/sweep_models.py 200

Run:  python examples/sweep_models.py
"""

import sys

from repro import (
    Engine,
    Model,
    ResultCache,
    SweepSpec,
    format_outcome,
    named_sweep,
    run_sweep,
)


def main() -> None:
    n_loops = int(sys.argv[1]) if len(sys.argv) > 1 else 24

    # Serial engine with an in-memory cache: deterministic and self-contained.
    # For real sweeps use Engine(cache=ResultCache(default_cache_dir()))
    # to pool across every core and persist results across runs.
    engine = Engine(workers=0, cache=ResultCache(directory=None))

    # 1. A registry sweep, rescaled.
    spec = named_sweep("rf-size", n_loops=n_loops)
    print(format_outcome(run_sweep(spec, engine=engine)))

    # 2. A fully custom grid: cluster counts x seeds x register budgets.
    custom = SweepSpec(
        name="clusters-vs-budget",
        kind="evaluate",
        n_loops=n_loops,
        seeds=(20061995, 7),
        latencies=(6,),
        cluster_counts=(1, 2, 4),
        budgets=(24, 48),
        models=(Model.UNIFIED, Model.PARTITIONED),
    )
    print()
    print(format_outcome(run_sweep(custom, engine=engine)))

    stats = engine.cache.stats
    print(
        f"\nengine: {stats.lookups} lookups, "
        f"{100 * stats.hit_rate:.1f}% served from cache"
    )


if __name__ == "__main__":
    main()
