"""Schedulable resources of the VLIW machine.

The paper uses two resource regimes:

* the main experiments (Section 5.2): 2 adders + 2 multipliers + 2 combined
  load/store units, split into two symmetric clusters;
* Table 1 (from [9]): x adders + x multipliers + *one store port and two
  load ports* (loads and stores contend for different ports).

Both are expressed as a set of :class:`ResourcePool` objects plus a mapping
from operation type to the pool it occupies.  All functional units are fully
pipelined: an operation occupies its unit for exactly one cycle at issue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.operation import OpType


@dataclass(frozen=True)
class ResourcePool:
    """A class of identical functional units.

    Attributes:
        name: e.g. ``"adder"``, ``"mult"``, ``"mem"``, ``"load"``, ``"store"``.
        count: Number of identical units in the pool.
    """

    name: str
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"resource pool {self.name!r} needs count >= 1")


#: Canonical pool names.
ADDER = "adder"
MULT = "mult"
MEM = "mem"
LOAD_PORT = "load"
STORE_PORT = "store"


def combined_memory_pools(n_mem: int) -> dict[OpType, str]:
    """Operation->pool mapping with combined load/store units."""
    return {
        OpType.FADD: ADDER,
        OpType.FSUB: ADDER,
        OpType.FCONV: ADDER,
        OpType.FNEG: ADDER,
        OpType.FMUL: MULT,
        OpType.FDIV: MULT,
        OpType.LOAD: MEM,
        OpType.STORE: MEM,
    }


def split_memory_pools() -> dict[OpType, str]:
    """Operation->pool mapping with separate load and store ports."""
    return {
        OpType.FADD: ADDER,
        OpType.FSUB: ADDER,
        OpType.FCONV: ADDER,
        OpType.FNEG: ADDER,
        OpType.FMUL: MULT,
        OpType.FDIV: MULT,
        OpType.LOAD: LOAD_PORT,
        OpType.STORE: STORE_PORT,
    }


__all__ = [
    "ADDER",
    "LOAD_PORT",
    "MEM",
    "MULT",
    "ResourcePool",
    "STORE_PORT",
    "combined_memory_pools",
    "split_memory_pools",
]
