"""Machine descriptions: the VLIW configurations the paper evaluates.

Covers Section 5's machine models and Section 3.2's hardware-cost
argument: :mod:`~repro.machine.resources` defines functional-unit pools
(adders, multipliers, memory ports), :mod:`~repro.machine.config` builds
the named configurations -- :func:`paper_config` (the 2-cluster machine
of Section 5.2), :func:`pxly` (the Table 1 grid), :func:`example_config`
(Section 4.1), :func:`clustered_config` (the N-cluster generalization) --
and :mod:`~repro.machine.costmodel` prices register-file organizations
(area, access time, specifier bits) to make the "cheaper than doubling"
conclusion concrete.

Key entry points: :func:`paper_config`, :func:`pxly`,
:func:`example_config`, and :func:`compare_organizations`.
"""

from repro.machine.config import (
    ConfigError,
    MachineConfig,
    clustered_config,
    example_config,
    paper_config,
    pxly,
)
from repro.machine.costmodel import (
    CostModel,
    OrganizationCost,
    RegisterFileGeometry,
    compare_organizations,
)
from repro.machine.resources import (
    ADDER,
    LOAD_PORT,
    MEM,
    MULT,
    ResourcePool,
    STORE_PORT,
)

__all__ = [
    "ADDER",
    "ConfigError",
    "CostModel",
    "LOAD_PORT",
    "MEM",
    "MULT",
    "MachineConfig",
    "OrganizationCost",
    "clustered_config",
    "RegisterFileGeometry",
    "ResourcePool",
    "STORE_PORT",
    "compare_organizations",
    "example_config",
    "paper_config",
    "pxly",
]
