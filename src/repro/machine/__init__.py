"""Machine descriptions: resource pools, configurations, cost models."""

from repro.machine.config import (
    ConfigError,
    MachineConfig,
    clustered_config,
    example_config,
    paper_config,
    pxly,
)
from repro.machine.costmodel import (
    CostModel,
    OrganizationCost,
    RegisterFileGeometry,
    compare_organizations,
)
from repro.machine.resources import (
    ADDER,
    LOAD_PORT,
    MEM,
    MULT,
    ResourcePool,
    STORE_PORT,
)

__all__ = [
    "ADDER",
    "ConfigError",
    "CostModel",
    "LOAD_PORT",
    "MEM",
    "MULT",
    "MachineConfig",
    "OrganizationCost",
    "clustered_config",
    "RegisterFileGeometry",
    "ResourcePool",
    "STORE_PORT",
    "compare_organizations",
    "example_config",
    "paper_config",
    "pxly",
]
