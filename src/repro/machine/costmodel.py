"""Area and access-time models for register files (paper, Section 3.2).

The paper motivates dual register files with two published models:

* **area** grows linearly with the number of registers and bits per register
  and *quadratically* with the number of ports (Lee [17]); a port adds a
  wordline/bitline pair, so cell area ~ (ports)^2;
* **access time** grows logarithmically with the number of read ports and
  logarithmically with the number of registers (Capitanio et al. [18]).

These are *relative* models: absolute constants are irrelevant to the
paper's argument, which only compares organizations.  The default constants
are normalized so that a 32-register, 2-read/1-write-port file has area 1.0
and access time 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RegisterFileGeometry:
    """Physical shape of one register subfile."""

    registers: int
    read_ports: int
    write_ports: int
    bits: int = 64

    def __post_init__(self) -> None:
        if self.registers < 1 or self.read_ports < 1 or self.write_ports < 1:
            raise ValueError("geometry fields must be positive")

    @property
    def ports(self) -> int:
        return self.read_ports + self.write_ports

    @property
    def specifier_bits(self) -> int:
        """Bits needed in the instruction word to name one register."""
        return max(1, math.ceil(math.log2(self.registers)))


@dataclass(frozen=True)
class CostModel:
    """Parametric area / access-time model.

    ``area = ka * registers * bits * ports**2``
    ``access_time = kt * (log2(read_ports + 1) + log2(registers))``
    """

    ka: float = 1.0
    kt: float = 1.0

    _REF_AREA = 32 * 64 * (2 + 1) ** 2
    _REF_TIME = math.log2(2 + 1) + math.log2(32)

    def area(self, geom: RegisterFileGeometry) -> float:
        raw = geom.registers * geom.bits * geom.ports**2
        return self.ka * raw / self._REF_AREA

    def access_time(self, geom: RegisterFileGeometry) -> float:
        raw = math.log2(geom.read_ports + 1) + math.log2(geom.registers)
        return self.kt * raw / self._REF_TIME


@dataclass(frozen=True)
class OrganizationCost:
    """Cost summary of a complete register-file organization."""

    name: str
    total_area: float
    access_time: float
    specifier_bits: int
    effective_capacity: str


def compare_organizations(
    registers: int,
    read_ports: int,
    write_ports: int,
    bits: int = 64,
    model: CostModel | None = None,
) -> list[OrganizationCost]:
    """Compare the four organizations discussed in the paper.

    Args:
        registers: Architectural register count (per subfile for the duals).
        read_ports: Total read ports the functional units require.
        write_ports: Total write ports the functional units require.

    Returns a list with: unified, consistent dual, non-consistent dual and a
    doubled unified file (the alternative the conclusions compare against).
    A dual implementation halves the read ports of each subfile but keeps all
    write ports (every unit can write both subfiles), exactly the POWER2
    arrangement described in Section 3.2.
    """
    model = model or CostModel()
    half_reads = max(1, read_ports // 2)

    unified = RegisterFileGeometry(registers, read_ports, write_ports, bits)
    sub = RegisterFileGeometry(registers, half_reads, write_ports, bits)
    doubled = RegisterFileGeometry(2 * registers, read_ports, write_ports, bits)

    return [
        OrganizationCost(
            name="unified",
            total_area=model.area(unified),
            access_time=model.access_time(unified),
            specifier_bits=unified.specifier_bits,
            effective_capacity=f"{registers} values",
        ),
        OrganizationCost(
            name="consistent dual",
            total_area=2 * model.area(sub),
            access_time=model.access_time(sub),
            specifier_bits=sub.specifier_bits,
            effective_capacity=f"{registers} values (duplicated)",
        ),
        OrganizationCost(
            name="non-consistent dual",
            total_area=2 * model.area(sub),
            access_time=model.access_time(sub),
            specifier_bits=sub.specifier_bits,
            effective_capacity=(
                f"{registers}..{2 * registers} values (locals not duplicated)"
            ),
        ),
        OrganizationCost(
            name="doubled unified",
            total_area=model.area(doubled),
            access_time=model.access_time(doubled),
            specifier_bits=doubled.specifier_bits,
            effective_capacity=f"{2 * registers} values",
        ),
    ]


__all__ = [
    "CostModel",
    "OrganizationCost",
    "RegisterFileGeometry",
    "compare_organizations",
]
