"""Machine configurations.

A :class:`MachineConfig` is everything the scheduler and allocator need to
know about the target: resource pools, operation latencies, and how the
functional units are grouped into clusters for the dual-register-file
organizations.

Factory functions build the configurations used in the paper:

* :func:`paper_config` -- the Section 5.2 machine: 2 adders, 2 multipliers,
  2 load/store units, FP latency 3 or 6, memory latency 1, two clusters of
  (1 adder, 1 multiplier, 1 load/store) each.
* :func:`pxly` -- the Table 1 machines: ``x`` adders and ``x`` multipliers of
  latency ``y``, one store port and two load ports.
* :func:`example_config` -- the Section 4.1 example machine: 2 adders,
  2 multipliers and 4 load/store units (2 per cluster), FP latency 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.operation import FU_CLASS_OF, FuClass, Operation, OpType
from repro.machine.resources import (
    ADDER,
    MEM,
    MULT,
    ResourcePool,
    combined_memory_pools,
    split_memory_pools,
)


class ConfigError(ValueError):
    """Raised for inconsistent machine descriptions."""


@dataclass(frozen=True)
class MachineConfig:
    """Description of one VLIW target.

    Attributes:
        name: e.g. ``"P2L6"`` or ``"paper-L3"``.
        pools: Resource pools by name.
        pool_of: Operation type -> pool name.
        latency: Operation type -> result latency in cycles.
        n_clusters: Number of register-file clusters (1 = unified only).
    """

    name: str
    pools: tuple[ResourcePool, ...]
    pool_of: dict[OpType, str] = field(hash=False)
    latency: dict[OpType, int] = field(hash=False)
    n_clusters: int = 2

    def __post_init__(self) -> None:
        pool_names = {p.name for p in self.pools}
        if len(pool_names) != len(self.pools):
            raise ConfigError("duplicate resource pool names")
        for optype, pool in self.pool_of.items():
            if pool not in pool_names:
                raise ConfigError(f"{optype} mapped to unknown pool {pool!r}")
        for optype in self.pool_of:
            if self.latency.get(optype, 0) < 1:
                raise ConfigError(f"latency of {optype} must be >= 1")
        if self.n_clusters < 1:
            raise ConfigError("n_clusters must be >= 1")

    # ------------------------------------------------------------------
    def pool(self, name: str) -> ResourcePool:
        for p in self.pools:
            if p.name == name:
                return p
        raise KeyError(name)

    def pool_for(self, op: Operation | OpType) -> str:
        optype = op.optype if isinstance(op, Operation) else op
        return self.pool_of[optype]

    def latency_of(self, op: Operation | OpType) -> int:
        optype = op.optype if isinstance(op, Operation) else op
        return self.latency[optype]

    def units(self, pool_name: str) -> int:
        return self.pool(pool_name).count

    def cluster_of_instance(self, pool_name: str, instance: int) -> int:
        """Cluster owning unit ``instance`` of ``pool_name``.

        Units are block-partitioned: with 4 load/store units and 2 clusters,
        units 0-1 are the left cluster and units 2-3 the right cluster,
        matching the example machine of Section 4.1.
        """
        count = self.units(pool_name)
        if not 0 <= instance < count:
            raise ConfigError(f"no instance {instance} in pool {pool_name!r}")
        if self.n_clusters == 1:
            return 0
        return instance * self.n_clusters // count

    def instances_in_cluster(self, pool_name: str, cluster: int) -> list[int]:
        return [
            i
            for i in range(self.units(pool_name))
            if self.cluster_of_instance(pool_name, i) == cluster
        ]

    @property
    def memory_pools(self) -> list[str]:
        """Names of pools that issue memory operations."""
        return sorted(
            {self.pool_of[t] for t in (OpType.LOAD, OpType.STORE)}
        )

    @property
    def memory_bandwidth(self) -> int:
        """Total memory operations that can issue per cycle (bus width)."""
        return sum(self.units(p) for p in self.memory_pools)

    def read_ports_per_cluster(self) -> int:
        """Data read ports needed by one cluster's functional units.

        Adders and multipliers read two operands; stores read the datum;
        loads read no FP register (addresses live in the address processor).
        """
        reads = 0
        for pool in self.pools:
            per_cluster = len(self.instances_in_cluster(pool.name, 0))
            if pool.name in (ADDER, MULT):
                reads += 2 * per_cluster
            else:
                reads += 1 * per_cluster  # a store datum per memory unit
        return reads

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pools = ", ".join(f"{p.name}x{p.count}" for p in self.pools)
        return f"MachineConfig({self.name!r}: {pools})"


# ----------------------------------------------------------------------
# Factory functions for the paper's configurations
# ----------------------------------------------------------------------
def paper_config(fp_latency: int = 3, mem_latency: int = 1) -> MachineConfig:
    """The main experimental machine of Section 5.2.

    2 adders, 2 multipliers, 2 load/store units; two clusters of one unit of
    each kind; loads and stores have latency 1 (decoupled architecture /
    perfect cache).
    """
    return MachineConfig(
        name=f"paper-L{fp_latency}",
        pools=(
            ResourcePool(ADDER, 2),
            ResourcePool(MULT, 2),
            ResourcePool(MEM, 2),
        ),
        pool_of=combined_memory_pools(2),
        latency=_latencies(fp_latency, mem_latency),
        n_clusters=2,
    )


def example_config(fp_latency: int = 3, mem_latency: int = 1) -> MachineConfig:
    """The Section 4.1 example machine: 2 adders, 2 multipliers, 4 ld/st."""
    return MachineConfig(
        name="example",
        pools=(
            ResourcePool(ADDER, 2),
            ResourcePool(MULT, 2),
            ResourcePool(MEM, 4),
        ),
        pool_of=combined_memory_pools(4),
        latency=_latencies(fp_latency, mem_latency),
        n_clusters=2,
    )


def clustered_config(
    n_clusters: int,
    fp_latency: int = 3,
    mem_latency: int = 1,
    adders_per_cluster: int = 1,
    mults_per_cluster: int = 1,
    mem_per_cluster: int = 1,
) -> MachineConfig:
    """A generalized n-cluster machine (paper's Section 4 discussion).

    Each cluster contributes ``adders_per_cluster`` adders,
    ``mults_per_cluster`` multipliers and ``mem_per_cluster`` load/store
    units; with ``n_clusters=2`` and one unit of each kind this is exactly
    :func:`paper_config`.
    """
    if n_clusters < 1:
        raise ConfigError("n_clusters must be >= 1")
    n_mem = mem_per_cluster * n_clusters
    return MachineConfig(
        name=f"clustered-{n_clusters}x-L{fp_latency}",
        pools=(
            ResourcePool(ADDER, adders_per_cluster * n_clusters),
            ResourcePool(MULT, mults_per_cluster * n_clusters),
            ResourcePool(MEM, n_mem),
        ),
        pool_of=combined_memory_pools(n_mem),
        latency=_latencies(fp_latency, mem_latency),
        n_clusters=n_clusters,
    )


def pxly(x: int, y: int, mem_latency: int = 1) -> MachineConfig:
    """Table 1 machine PxLy: x adders + x multipliers of latency y,
    one store port and two load ports."""
    from repro.machine.resources import LOAD_PORT, STORE_PORT

    return MachineConfig(
        name=f"P{x}L{y}",
        pools=(
            ResourcePool(ADDER, x),
            ResourcePool(MULT, x),
            ResourcePool(LOAD_PORT, 2),
            ResourcePool(STORE_PORT, 1),
        ),
        pool_of=split_memory_pools(),
        latency=_latencies(y, mem_latency),
        n_clusters=1,
    )


def _latencies(fp_latency: int, mem_latency: int) -> dict[OpType, int]:
    return {
        OpType.FADD: fp_latency,
        OpType.FSUB: fp_latency,
        OpType.FCONV: fp_latency,
        OpType.FNEG: fp_latency,
        OpType.FMUL: fp_latency,
        OpType.FDIV: fp_latency,
        OpType.LOAD: mem_latency,
        OpType.STORE: mem_latency,
    }


__all__ = [
    "ConfigError",
    "MachineConfig",
    "clustered_config",
    "example_config",
    "paper_config",
    "pxly",
]
