"""Simulator-grounded differential validation of evaluated loop points.

The analytical pipeline claims three things about every evaluated point:
an initiation interval, a register requirement per (sub)file, and a
memory-traffic density.  This module *executes* the point -- the final
(possibly swapped, possibly spilled) schedule and its allocation run
through :func:`repro.sim.executor.execute_kernel` against the golden
reference interpreter -- and cross-checks the simulator's observed
behaviour against every claim:

* **dataflow** -- every register read returns the reference value; a
  violated dependence or an overwritten live register is an execution
  proof that the schedule/allocation pair is broken;
* **II** -- the simulated steady state advances exactly one iteration per
  claimed II cycles;
* **occupancy** -- the peak number of simultaneously busy cells in each
  (sub)file never exceeds the register count the allocation claimed, and
  the claimed per-file maximum equals the requirement the pipeline
  reported;
* **traffic** -- observed memory-bus accesses equal
  ``memory_ops_per_iteration x iterations`` exactly (the integer form of
  :attr:`~repro.spill.spiller.LoopEvaluation.traffic_density`), and the
  per-cycle bus usage never exceeds the machine's memory bandwidth.

:func:`validate_point` additionally runs the whole pipeline under every
kernel tier (``REPRO_KERNELS=batch/1/0``) and requires the tiers to agree
with each other *and* with execution, so the array/batch fast paths are
pinned execution-consistently, not just bit-identically to themselves.

:func:`allocation_for` is deliberately a module-level seam: mutation
tests (and the ``report --check`` teeth test) monkeypatch it to inject a
corrupted allocation and assert the gate catches the bug.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro import kernel
from repro.check.invariants import StaticCheck
from repro.check.invariants import check_evaluation as prove_evaluation
from repro.core.dualfile import DualAllocation
from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.regalloc.allocation import UnifiedAllocation
from repro.sched.schedule import Schedule
from repro.sim.executor import SimulationError, SimulationReport, execute_kernel
from repro.sim.regfile import RegisterFileError
from repro.spill.spiller import LoopEvaluation

#: Kernel tiers a point is validated under, fastest first.
TIERS = ("batch", "1", "0")


class ValidationError(RuntimeError):
    """An evaluated point has no allocation to execute."""


@dataclass(frozen=True)
class Mismatch:
    """One observed-vs-claimed divergence, with actionable coordinates."""

    kind: str  # "dataflow" | "register-file" | "ii" | "occupancy" |
    #           "traffic" | "bus" | "requirement" | "tier"
    message: str
    op: str | None = None
    cycle: int | None = None
    file: str | None = None
    register: int | None = None
    expected: object = None
    observed: object = None

    def describe(self) -> str:
        parts = [f"[{self.kind}] {self.message}"]
        where = []
        if self.op is not None:
            where.append(f"op={self.op}")
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if self.file is not None:
            where.append(f"file={self.file}")
        if self.register is not None:
            where.append(f"register=r{self.register}")
        if self.expected is not None or self.observed is not None:
            where.append(
                f"expected={self.expected!r} observed={self.observed!r}"
            )
        if where:
            parts.append("  " + " ".join(where))
        return "\n".join(parts)


@dataclass(frozen=True)
class FileOccupancy:
    """Claimed vs observed register usage of one (sub)file."""

    name: str
    claimed: int
    peak: int
    touched: int


@dataclass(frozen=True)
class PointValidation:
    """Outcome of executing one evaluated point under one kernel tier."""

    reproducer: dict
    tier: str
    model: str
    register_budget: int | None
    ii: int
    observed_ii: int | None
    iterations: int
    reads_checked: int
    memory_accesses: int
    files: tuple[FileOccupancy, ...]
    mismatches: tuple[Mismatch, ...]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def describe(self) -> str:
        head = (
            f"{self.model} budget={self.register_budget} tier={self.tier}: "
            f"II {self.ii}, {self.iterations} iterations, "
            f"{self.reads_checked} reads checked -- "
            + ("OK" if self.ok else f"{len(self.mismatches)} mismatch(es)")
        )
        lines = [head]
        for mismatch in self.mismatches:
            lines.append(mismatch.describe())
        if self.mismatches:
            lines.append(f"  reproduce: {self.reproducer}")
        return "\n".join(lines)


def static_mismatches(check: StaticCheck) -> tuple[Mismatch, ...]:
    """Fold a static proof's findings into the gate's mismatch shape."""
    return tuple(
        Mismatch(
            kind=f"static:{finding.kind}",
            message=finding.message,
            op=finding.op,
            cycle=finding.cycle,
            file=finding.file,
            register=finding.register,
            expected=finding.expected,
            observed=finding.observed,
        )
        for finding in check.findings
    )


@dataclass(frozen=True)
class ValidationReport:
    """All tier outcomes of one validated point.

    ``static`` carries the analytical proof of the same point when the
    caller asked for it (:func:`validate_point` ``static=True``, the
    default): the schedule/allocation invariants checked without
    execution, folded into :attr:`ok` and :attr:`mismatches` alongside
    the simulated tiers.
    """

    points: tuple[PointValidation, ...]
    static: StaticCheck | None = None

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points) and (
            self.static is None or self.static.ok
        )

    @property
    def mismatches(self) -> tuple[Mismatch, ...]:
        folded = tuple(m for point in self.points for m in point.mismatches)
        if self.static is not None:
            folded += static_mismatches(self.static)
        return folded

    def describe(self) -> str:
        lines = [point.describe() for point in self.points]
        if self.static is not None:
            lines.append(self.static.describe())
        return "\n".join(lines)


def allocation_for(
    evaluation: LoopEvaluation,
) -> tuple[Schedule, UnifiedAllocation | DualAllocation]:
    """The schedule/allocation pair an evaluated point executes under.

    Dual models execute the allocation's *own* schedule (for Swapped that
    is the post-swap schedule, not the scheduler's).  Monkeypatch this to
    inject corrupted allocations in mutation tests.
    """
    requirement = evaluation.requirement
    if requirement.dual is not None:
        return requirement.dual.schedule, requirement.dual
    if requirement.unified is not None:
        return requirement.unified.schedule, requirement.unified
    raise ValidationError(
        f"evaluation of {evaluation.loop.name} under "
        f"{evaluation.model.value} carries no allocation to execute"
    )


def _file_claims(
    allocation: UnifiedAllocation | DualAllocation,
) -> dict[str, int]:
    """File name -> claimed register count, matching the executor's files."""
    if isinstance(allocation, DualAllocation):
        return {
            f"subfile{cluster}": allocation.file_allocation(
                cluster
            ).registers_required
            for cluster in range(allocation.n_clusters)
        }
    return {"unified": allocation.registers_required}


def default_iterations(schedule: Schedule) -> int:
    """Enough overlapped iterations to cover fill, steady state, and wrap."""
    return max(4, 2 * schedule.stage_count + 2)


def validate_evaluation(
    evaluation: LoopEvaluation,
    iterations: int | None = None,
    reproducer: dict | None = None,
    tier: str | None = None,
) -> PointValidation:
    """Execute one evaluated point and cross-check every analytical claim."""
    if tier is None:
        tier = kernel.kernel_tier()
    if reproducer is None:
        reproducer = reproducer_spec(
            evaluation.loop,
            evaluation.machine,
            evaluation.model,
            evaluation.register_budget,
        )
    reproducer = dict(reproducer, tier=tier)
    mismatches: list[Mismatch] = []
    schedule, allocation = allocation_for(evaluation)
    claims = _file_claims(allocation)
    if iterations is None:
        iterations = default_iterations(schedule)

    if schedule.ii != evaluation.ii:
        mismatches.append(
            Mismatch(
                kind="ii",
                message="allocation's schedule disagrees with the claimed II",
                expected=evaluation.ii,
                observed=schedule.ii,
            )
        )

    observed_ii: int | None = None
    reads_checked = 0
    memory_accesses = 0
    files: tuple[FileOccupancy, ...] = ()
    try:
        report = execute_kernel(schedule, allocation, iterations=iterations)
    except RegisterFileError as exc:
        mismatches.append(
            Mismatch(
                kind="register-file",
                message=str(exc),
                op=_op_name(schedule, exc.op_id),
                cycle=exc.cycle,
                file=exc.file,
                register=exc.register,
                expected=exc.expected,
                observed=exc.observed,
            )
        )
    except SimulationError as exc:
        mismatches.append(
            Mismatch(
                kind="dataflow",
                message=str(exc),
                op=exc.op,
                cycle=exc.cycle,
                expected=exc.expected,
                observed=exc.observed,
            )
        )
    else:
        observed_ii = (
            report.cycles // report.iterations if report.iterations else 0
        )
        reads_checked = report.reads_checked
        memory_accesses = report.memory_accesses
        files = tuple(
            FileOccupancy(
                name=name,
                claimed=claims.get(name, report.registers_claimed[name]),
                peak=stats.peak,
                touched=stats.touched,
            )
            for name, stats in sorted(report.occupancy.items())
        )
        mismatches.extend(_cross_checks(evaluation, report, files))

    return PointValidation(
        reproducer=reproducer,
        tier=tier,
        model=evaluation.model.value,
        register_budget=evaluation.register_budget,
        ii=evaluation.ii,
        observed_ii=observed_ii,
        iterations=iterations,
        reads_checked=reads_checked,
        memory_accesses=memory_accesses,
        files=files,
        mismatches=tuple(mismatches),
    )


def _op_name(schedule: Schedule, op_id: int | None) -> str | None:
    if op_id is None:
        return None
    try:
        return schedule.graph.op(op_id).name
    except (KeyError, IndexError):
        return str(op_id)


def _cross_checks(
    evaluation: LoopEvaluation,
    report: SimulationReport,
    files: tuple[FileOccupancy, ...],
) -> list[Mismatch]:
    """Observed-vs-analytical checks after a clean execution."""
    out: list[Mismatch] = []
    observed_ii = report.cycles // report.iterations
    if observed_ii != evaluation.ii:
        out.append(
            Mismatch(
                kind="ii",
                message="observed steady-state II differs from the claim",
                expected=evaluation.ii,
                observed=observed_ii,
            )
        )

    # Exact integer form of traffic_density: accesses/(cycles*bw) must
    # equal memory_ops/(II*bw), i.e. accesses == memory_ops x iterations.
    expected_accesses = (
        evaluation.memory_ops_per_iteration * report.iterations
    )
    if report.memory_accesses != expected_accesses:
        out.append(
            Mismatch(
                kind="traffic",
                message=(
                    "observed memory accesses disagree with "
                    "memory_ops_per_iteration x iterations"
                ),
                expected=expected_accesses,
                observed=report.memory_accesses,
            )
        )

    bandwidth = evaluation.machine.memory_bandwidth
    if report.bus_peak > bandwidth:
        out.append(
            Mismatch(
                kind="bus",
                message="per-cycle bus usage exceeds the memory bandwidth",
                expected=bandwidth,
                observed=report.bus_peak,
            )
        )

    for file_occ in files:
        if file_occ.peak > file_occ.claimed:
            out.append(
                Mismatch(
                    kind="occupancy",
                    message=(
                        "peak live registers exceed the allocation's claim"
                    ),
                    file=file_occ.name,
                    expected=file_occ.claimed,
                    observed=file_occ.peak,
                )
            )

    claimed_max = max((f.claimed for f in files), default=0)
    if claimed_max != evaluation.requirement.registers:
        out.append(
            Mismatch(
                kind="requirement",
                message=(
                    "per-file claims disagree with the reported requirement"
                ),
                expected=evaluation.requirement.registers,
                observed=claimed_max,
            )
        )

    budget = evaluation.register_budget
    if (
        evaluation.fits
        and budget is not None
        and evaluation.model is not Model.IDEAL
        and evaluation.requirement.registers > budget
    ):
        out.append(
            Mismatch(
                kind="requirement",
                message="point claims to fit but exceeds its budget",
                expected=budget,
                observed=evaluation.requirement.registers,
            )
        )
    return out


def reproducer_spec(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None,
    loop_spec: dict | None = None,
    machine_spec: dict | None = None,
) -> dict:
    """The minimal spec that replays one point (wire-shaped when possible).

    Callers that hold declarative :class:`repro.api.types.LoopSpec` /
    ``MachineSpec`` dicts pass them through; otherwise the loop/machine
    names identify the point well enough to rebuild it by hand.
    """
    return {
        "loop": loop_spec if loop_spec is not None else {"name": loop.name},
        "machine": (
            machine_spec
            if machine_spec is not None
            else {"name": machine.name}
        ),
        "model": model.value,
        "register_budget": register_budget,
    }


#: The per-point summary every kernel tier must agree on.
_TIER_FIELDS = (
    "ii",
    "spilled_values",
    "ii_increases",
    "fits",
    "memory_ops_per_iteration",
)


def _tier_summary(evaluation: LoopEvaluation) -> dict:
    summary = {name: getattr(evaluation, name) for name in _TIER_FIELDS}
    summary["registers"] = evaluation.requirement.registers
    return summary


def validate_point(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None = None,
    tiers: tuple[str, ...] = TIERS,
    iterations: int | None = None,
    reproducer: dict | None = None,
    static: bool = True,
    **knobs: Any,
) -> ValidationReport:
    """Evaluate one point under every kernel tier and validate each.

    Each tier re-runs the full spill pipeline under ``use_kernels(tier)``
    and executes *its own* allocation; on top of the per-tier simulator
    checks, the tiers' analytical summaries must be identical (a ``tier``
    mismatch otherwise).  ``static=True`` (the default) additionally
    proves the first tier's schedule/allocation analytically
    (:func:`repro.check.invariants.check_evaluation`) -- the O(ops)
    static tier that runs on 100% of points where simulation samples.
    Extra ``knobs`` ride into
    :func:`repro.pipeline.pipelines.run_evaluation` verbatim.
    """
    from repro.pipeline.pipelines import run_evaluation

    points: list[PointValidation] = []
    static_check: StaticCheck | None = None
    baseline: dict | None = None
    baseline_tier: str | None = None
    for tier in tiers:
        with kernel.use_kernels(tier):
            evaluation = run_evaluation(
                loop, machine, model, register_budget, **knobs
            )
        if static and static_check is None:
            static_check = prove_evaluation(
                evaluation, reproducer=reproducer
            )
        point = validate_evaluation(
            evaluation,
            iterations=iterations,
            reproducer=reproducer,
            tier=tier,
        )
        summary = _tier_summary(evaluation)
        if baseline is None:
            baseline, baseline_tier = summary, tier
        elif summary != baseline:
            point = replace(
                point,
                mismatches=point.mismatches
                + (
                    Mismatch(
                        kind="tier",
                        message=(
                            f"tier {tier!r} diverges from tier "
                            f"{baseline_tier!r}"
                        ),
                        expected=baseline,
                        observed=summary,
                    ),
                ),
            )
        points.append(point)
    return ValidationReport(points=tuple(points), static=static_check)


__all__ = [
    "FileOccupancy",
    "Mismatch",
    "PointValidation",
    "TIERS",
    "ValidationError",
    "ValidationReport",
    "allocation_for",
    "default_iterations",
    "reproducer_spec",
    "static_mismatches",
    "validate_evaluation",
    "validate_point",
]
