"""Sampled end-to-end simulator cross-check (the ``report --check`` hook).

Validating every suite point under every model and tier would multiply the
report's cost by an order of magnitude, so the gate samples: one seeded
RNG (:func:`sample_indices`) picks ``samples`` loops out of the report's
suite, and each sampled loop is validated under the full model grid
(:data:`SAMPLE_MODELS`) across every kernel tier.  The seed is threaded
from the caller all the way through sample selection, so consecutive
``repro report --check`` runs validate the *same* points -- a mismatch is
reproducible, never a flake -- and the sampled set is pinned by tests.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.check.invariants import StaticCheck
from repro.core.models import Model
from repro.machine.config import paper_config
from repro.validate.differential import (
    TIERS,
    Mismatch,
    PointValidation,
    static_mismatches,
    validate_point,
)
from repro.workloads.suite import DEFAULT_SEED, perfect_club_like

#: Default number of sampled suite loops.
DEFAULT_SAMPLES = 6

#: Latency of the sampling machine: the paper's L6 configuration, whose
#: higher pressure exercises the spill path on part of the sample.
DEFAULT_LATENCY = 6

#: (model, register budget) grid each sampled loop is validated under.
#: The small dual budgets force spill code on a fair share of loops, so
#: the sample covers unified, dual, swapped, and spilled execution.
SAMPLE_MODELS: tuple[tuple[Model, int | None], ...] = (
    (Model.IDEAL, None),
    (Model.UNIFIED, 32),
    (Model.PARTITIONED, 16),
    (Model.SWAPPED, 16),
)


def sample_indices(
    n_loops: int, samples: int, seed: int
) -> tuple[int, ...]:
    """Deterministic sample of suite indices: one RNG, one seed, sorted."""
    if n_loops < 1:
        return ()
    count = max(0, min(samples, n_loops))
    rng = random.Random(seed)
    return tuple(sorted(rng.sample(range(n_loops), count)))


@dataclass(frozen=True)
class SampledValidation:
    """Outcome of one sampled simulator cross-check."""

    n_loops: int
    seed: int
    suite_seed: int
    latency: int
    indices: tuple[int, ...]
    tiers: tuple[str, ...]
    models: tuple[str, ...]
    points: tuple[PointValidation, ...]
    wall_seconds: float
    #: Per-point static proofs (one per sampled point, tier-independent);
    #: empty when the caller disabled the static tier.
    static_points: tuple[StaticCheck, ...] = ()

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points) and all(
            check.ok for check in self.static_points
        )

    @property
    def mismatches(self) -> tuple[Mismatch, ...]:
        folded = tuple(m for point in self.points for m in point.mismatches)
        for check in self.static_points:
            folded += static_mismatches(check)
        return folded

    def describe(self) -> str:
        """One footer-sized line: what ran and whether it agreed."""
        verdict = (
            "all execution-consistent"
            if self.ok
            else f"{len(self.mismatches)} mismatch(es)"
        )
        proofs = (
            f" + {len(self.static_points)} static proofs"
            if self.static_points
            else ""
        )
        return (
            f"{len(self.indices)} sampled loops x {len(self.models)} models "
            f"x {len(self.tiers)} tiers = {len(self.points)} executions"
            f"{proofs}, {verdict} (seed {self.seed})"
        )

    def format(self) -> str:
        """Full text form (the ``repro validate`` output)."""
        lines = [
            f"sim cross-check: {self.describe()}",
            f"suite: {self.n_loops} loops (seed {self.suite_seed}), "
            f"paper machine L{self.latency}, "
            f"indices {list(self.indices)}",
            f"wall time: {self.wall_seconds:.1f}s",
        ]
        for point in self.points:
            if not point.ok:
                lines.append(point.describe())
        for check in self.static_points:
            if not check.ok:
                lines.append(check.describe())
        if self.ok:
            lines.append("every sampled point matches its execution")
        return "\n".join(lines)


def run_sampled_validation(
    n_loops: int = 200,
    samples: int = DEFAULT_SAMPLES,
    seed: int = DEFAULT_SEED,
    suite_seed: int = DEFAULT_SEED,
    latency: int = DEFAULT_LATENCY,
    tiers: tuple[str, ...] = TIERS,
    iterations: int | None = None,
    static: bool = True,
) -> SampledValidation:
    """Validate a seeded sample of suite points across models and tiers."""
    start = time.perf_counter()
    indices = sample_indices(n_loops, samples, seed)
    loops = list(perfect_club_like(n_loops, seed=suite_seed))
    machine = paper_config(latency)
    points: list[PointValidation] = []
    static_points: list[StaticCheck] = []
    for index in indices:
        loop = loops[index]
        for model, budget in SAMPLE_MODELS:
            reproducer = {
                "loop": {
                    "type": "loop",
                    "kind": "suite",
                    "index": index,
                    "n_loops": n_loops,
                    "seed": suite_seed,
                },
                "machine": {
                    "type": "machine",
                    "kind": "paper",
                    "latency": latency,
                },
                "model": model.value,
                "register_budget": budget,
            }
            report = validate_point(
                loop,
                machine,
                model,
                budget,
                tiers=tiers,
                iterations=iterations,
                reproducer=reproducer,
                static=static,
            )
            points.extend(report.points)
            if report.static is not None:
                static_points.append(report.static)
    return SampledValidation(
        n_loops=n_loops,
        seed=seed,
        suite_seed=suite_seed,
        latency=latency,
        indices=indices,
        tiers=tuple(tiers),
        models=tuple(model.value for model, _budget in SAMPLE_MODELS),
        points=tuple(points),
        wall_seconds=time.perf_counter() - start,
        static_points=tuple(static_points),
    )


__all__ = [
    "DEFAULT_LATENCY",
    "DEFAULT_SAMPLES",
    "SAMPLE_MODELS",
    "SampledValidation",
    "run_sampled_validation",
    "sample_indices",
]
