"""``repro.validate`` -- prove analytical claims by cycle-level execution.

The analytical pipeline (schedule -> allocate -> swap -> spill) *claims*
an II, a register requirement, and a traffic density for every evaluated
point; :mod:`repro.sim` can *execute* such a point against a golden
reference interpreter.  This package wires the two together into a
differential gate:

* :func:`validate_evaluation` executes one
  :class:`~repro.spill.spiller.LoopEvaluation` and cross-checks observed
  II, per-file register occupancy, and memory-bus traffic against the
  claims;
* :func:`validate_point` does so under every kernel tier
  (``REPRO_KERNELS=batch/1/0``), additionally requiring the tiers'
  analytics to agree;
* :func:`run_sampled_validation` drives a seeded sample of suite points
  through the above -- the ``repro report --check`` and ``repro
  validate`` entry.

See ``docs/validation.md`` for what is checked and how to read a
:class:`Mismatch`.
"""

from repro.validate.differential import (
    FileOccupancy,
    Mismatch,
    PointValidation,
    TIERS,
    ValidationError,
    ValidationReport,
    allocation_for,
    default_iterations,
    reproducer_spec,
    static_mismatches,
    validate_evaluation,
    validate_point,
)
from repro.validate.sampling import (
    DEFAULT_LATENCY,
    DEFAULT_SAMPLES,
    SAMPLE_MODELS,
    SampledValidation,
    run_sampled_validation,
    sample_indices,
)

__all__ = [
    "DEFAULT_LATENCY",
    "DEFAULT_SAMPLES",
    "FileOccupancy",
    "Mismatch",
    "PointValidation",
    "SAMPLE_MODELS",
    "SampledValidation",
    "TIERS",
    "ValidationError",
    "ValidationReport",
    "allocation_for",
    "default_iterations",
    "reproducer_spec",
    "run_sampled_validation",
    "sample_indices",
    "static_mismatches",
    "validate_evaluation",
    "validate_point",
]
