"""Workload-level performance aggregation (Figure 8).

The paper evaluates performance as the initiation interval under a perfect
memory system: a loop's cost is ``trip_count * II``.  A model's performance
on a workload is reported *relative to the Ideal machine* (infinite
registers), so Ideal is 1.0 and spill-induced II growth pushes the other
models below it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.spill.spiller import LoopEvaluation, evaluate_loop


def total_cycles(evaluations: Sequence[LoopEvaluation]) -> int:
    """Sum of ``trip_count * II`` over the workload."""
    return sum(ev.cycles for ev in evaluations)


def relative_performance(
    evaluations: Sequence[LoopEvaluation],
    ideal: Sequence[LoopEvaluation],
) -> float:
    """Workload speed of a model relative to infinite registers (<= 1.0)."""
    model_cycles = total_cycles(evaluations)
    ideal_cycles = total_cycles(ideal)
    return ideal_cycles / model_cycles if model_cycles else 0.0


@dataclass(frozen=True)
class ModelRun:
    """Evaluations of every loop of a workload under one model."""

    model: Model
    machine: MachineConfig
    register_budget: int | None
    evaluations: tuple[LoopEvaluation, ...]

    @property
    def cycles(self) -> int:
        return total_cycles(self.evaluations)

    @property
    def total_spills(self) -> int:
        return sum(ev.spilled_values for ev in self.evaluations)

    @property
    def loops_spilled(self) -> int:
        return sum(1 for ev in self.evaluations if ev.spilled_values)

    @property
    def loops_not_fitting(self) -> int:
        return sum(1 for ev in self.evaluations if not ev.fits)


def run_model(
    loops: Sequence[Loop],
    machine: MachineConfig,
    model: Model,
    register_budget: int | None,
    **kwargs: Any,
) -> ModelRun:
    """Evaluate a workload under one model and register budget."""
    evaluations = tuple(
        evaluate_loop(loop, machine, model, register_budget, **kwargs)
        for loop in loops
    )
    return ModelRun(
        model=model,
        machine=machine,
        register_budget=register_budget,
        evaluations=evaluations,
    )


def run_all_models(
    loops: Sequence[Loop],
    machine: MachineConfig,
    register_budget: int,
    models: Sequence[Model] = tuple(Model),
    **kwargs: Any,
) -> dict[Model, ModelRun]:
    """Evaluate a workload under every model at one register budget."""
    return {
        model: run_model(loops, machine, model, register_budget, **kwargs)
        for model in models
    }


__all__ = [
    "ModelRun",
    "relative_performance",
    "run_all_models",
    "run_model",
    "total_cycles",
]
