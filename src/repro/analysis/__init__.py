"""Aggregation and presentation: how per-loop numbers become figures.

Implements the paper's three aggregate views: cumulative distributions of
register requirements (Figures 6/7, :mod:`~repro.analysis.distributions`),
workload performance relative to the Ideal machine (Figure 8,
:mod:`~repro.analysis.performance`), and the table/chart primitives every
driver and the reproduction report render through
(:mod:`~repro.analysis.reporting`).

Key entry points: :func:`cumulative_distribution` and
:func:`fraction_fitting` (static/dynamic curves), :func:`run_model` /
:func:`relative_performance` (Figure 8 aggregation), and the
:class:`Table` / :class:`BarChart` / :class:`LineChart` primitives with
text, Markdown, HTML, ASCII-art, and SVG renderings.
"""

from repro.analysis.distributions import (
    DEFAULT_GRID,
    CumulativeDistribution,
    CumulativePoint,
    cumulative_distribution,
    fraction_fitting,
)
from repro.analysis.performance import (
    ModelRun,
    relative_performance,
    run_all_models,
    run_model,
    total_cycles,
)
from repro.analysis.reporting import (
    BarChart,
    LineChart,
    Table,
    bar,
    format_table,
    percent,
)

__all__ = [
    "DEFAULT_GRID",
    "BarChart",
    "CumulativeDistribution",
    "CumulativePoint",
    "LineChart",
    "ModelRun",
    "Table",
    "bar",
    "cumulative_distribution",
    "format_table",
    "fraction_fitting",
    "percent",
    "relative_performance",
    "run_all_models",
    "run_model",
    "total_cycles",
]
