"""Distributions, performance aggregation, and report formatting."""

from repro.analysis.distributions import (
    DEFAULT_GRID,
    CumulativeDistribution,
    CumulativePoint,
    cumulative_distribution,
    fraction_fitting,
)
from repro.analysis.performance import (
    ModelRun,
    relative_performance,
    run_all_models,
    run_model,
    total_cycles,
)
from repro.analysis.reporting import bar, format_table, percent

__all__ = [
    "DEFAULT_GRID",
    "CumulativeDistribution",
    "CumulativePoint",
    "ModelRun",
    "bar",
    "cumulative_distribution",
    "format_table",
    "fraction_fitting",
    "percent",
    "relative_performance",
    "run_all_models",
    "run_model",
    "total_cycles",
]
