"""Table and chart primitives shared by the drivers and ``repro report``.

Every experiment driver renders its results as fixed-width ASCII tables, so
a terminal run of a benchmark shows exactly the rows/series the paper's
table or figure reports.  The same :class:`Table` objects also render to
Markdown and HTML for the reproduction artifact (:mod:`repro.report`), and
:class:`BarChart` / :class:`LineChart` render figure-style data as ASCII
blocks or self-contained SVG -- no third-party plotting dependency.

Chart SVG carries no inline colors: every mark is classed ``series-<slot>``
and the embedding document's stylesheet maps slots to its palette, so the
charts follow the page's light/dark scheme for free.
"""

from __future__ import annotations

import html as _html
from dataclasses import dataclass
from typing import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


# ----------------------------------------------------------------------
# Tables
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Table:
    """A titled grid of cells that renders to text, Markdown, or HTML.

    Cells are stored raw; floats format to two decimals everywhere, so a
    driver can hand in numbers and get consistent output in all three
    targets.  ``row_classes`` (optional, HTML only) attaches a CSS class
    per row -- the delta table uses it to colour pass/fail rows.
    """

    headers: tuple[str, ...]
    rows: tuple[tuple[object, ...], ...]
    title: str | None = None
    row_classes: tuple[str, ...] | None = None

    @staticmethod
    def build(
        headers: Sequence[str],
        rows: Sequence[Sequence[object]],
        title: str | None = None,
        row_classes: Sequence[str] | None = None,
    ) -> "Table":
        return Table(
            headers=tuple(headers),
            rows=tuple(tuple(row) for row in rows),
            title=title,
            row_classes=tuple(row_classes) if row_classes else None,
        )

    def _cells(self) -> list[list[str]]:
        return [[_fmt(c) for c in row] for row in self.rows]

    def to_text(self) -> str:
        """The fixed-width layout every CLI driver prints."""
        cells = self._cells()
        widths = [len(h) for h in self.headers]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            h.ljust(w) for h, w in zip(self.headers, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for row in cells:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """A GitHub-flavoured pipe table (title as bold lead-in line)."""
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("| " + " | ".join("---" for _ in self.headers) + " |")
        for row in self._cells():
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def to_html(self) -> str:
        parts = ["<table>"]
        if self.title:
            parts.append(f"<caption>{_html.escape(self.title)}</caption>")
        parts.append("<thead><tr>")
        for h in self.headers:
            parts.append(f"<th>{_html.escape(h)}</th>")
        parts.append("</tr></thead><tbody>")
        for index, row in enumerate(self._cells()):
            cls = ""
            if self.row_classes is not None and index < len(self.row_classes):
                name = self.row_classes[index]
                if name:
                    cls = f' class="{_html.escape(name, quote=True)}"'
            parts.append(f"<tr{cls}>")
            for cell in row:
                parts.append(f"<td>{_html.escape(cell)}</td>")
            parts.append("</tr>")
        parts.append("</tbody></table>")
        return "".join(parts)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    return Table.build(headers, rows, title=title).to_text()


def percent(fraction: float, digits: int = 1) -> str:
    """``0.107 -> '10.7%'``."""
    return f"{100.0 * fraction:.{digits}f}%"


def bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A proportional ASCII bar for figure-style output."""
    n = round(max(0.0, min(1.0, fraction)) * width)
    return fill * n + "." * (width - n)


# ----------------------------------------------------------------------
# Charts
# ----------------------------------------------------------------------
#: Colour-slot identity is fixed per entity across the whole report: a
#: series keeps its slot no matter which chart (or how many series) it
#: appears in.  Slots index the embedding stylesheet's palette.
SERIES_CLASS = "series-{slot}"

_SVG_WIDTH = 640
_SVG_BAR_HEIGHT = 260
_SVG_LINE_HEIGHT = 280
_MARGIN_LEFT = 52
_MARGIN_RIGHT = 16
_MARGIN_TOP = 28
_MARGIN_BOTTOM = 46


def _svg_header(width: int, height: int, title: str) -> list[str]:
    return [
        (
            f'<svg class="chart" role="img" viewBox="0 0 {width} {height}" '
            f'width="{width}" height="{height}" '
            'xmlns="http://www.w3.org/2000/svg">'
        ),
        f"<title>{_html.escape(title)}</title>",
    ]


def _svg_legend(
    series: Sequence[str], slots: Sequence[int], width: int
) -> list[str]:
    parts = []
    x = _MARGIN_LEFT
    y = 14
    for name, slot in zip(series, slots):
        cls = SERIES_CLASS.format(slot=slot)
        parts.append(
            f'<rect class="{cls}" x="{x}" y="{y - 8}" '
            'width="10" height="10" rx="2"/>'
        )
        label = _html.escape(name)
        parts.append(
            f'<text class="legend" x="{x + 14}" y="{y + 1}">{label}</text>'
        )
        x += 14 + 7 * len(name) + 18
    return parts


def _grid_lines(
    height: int, width: int, max_value: float, unit: str
) -> list[str]:
    """Four horizontal gridlines with y-axis value labels."""
    parts = []
    plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
    for i in range(5):
        frac = i / 4
        y = _MARGIN_TOP + plot_h * (1 - frac)
        parts.append(
            f'<line class="grid" x1="{_MARGIN_LEFT}" y1="{y:.1f}" '
            f'x2="{width - _MARGIN_RIGHT}" y2="{y:.1f}"/>'
        )
        value = max_value * frac
        label = f"{value:g}{unit}"
        parts.append(
            f'<text class="axis" x="{_MARGIN_LEFT - 6}" y="{y + 3:.1f}" '
            f'text-anchor="end">{_html.escape(label)}</text>'
        )
    return parts


@dataclass(frozen=True)
class BarChart:
    """Grouped bars: one cluster of per-series bars per group.

    ``groups`` maps a group label to its values, aligned with ``series``.
    ``slots`` pins every series to a palette slot so an entity keeps its
    colour across charts (default: positional).
    """

    title: str
    series: tuple[str, ...]
    groups: tuple[tuple[str, tuple[float, ...]], ...]
    slots: tuple[int, ...] = ()
    max_value: float | None = None
    unit: str = ""

    def _slots(self) -> tuple[int, ...]:
        return self.slots or tuple(range(len(self.series)))

    def _ceiling(self) -> float:
        if self.max_value is not None:
            return self.max_value
        peak = max(
            (v for _, values in self.groups for v in values), default=1.0
        )
        return peak or 1.0

    def to_ascii(self, width: int = 36) -> str:
        """One bar row per (group, series), scaled to the chart ceiling."""
        ceiling = self._ceiling()
        label_w = max(len(g) for g, _ in self.groups)
        series_w = max(len(s) for s in self.series)
        lines = [self.title]
        for group, values in self.groups:
            for name, value in zip(self.series, values):
                lines.append(
                    f"{group.ljust(label_w)}  {name.ljust(series_w)}  "
                    f"{bar(value / ceiling, width=width)} {value:.3f}"
                )
            lines.append("")
        return "\n".join(lines).rstrip()

    def to_svg(self) -> str:
        width, height = _SVG_WIDTH, _SVG_BAR_HEIGHT
        ceiling = self._ceiling()
        slots = self._slots()
        plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
        parts = _svg_header(width, height, self.title)
        parts += _grid_lines(height, width, ceiling, self.unit)
        n_groups = len(self.groups)
        n_series = len(self.series)
        group_w = plot_w / max(1, n_groups)
        # 2px gaps between adjacent bars; bars fill ~70% of the group band.
        bar_w = max(3.0, (group_w * 0.7 - 2 * (n_series - 1)) / n_series)
        for g_index, (group, values) in enumerate(self.groups):
            cluster_w = bar_w * n_series + 2 * (n_series - 1)
            x0 = _MARGIN_LEFT + g_index * group_w + (group_w - cluster_w) / 2
            for s_index, (name, value) in enumerate(
                zip(self.series, values)
            ):
                h = plot_h * min(1.0, max(0.0, value / ceiling))
                x = x0 + s_index * (bar_w + 2)
                y = _MARGIN_TOP + plot_h - h
                cls = SERIES_CLASS.format(slot=slots[s_index])
                tooltip = _html.escape(
                    f"{group} {name}: {value:.3f}{self.unit}"
                )
                parts.append(
                    f'<rect class="{cls}" x="{x:.1f}" y="{y:.1f}" '
                    f'width="{bar_w:.1f}" height="{h:.1f}" rx="2">'
                    f"<title>{tooltip}</title></rect>"
                )
            label_x = _MARGIN_LEFT + g_index * group_w + group_w / 2
            parts.append(
                f'<text class="axis" x="{label_x:.1f}" '
                f'y="{height - _MARGIN_BOTTOM + 16}" text-anchor="middle">'
                f"{_html.escape(group)}</text>"
            )
        parts.append(
            f'<line class="baseline" x1="{_MARGIN_LEFT}" '
            f'y1="{_MARGIN_TOP + plot_h}" x2="{width - _MARGIN_RIGHT}" '
            f'y2="{_MARGIN_TOP + plot_h}"/>'
        )
        parts += _svg_legend(self.series, slots, width)
        parts.append("</svg>")
        return "".join(parts)


@dataclass(frozen=True)
class LineChart:
    """Per-series polylines over a shared numeric x-axis (Figures 6/7)."""

    title: str
    x_values: tuple[float, ...]
    series: tuple[str, ...]
    values: tuple[tuple[float, ...], ...]  # aligned with ``series``
    slots: tuple[int, ...] = ()
    max_value: float | None = None
    unit: str = ""
    x_label: str = ""

    def _slots(self) -> tuple[int, ...]:
        return self.slots or tuple(range(len(self.series)))

    def _ceiling(self) -> float:
        if self.max_value is not None:
            return self.max_value
        peak = max((v for ys in self.values for v in ys), default=1.0)
        return peak or 1.0

    def to_ascii(self, height: int = 12) -> str:
        """A character plot: one symbol per series, rows from max to 0."""
        ceiling = self._ceiling()
        symbols = [name[0] for name in self.series]
        columns = len(self.x_values)
        rows: list[list[str]] = [
            [" "] * columns for _ in range(height)
        ]
        for ys, symbol in zip(self.values, symbols):
            for col, value in enumerate(ys):
                level = round((height - 1) * min(1.0, value / ceiling))
                row = height - 1 - level
                cell = rows[row][col]
                # Coinciding series stack into a '*' so overlap is visible.
                rows[row][col] = symbol if cell == " " else "*"
        lines = [self.title]
        for index, row in enumerate(rows):
            left = (
                f"{ceiling:g}{self.unit}".rjust(7)
                if index == 0
                else ("0".rjust(7) if index == height - 1 else " " * 7)
            )
            lines.append(f"{left} |" + "  ".join(row))
        axis = " " * 7 + "-" * (2 + 3 * columns - 2)
        lines.append(axis)
        # Place each x label at its column, dropping any that would collide.
        label_row = [" "] * (9 + 3 * columns + 6)
        cursor = 0
        for col, x in enumerate(self.x_values):
            text = f"{x:g}"
            start = 9 + 3 * col
            if start < cursor:
                continue
            for offset, char in enumerate(text):
                label_row[start + offset] = char
            cursor = start + len(text) + 1
        lines.append("".join(label_row).rstrip())
        legend = "   ".join(
            f"{symbol}={name}" for symbol, name in zip(symbols, self.series)
        )
        lines.append(f"{self.x_label}   [{legend}]".strip())
        return "\n".join(lines)

    def to_svg(self) -> str:
        width, height = _SVG_WIDTH, _SVG_LINE_HEIGHT
        ceiling = self._ceiling()
        slots = self._slots()
        plot_w = width - _MARGIN_LEFT - _MARGIN_RIGHT
        plot_h = height - _MARGIN_TOP - _MARGIN_BOTTOM
        x_min, x_max = self.x_values[0], self.x_values[-1]
        span = (x_max - x_min) or 1.0

        def px(x: float) -> float:
            return _MARGIN_LEFT + plot_w * (x - x_min) / span

        def py(y: float) -> float:
            return _MARGIN_TOP + plot_h * (1 - min(1.0, y / ceiling))

        parts = _svg_header(width, height, self.title)
        parts += _grid_lines(height, width, ceiling, self.unit)
        for x in self.x_values:
            parts.append(
                f'<text class="axis" x="{px(x):.1f}" '
                f'y="{height - _MARGIN_BOTTOM + 16}" text-anchor="middle">'
                f"{x:g}</text>"
            )
        for name, ys, slot in zip(self.series, self.values, slots):
            cls = SERIES_CLASS.format(slot=slot)
            points = " ".join(
                f"{px(x):.1f},{py(y):.1f}"
                for x, y in zip(self.x_values, ys)
            )
            parts.append(f'<polyline class="{cls} line" points="{points}"/>')
            for x, y in zip(self.x_values, ys):
                tooltip = _html.escape(
                    f"{name} @ {x:g}: {y:.1f}{self.unit}"
                )
                parts.append(
                    f'<circle class="{cls}" cx="{px(x):.1f}" '
                    f'cy="{py(y):.1f}" r="4">'
                    f"<title>{tooltip}</title></circle>"
                )
        if self.x_label:
            parts.append(
                f'<text class="axis" x="{width / 2:.0f}" '
                f'y="{height - 8}" text-anchor="middle">'
                f"{_html.escape(self.x_label)}</text>"
            )
        parts += _svg_legend(self.series, slots, width)
        parts.append("</svg>")
        return "".join(parts)


Chart = BarChart | LineChart

__all__ = [
    "BarChart",
    "Chart",
    "LineChart",
    "SERIES_CLASS",
    "Table",
    "bar",
    "format_table",
    "percent",
]
