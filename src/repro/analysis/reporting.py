"""Plain-text table formatting for experiment output.

All experiment drivers print their results as fixed-width ASCII tables so a
terminal run of a benchmark shows exactly the rows/series the paper's table
or figure reports.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append(
            "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def percent(fraction: float, digits: int = 1) -> str:
    """``0.107 -> '10.7%'``."""
    return f"{100.0 * fraction:.{digits}f}%"


def bar(fraction: float, width: int = 40, fill: str = "#") -> str:
    """A proportional ASCII bar for figure-style output."""
    n = round(max(0.0, min(1.0, fraction)) * width)
    return fill * n + "." * (width - n)


__all__ = ["bar", "format_table", "percent"]
