"""Cumulative distributions of register requirements (Figures 6 and 7).

Figure 6 plots, for each register-file model, the fraction of *loops* whose
requirement fits in x registers; Figure 7 weights each loop by its estimated
execution time ("the number of iterations each loop has been executed times
the II obtained once the loop has been modulo scheduled", Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

#: The x-axis the paper uses: 16 to 128 registers.
DEFAULT_GRID: tuple[int, ...] = (8, 16, 24, 32, 48, 64, 80, 96, 112, 128)


@dataclass(frozen=True)
class CumulativePoint:
    registers: int
    fraction: float  # in [0, 1]

    @property
    def percent(self) -> float:
        return 100.0 * self.fraction


@dataclass(frozen=True)
class CumulativeDistribution:
    """Fraction of (weighted) loops allocatable within x registers."""

    label: str
    points: tuple[CumulativePoint, ...]

    def at(self, registers: int) -> float:
        """Interpolation-free lookup: fraction fitting in ``registers``."""
        best = 0.0
        for p in self.points:
            if p.registers <= registers:
                best = p.fraction
        return best

    def as_rows(self) -> list[tuple[int, float]]:
        return [(p.registers, p.percent) for p in self.points]


def cumulative_distribution(
    requirements: Sequence[int],
    weights: Sequence[float] | None = None,
    grid: Sequence[int] = DEFAULT_GRID,
    label: str = "",
) -> CumulativeDistribution:
    """Build the cumulative distribution of register requirements.

    Args:
        requirements: Per-loop register requirement.
        weights: Per-loop weights (execution cycles for the dynamic
            distribution); ``None`` weights every loop equally (static).
    """
    if weights is None:
        weights = [1.0] * len(requirements)
    if len(weights) != len(requirements):
        raise ValueError("requirements and weights must align")
    total = float(sum(weights))
    points = []
    for threshold in grid:
        covered = sum(
            w for r, w in zip(requirements, weights) if r <= threshold
        )
        points.append(
            CumulativePoint(threshold, covered / total if total else 0.0)
        )
    return CumulativeDistribution(label=label, points=tuple(points))


def fraction_fitting(
    requirements: Sequence[int],
    threshold: int,
    weights: Sequence[float] | None = None,
) -> float:
    """Fraction of (weighted) loops with requirement <= threshold."""
    if weights is None:
        weights = [1.0] * len(requirements)
    total = float(sum(weights))
    if not total:
        return 0.0
    covered = sum(w for r, w in zip(requirements, weights) if r <= threshold)
    return covered / total


__all__ = [
    "DEFAULT_GRID",
    "CumulativeDistribution",
    "CumulativePoint",
    "cumulative_distribution",
    "fraction_fitting",
]
