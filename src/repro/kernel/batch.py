"""Grid-batched evaluation: one spill chain per loop serves a whole sweep.

The paper's experiments are grids -- every figure sweeps loops x register
budgets x file models -- yet the per-point pipeline re-derives the shared
schedule-stage work for each point.  The key structural fact this module
exploits: for a fixed (dependence graph, machine, victim policy, pressure
strategy, II escalation), the *state sequence* of the Section 5.4 loop is
identical for every (model, budget) point.  Each round either spills the
policy's victim (a model-independent choice) or reschedules at the escalated
II; the model and budget only decide *where* a walk exits the sequence.

So a whole grid evaluates against one lazily-grown chain of :class:`_Node`
states.  Each node computes its schedule-stage artifacts exactly once, as
flat arrays shared by every walk that passes through it:

* the MII and the IMS schedule search (:mod:`repro.kernel.modulo`), without
  materializing ``Schedule``/``Placement`` dataclasses;
* lifetime bounds and the difference-array live profile
  (:mod:`repro.kernel.lifetimes`), reused in bulk as the MaxLive lower
  bounds of all three finite models;
* per-model exact requirements over shared first-fit bitmask state
  (:mod:`repro.kernel.firstfit` / :mod:`repro.kernel.dual`), memoized per
  (model[, estimator]) so adjacent sweep points that differ only in budget
  or model re-evaluate incrementally instead of from scratch.

Walks are further gated by lower bounds: while ``MaxLive > budget`` the
exact first-fit allocation cannot fit either, so the expensive allocation is
skipped entirely on the interior of a spill walk and only computed where a
halt decision actually needs it (MaxLive is a lower bound on any legal
rotating allocation; the per-cluster/global peaks bound the dual models).

Every number produced here is pinned bit-identical to the per-point kernels
and the dict reference by the differential suite
(``tests/properties/test_batch_differential.py``, ``tests/engine/test_batch.py``);
the chain is the same state machine, traversed once instead of per point.

This module deliberately knows nothing about engine jobs: grouping (by the
same content fingerprints that key the pipeline ``ArtifactStore``) and the
result dataclasses live in :mod:`repro.engine.jobs`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.ir.ddg import DependenceGraph
from repro.ir.operation import OpType
from repro.kernel import dual as kdual
from repro.kernel import modulo as kmodulo
from repro.kernel.firstfit import BitOccupancy, first_fit_shift
from repro.kernel.lifetimes import lifetime_bounds, live_profile_spans
from repro.kernel.loop import LoopArrays, lower_loop
from repro.kernel.swap import greedy_swap_search
from repro.machine.config import MachineConfig
from repro.pipeline.policies import get_escalation
from repro.sched.modulo import SchedulingFailure

#: Victim policies with an array-native implementation below.  Custom
#: registered policies are arbitrary Python objects interrogating Schedule
#: dataclasses, so groups naming one fall back to per-job execution.
ARRAY_POLICIES = frozenset(
    ("longest", "most_registers", "first", "most_consumers", "least_traffic")
)


def supports(victim_policy: str, pressure_strategy: str) -> bool:
    """Whether a job group with these knobs can ride a :class:`LoopChain`.

    Escalations are not restricted: the strategy object is called directly,
    so custom registered escalations batch fine.  ``increase_ii`` never
    selects a victim, so any policy name batches under it.
    """
    if pressure_strategy == "increase_ii":
        return True
    return pressure_strategy == "spill" and victim_policy in ARRAY_POLICIES


# ----------------------------------------------------------------------
# Array MII (same bounds as repro.sched.mii, on the lowered arrays)
# ----------------------------------------------------------------------
def _positive_cycle(n: int, edges: list, ii: int) -> bool:
    """Bellman-Ford positive-cycle test on weights ``delay - II * distance``."""
    dist = [0] * n
    for _ in range(n):
        changed = False
        for src, dst, delay, distance in edges:
            weight = delay - ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


def array_mii(la: LoopArrays) -> int:
    """``max(ResMII, RecMII)`` of lowered arrays; equals ``minimum_ii``."""
    counts = la.ma.counts
    uses = [0] * la.ma.n_pools
    for p in la.pool:
        uses[p] += 1
    res = 1
    for p, n_uses in enumerate(uses):
        if n_uses:
            bound = -(-n_uses // counts[p])
            if bound > res:
                res = bound

    edges = list(zip(la.e_src, la.e_dst, la.e_delay, la.e_dist))
    if not any(dist > 0 for *_, dist in edges):
        return res  # acyclic: RecMII = 1 <= ResMII
    lo, hi = 1, max(1, sum(la.e_delay))
    while _positive_cycle(la.n, edges, hi):
        hi *= 2
    while lo < hi:
        mid = (lo + hi) // 2
        if _positive_cycle(la.n, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return res if res > lo else lo


_UNSET = object()


def _spill_arrays(
    la: LoopArrays,
    extra: list[tuple[int, int, int, int]],
    k: int,
    store_pool: int,
    load_pool: int,
    store_lat: int,
    load_lat: int,
) -> tuple[LoopArrays, list[tuple[int, int, int, int]], int]:
    """Spill value slot ``k`` directly in array space.

    The graph transform of :func:`repro.spill.spiller.spill_value` is pure
    appends plus consumer rewiring, so the child's :class:`LoopArrays` is
    derived from the parent's without materializing (or re-lowering) a
    :class:`DependenceGraph`: a store consuming the victim, one load per
    distinct ``(consumer, distance)``, every former use redirected to its
    load at distance 0, and a memory edge per load carrying the original
    distance.  Untouched per-op lists are shared with the parent (they are
    never mutated after construction); edge arrays are regenerated from the
    rewired adjacency -- grouped by producer rather than in operand order,
    which is immaterial (heights/MII are fixpoints and the scheduler reduces
    over edge lists with max/min only).  Returns the child arrays, its
    explicit edges, and the number of loads added.
    """
    v = la.values[k]
    uses = la.cons[v]
    n_old = la.n
    store = n_old
    # One load per distinct (consumer, distance), in first-use order; a
    # consumer using the value twice at one distance shares a load (and
    # contributes two rewired uses to it).
    load_slot: dict[tuple[int, int], int] = {}
    load_cons: list[list[tuple[int, int]]] = []
    load_dist: list[int] = []
    for c, d in uses:
        j = load_slot.get((c, d))
        if j is None:
            j = len(load_cons)
            load_slot[(c, d)] = j
            load_cons.append([])
            load_dist.append(d)
        load_cons[j].append((c, 0))
    n_loads = len(load_cons)
    n = n_old + 1 + n_loads

    ids = la.ids + [la.ids[-1] + 1 + t for t in range(1 + n_loads)]
    index = dict(la.index)
    for t in range(1 + n_loads):
        index[ids[n_old + t]] = n_old + t
    pool = la.pool + [store_pool] + [load_pool] * n_loads
    latency = la.latency + [store_lat] + [load_lat] * n_loads
    defines = la.defines + [False] + [True] * n_loads
    values = la.values + list(range(n_old + 1, n))
    cons = list(la.cons)
    cons[v] = [(store, 0)]
    cons.append([])  # the store defines no value
    cons.extend(load_cons)

    e_src: list[int] = []
    e_dst: list[int] = []
    e_delay: list[int] = []
    e_dist: list[int] = []
    for u in range(n):
        lu = latency[u]
        for c, d in cons[u]:
            e_src.append(u)
            e_dst.append(c)
            e_delay.append(lu)
            e_dist.append(d)
    new_extra = extra + [
        (store, n_old + 1 + j, 1, load_dist[j]) for j in range(n_loads)
    ]
    for src, dst, delay, d in new_extra:
        e_src.append(src)
        e_dst.append(dst)
        e_delay.append(delay)
        e_dist.append(d)

    in_edges: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
    out_edges: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
    for src, dst, delay, d in zip(e_src, e_dst, e_delay, e_dist):
        in_edges[dst].append((src, delay, d))
        out_edges[src].append((dst, delay, d))

    child = LoopArrays(
        ma=la.ma,
        n=n,
        ids=ids,
        index=index,
        pool=pool,
        latency=latency,
        defines=defines,
        values=values,
        cons=cons,
        e_src=e_src,
        e_dst=e_dst,
        e_delay=e_delay,
        e_dist=e_dist,
        in_edges=in_edges,
        out_edges=out_edges,
    )
    return child, new_extra, n_loads


class _Node:
    """One state ``(graph, min II)`` of a loop's universal spill chain.

    Every artifact is lazy and computed at most once per node, no matter how
    many (model, budget) walks traverse it.  Only the root carries an actual
    :class:`DependenceGraph` (via the chain); spill children live entirely
    in array space (:func:`_spill_arrays`), and an escalation child shares
    the parent's lowered arrays and MII outright (the graph is unchanged;
    only the scheduling floor moves).
    """

    __slots__ = (
        "chain",
        "min_ii",
        "mem_ops",
        "spill_ops",
        "is_spill",
        "is_spill_store",
        "_la",
        "_extra",
        "_mii",
        "_sched",
        "_bounds",
        "_maxlive",
        "_asg",
        "_victim",
        "_spill_child",
        "_esc_child",
        "_exact",
        "_dual_lb",
    )

    def __init__(
        self,
        chain: "LoopChain",
        min_ii: int,
        mem_ops: int,
        spill_ops: int,
        is_spill: list[bool],
        is_spill_store: list[bool],
        la: LoopArrays | None = None,
        mii: int | None = None,
        extra: list[tuple[int, int, int, int]] | None = None,
    ) -> None:
        self.chain = chain
        self.min_ii = min_ii
        #: Memory/spill op counts per iteration, maintained incrementally:
        #: one spill adds one store plus one load per distinct (consumer,
        #: distance), all of them spill memory ops.
        self.mem_ops = mem_ops
        self.spill_ops = spill_ops
        #: Per op index: ``is_spill`` and ``is_spill and STORE`` flags.
        self.is_spill = is_spill
        self.is_spill_store = is_spill_store
        self._la = la
        self._extra = extra
        self._mii = mii
        self._sched: tuple[list[int], list[int], int] | None = None
        self._bounds: tuple[list[int], list[int]] | None = None
        self._maxlive: int | None = None
        self._asg: list[int] | None = None
        self._victim = _UNSET
        self._spill_child: "_Node | None" = None
        self._esc_child: "_Node | None" = None
        self._exact: dict = {}
        self._dual_lb: int | None = None

    # ------------------------------------------------------------------
    # Schedule-stage artifacts (computed once, shared by every walk)
    # ------------------------------------------------------------------
    @property
    def la(self) -> LoopArrays:
        if self._la is None:  # only ever the root: children set arrays
            self._la = lower_loop(self.chain.graph, self.chain.machine)
        return self._la

    @property
    def extra(self) -> list[tuple[int, int, int, int]]:
        """Explicit (non-flow) edges as ``(src, dst, delay, dist)`` tuples.

        Flow edges always precede explicit ones in ``la`` (both the graph
        lowering and :func:`_spill_arrays` keep that invariant), and there
        is exactly one flow edge per consumer-adjacency entry.
        """
        if self._extra is None:
            la = self.la
            n_flow = sum(len(c) for c in la.cons)
            self._extra = list(
                zip(
                    la.e_src[n_flow:],
                    la.e_dst[n_flow:],
                    la.e_delay[n_flow:],
                    la.e_dist[n_flow:],
                )
            )
        return self._extra

    @property
    def mii(self) -> int:
        if self._mii is None:
            self._mii = array_mii(self.la)
        return self._mii

    @property
    def sched(self) -> tuple[list[int], list[int], int]:
        """``(times, instances, ii)``: the II search of ``modulo_schedule``."""
        if self._sched is None:
            la = self.la
            mii = self.mii
            ii = mii if mii > self.min_ii else self.min_ii
            max_ii = max(ii, sum(la.latency) + la.n + 16)
            while ii <= max_ii:
                result = kmodulo.attempt(la, ii, 16)
                if result is not None:
                    self._sched = (result[0], result[1], ii)
                    break
                ii += 1
            else:
                raise SchedulingFailure(
                    f"{self.chain.name}: no schedule up to II={max_ii} "
                    f"(MII={mii})"
                )
        return self._sched

    @property
    def ii(self) -> int:
        return self.sched[2]

    @property
    def bounds(self) -> tuple[list[int], list[int]]:
        """Lifetime ``[start, end)`` per value slot of ``la.values``."""
        if self._bounds is None:
            times, _insts, ii = self.sched
            self._bounds = lifetime_bounds(self.la, times, ii)
        return self._bounds

    @property
    def maxlive(self) -> int:
        """Peak of the live profile: the unified lower bound."""
        if self._maxlive is None:
            starts, ends = self.bounds
            if starts:
                self._maxlive = max(
                    live_profile_spans(zip(starts, ends), self.ii)
                )
            else:
                self._maxlive = 0
        return self._maxlive

    @property
    def asg(self) -> list[int]:
        """The scheduler's unit-binding cluster assignment, per op index."""
        if self._asg is None:
            la = self.la
            _times, insts, _ii = self.sched
            cluster_of = la.ma.cluster_of
            pool = la.pool
            self._asg = [
                cluster_of[pool[i]][insts[i]] for i in range(la.n)
            ]
        return self._asg

    # ------------------------------------------------------------------
    # Requirements: lower bounds gate, exact values memoize per model
    # ------------------------------------------------------------------
    def lower_bound(self, model: Model) -> int:
        """A cheap bound below the exact requirement under ``model``.

        MaxLive never exceeds the first-fit span (``ceil(span/II)``), so
        while the bound exceeds the budget the walk can spill without
        paying for an exact allocation.
        """
        if model is Model.PARTITIONED:
            if self._dual_lb is None:
                starts, ends = self.bounds
                self._dual_lb = kdual.dual_max_live(
                    self.la, self.asg, starts, ends, self.ii
                )
            return self._dual_lb
        if model is Model.SWAPPED:
            # Valid under *any* assignment: at the global peak cycle every
            # live value occupies at least one subfile, so the most loaded
            # subfile holds at least ceil(MaxLive / clusters) of them.
            return -(-self.maxlive // self.la.ma.n_clusters)
        return self.maxlive

    def requirement(self, model: Model, estimator: SwapEstimator) -> int:
        """Exact registers required under ``model`` (memoized per node)."""
        if model is Model.PARTITIONED:
            key = "p"
        elif model is Model.SWAPPED:
            key = ("s", estimator)
        else:  # IDEAL and UNIFIED report the same unified allocation
            key = "u"
        cached = self._exact.get(key)
        if cached is None:
            if key == "u":
                cached = self._unified_registers()
            elif key == "p":
                starts, ends = self.bounds
                cached = kdual.dual_registers(
                    self.la, self.asg, starts, ends, self.ii
                )
            else:
                cached = self._swapped_registers(estimator)
            self._exact[key] = cached
        return cached

    def _unified_registers(self) -> int:
        """First-fit span of the single file: ``allocate_unified`` exactly."""
        starts, ends = self.bounds
        ii = self.ii
        if not starts:
            return 0
        # Same insertion order as regalloc.firstfit.first_fit: increasing
        # start, ties by op id (slot order == id order).
        order = sorted(range(len(starts)), key=lambda k: (starts[k], k))
        occupied = BitOccupancy()
        lo = None
        hi = None
        for k in order:
            shift = first_fit_shift(starts[k], ends[k], ii, (occupied,))
            a = starts[k] + shift * ii
            b = ends[k] + shift * ii
            occupied.add(a, b)
            if lo is None or a < lo:
                lo = a
            if hi is None or b > hi:
                hi = b
        return -(-(hi - lo) // ii)

    def _swapped_registers(self, estimator: SwapEstimator) -> int:
        """Greedy swap then dual allocation: ``swapped_requirement`` exactly."""
        la = self.la
        times, insts, ii = self.sched
        starts, ends = self.bounds
        rows = [t % ii for t in times]
        insts = list(insts)
        asg = list(self.asg)
        greedy_swap_search(
            la,
            ii,
            rows,
            insts,
            asg,
            starts,
            ends,
            estimator is SwapEstimator.FIRSTFIT,
            1000,
            False,
        )
        return kdual.dual_registers(la, asg, starts, ends, ii)

    # ------------------------------------------------------------------
    # Transitions (model-independent: shared by every walk)
    # ------------------------------------------------------------------
    @property
    def victim(self) -> int | None:
        """The policy's victim as a value slot index, or ``None``."""
        if self._victim is _UNSET:
            self._victim = self._select_victim()
        return self._victim

    def _select_victim(self) -> int | None:
        la = self.la
        is_spill = self.is_spill
        is_spill_store = self.is_spill_store
        cons = la.cons
        values = la.values
        candidates = []
        for k, v in enumerate(values):
            if is_spill[v]:
                continue
            uses = cons[v]
            if not uses:
                continue
            # Skip values already spilled (only consumer: a spill store).
            if all(is_spill_store[c] for c, _dist in uses):
                continue
            candidates.append(k)
        if not candidates:
            return None
        if self.chain.policy == "first":
            return candidates[0]  # slots ascend with op id
        starts, ends = self.bounds
        ii = self.ii
        policy = self.chain.policy
        # Indices ascend with op ids, so every id tie break holds on slots.
        if policy == "longest":
            return max(
                candidates,
                key=lambda k: (ends[k] - starts[k], -values[k]),
            )
        if policy == "most_registers":
            return max(
                candidates,
                key=lambda k: (
                    -(-(ends[k] - starts[k]) // ii),
                    -values[k],
                ),
            )
        if policy == "most_consumers":
            return max(
                candidates,
                key=lambda k: (
                    len(cons[values[k]]),
                    ends[k] - starts[k],
                    -values[k],
                ),
            )
        if policy == "least_traffic":
            return min(
                candidates,
                key=lambda k: (
                    1 + len(set(cons[values[k]])),
                    # negated register cost: -ceil(length/II)
                    (starts[k] - ends[k]) // ii,
                    values[k],
                ),
            )
        raise ValueError(
            f"victim policy {policy!r} has no array implementation"
        )

    def spill_child(self) -> "_Node":
        """The state after spilling this node's victim (shared by walks)."""
        if self._spill_child is None:
            la = self.la
            machine = self.chain.machine
            ma = la.ma
            child_la, child_extra, n_loads = _spill_arrays(
                la,
                self.extra,
                self.victim,
                ma.index[machine.pool_for(OpType.STORE)],
                ma.index[machine.pool_for(OpType.LOAD)],
                machine.latency_of(OpType.STORE),
                machine.latency_of(OpType.LOAD),
            )
            added = 1 + n_loads
            self._spill_child = _Node(
                self.chain,
                self.min_ii,
                self.mem_ops + added,
                self.spill_ops + added,
                self.is_spill + [True] * added,
                self.is_spill_store + [True] + [False] * n_loads,
                la=child_la,
                extra=child_extra,
            )
        return self._spill_child

    def escalation_child(self, next_ii: int) -> "_Node":
        """The state after rescheduling at ``next_ii`` (same arrays)."""
        if self._esc_child is None or self._esc_child.min_ii != next_ii:
            self._esc_child = _Node(
                self.chain,
                next_ii,
                self.mem_ops,
                self.spill_ops,
                self.is_spill,
                self.is_spill_store,
                la=self._la,
                mii=self._mii,
                extra=self._extra,
            )
        return self._esc_child


# ----------------------------------------------------------------------
# Chain-level results (plain integers; engine.jobs stamps loop metadata)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchPressure:
    """Root-node measurements of one chain (Figures 6/7 numbers)."""

    ii: int
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int


@dataclass(frozen=True)
class BatchEvaluation:
    """Exit state of one (model, budget) walk (Figures 8/9 numbers)."""

    ii: int
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool
    memory_ops: int
    spill_ops: int
    registers: int


class LoopChain:
    """The shared spill chain of one (graph, machine, knobs) job group."""

    def __init__(
        self,
        graph: DependenceGraph,
        machine: MachineConfig,
        victim_policy: str = "longest",
        pressure_strategy: str = "spill",
        ii_escalation: str = "increment",
    ) -> None:
        if not supports(victim_policy, pressure_strategy):
            raise ValueError(
                f"victim policy {victim_policy!r} has no array "
                f"implementation; execute such jobs per point"
            )
        self.graph = graph
        self.name = graph.name
        self.machine = machine
        self.policy = victim_policy
        self.strategy = pressure_strategy
        self.escalation = get_escalation(ii_escalation)
        memory = graph.memory_operations()
        ops = graph.operations
        self.root = _Node(
            self,
            1,
            len(memory),
            sum(1 for op in memory if op.is_spill),
            [op.is_spill for op in ops],
            [op.is_spill and op.optype is OpType.STORE for op in ops],
        )

    def pressure(self, estimator: SwapEstimator) -> BatchPressure:
        """All models' requirements of the root schedule (no budget)."""
        root = self.root
        return BatchPressure(
            ii=root.ii,
            mii=root.mii,
            unified=root.requirement(Model.UNIFIED, estimator),
            partitioned=root.requirement(Model.PARTITIONED, estimator),
            swapped=root.requirement(Model.SWAPPED, estimator),
            max_live=root.maxlive,
        )

    def evaluate(
        self,
        model: Model,
        register_budget: int | None,
        estimator: SwapEstimator,
        max_rounds: int = 200,
    ) -> BatchEvaluation:
        """Walk the chain exactly as the Section 5.4 pass loop would.

        The walk carries only the model-dependent bookkeeping (plateau
        counters and the halt test); states and transitions come from the
        shared chain, so the Nth point of a sweep traverses memoized nodes.
        """
        budget = None if model is Model.IDEAL else register_budget
        select_victims = self.strategy == "spill"
        escalation = self.escalation
        node = self.root
        spilled = 0
        ii_increases = 0
        stale = 0
        best: int | None = None
        fits = True
        halted = False
        last = node
        registers: int | None = None
        for _ in range(max_rounds):
            last = node
            registers = None
            if budget is None:
                registers = node.requirement(model, estimator)
                halted = True
                break
            if node.lower_bound(model) <= budget:
                registers = node.requirement(model, estimator)
                if registers <= budget:
                    halted = True
                    break
            victim = node.victim if select_victims else None
            if victim is None:
                if registers is None:
                    registers = node.requirement(model, estimator)
                if best is None or registers < best:
                    best = registers
                    stale = 0
                else:
                    stale += 1
                    if escalation.give_up(stale):
                        fits = False
                        halted = True
                        break
                next_ii = escalation.next_ii(node.ii)
                if next_ii <= node.min_ii:
                    raise ValueError(
                        f"escalation must raise the II "
                        f"(min_ii={node.min_ii}, next={next_ii})"
                    )
                node = node.escalation_child(next_ii)
                ii_increases += 1
            else:
                node = node.spill_child()
                spilled += 1
        if registers is None:
            # The final round spilled/escalated under the lower-bound gate;
            # the cap verdict still reads that round's measured requirement.
            registers = last.requirement(model, estimator)
        if not halted:
            fits = budget is None or registers <= budget
        return BatchEvaluation(
            ii=last.ii,
            mii=self.root.mii,
            spilled_values=spilled,
            ii_increases=ii_increases,
            fits=fits,
            memory_ops=last.mem_ops,
            spill_ops=last.spill_ops,
            registers=registers,
        )


__all__ = [
    "ARRAY_POLICIES",
    "BatchEvaluation",
    "BatchPressure",
    "LoopChain",
    "array_mii",
    "supports",
]
