"""Lifetimes and kernel-cycle live profiles on flat arrays.

Lifetime bounds come straight off the consumer adjacency of a
:class:`~repro.kernel.loop.LoopArrays` -- one pass per value instead of an
O(ops x operands) ``consumers`` rescan each.

Live profiles use a difference array over the II kernel cycles instead of
evaluating ``live_at`` per (value, cycle): a lifetime of length ``L``
contributes ``L // II`` live instances to *every* kernel cycle plus one more
to the ``L % II`` cycles starting at ``start % II`` (wrapping) -- the closed
form of ``ceil((end-c)/II) - ceil((start-c)/II)``.  Summing per-value
contributions into the difference array makes the whole profile O(values +
II) instead of O(values x II).
"""

from __future__ import annotations

from typing import Iterable

from repro.kernel.loop import LoopArrays


def lifetime_bounds(
    la: LoopArrays, times: list[int], ii: int
) -> tuple[list[int], list[int]]:
    """``[start, end)`` per value op of ``la.values``, given issue times.

    The paper's definition (Section 2): a value lives from its producer's
    issue to the last consumer's *finish* (issue + distance * II + latency);
    a value with no consumers lives until its producer finishes.
    """
    latency = la.latency
    cons = la.cons
    starts = []
    ends = []
    for v in la.values:
        start = times[v]
        end = start + latency[v]
        for c, dist in cons[v]:
            finish = times[c] + dist * ii + latency[c]
            if finish > end:
                end = finish
        starts.append(start)
        ends.append(end)
    return starts, ends


def live_profile_spans(
    spans: Iterable[tuple[int, int]], ii: int
) -> list[int]:
    """Total live values at each kernel cycle ``0 .. II-1``."""
    base = 0
    diff = [0] * (ii + 1)
    for start, end in spans:
        whole, rem = divmod(end - start, ii)
        base += whole
        if rem:
            lo = start % ii
            hi = lo + rem
            if hi <= ii:
                diff[lo] += 1
                diff[hi] -= 1
            else:
                diff[lo] += 1
                diff[ii] -= 1
                diff[0] += 1
                diff[hi - ii] -= 1
    profile = []
    running = 0
    for c in range(ii):
        running += diff[c]
        profile.append(base + running)
    return profile


def max_live_spans(spans: Iterable[tuple[int, int]], ii: int) -> int:
    """Maximum of the live profile; 0 for an empty span set."""
    spans = list(spans)
    if not spans:
        return 0
    return max(live_profile_spans(spans, ii))


__all__ = ["lifetime_bounds", "live_profile_spans", "max_live_spans"]
