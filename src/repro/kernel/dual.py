"""Value classification and dual-file allocation on cluster bitmasks.

A value's subfile membership (the GL/LO/RO classification of
:mod:`repro.core.clustering`) becomes one small integer: bit ``c`` set means
cluster ``c``'s subfile stores the value.  Classification is a single pass
over the precomputed consumer adjacency; the non-consistent dual allocation
walks values in the legacy order (most subfiles first, then start time,
then id) and probes one :class:`~repro.kernel.firstfit.BitOccupancy` per
cluster, so it lands on exactly the shifts of
:func:`repro.core.dualfile.allocate_dual`.
"""

from __future__ import annotations

from repro.kernel.firstfit import BitOccupancy, first_fit_shift
from repro.kernel.lifetimes import max_live_spans
from repro.kernel.loop import LoopArrays


def membership_masks(la: LoopArrays, asg: list[int]) -> list[int]:
    """Cluster-membership bitmask per value of ``la.values``.

    A value is stored in the subfiles of the clusters that consume it; a
    value with no consumers stays local to its producer's cluster.
    """
    masks = []
    for v in la.values:
        mask = 0
        for c, _dist in la.cons[v]:
            mask |= 1 << asg[c]
        if not mask:
            mask = 1 << asg[v]
        masks.append(mask)
    return masks


def dual_shifts(
    la: LoopArrays,
    masks: list[int],
    starts: list[int],
    ends: list[int],
    ii: int,
) -> list[int]:
    """First-fit shift per value (parallel to ``la.values``).

    Values touching more subfiles first (they are the most constrained),
    then by start time, then by id -- the deterministic wands-only
    convention of the legacy allocator.
    """
    n_clusters = la.ma.n_clusters
    occupied = [BitOccupancy() for _ in range(n_clusters)]
    order = sorted(
        range(len(masks)),
        key=lambda k: (-masks[k].bit_count(), starts[k], la.values[k]),
    )
    shifts = [0] * len(masks)
    for k in order:
        sets = [
            occupied[c] for c in range(n_clusters) if masks[k] >> c & 1
        ]
        shift = first_fit_shift(starts[k], ends[k], ii, sets)
        shifts[k] = shift
        lo = starts[k] + shift * ii
        hi = ends[k] + shift * ii
        for occ in sets:
            occ.add(lo, hi)
    return shifts


def registers_per_cluster(
    masks: list[int],
    starts: list[int],
    ends: list[int],
    shifts: list[int],
    ii: int,
    n_clusters: int,
) -> list[int]:
    """``ceil(span / II)`` of each subfile's placed values."""
    lo = [None] * n_clusters
    hi = [None] * n_clusters
    for k, mask in enumerate(masks):
        a = starts[k] + shifts[k] * ii
        b = ends[k] + shifts[k] * ii
        c = 0
        while mask:
            if mask & 1:
                if lo[c] is None or a < lo[c]:
                    lo[c] = a
                if hi[c] is None or b > hi[c]:
                    hi[c] = b
            mask >>= 1
            c += 1
    return [
        0 if lo[c] is None else -(-(hi[c] - lo[c]) // ii)
        for c in range(n_clusters)
    ]


def dual_registers(
    la: LoopArrays,
    asg: list[int],
    starts: list[int],
    ends: list[int],
    ii: int,
) -> int:
    """Registers required by the most loaded subfile under ``asg``.

    The exact (first-fit) dual requirement, used per candidate by the
    swap search's FIRSTFIT ablation estimator.
    """
    masks = membership_masks(la, asg)
    shifts = dual_shifts(la, masks, starts, ends, ii)
    per_cluster = registers_per_cluster(
        masks, starts, ends, shifts, ii, la.ma.n_clusters
    )
    return max(per_cluster) if per_cluster else 0


def dual_max_live(
    la: LoopArrays,
    asg: list[int],
    starts: list[int],
    ends: list[int],
    ii: int,
) -> int:
    """Per-cluster MaxLive lower bound (the paper's swap estimator)."""
    masks = membership_masks(la, asg)
    worst = 0
    for c in range(la.ma.n_clusters):
        spans = [
            (starts[k], ends[k])
            for k, mask in enumerate(masks)
            if mask >> c & 1
        ]
        live = max_live_spans(spans, ii)
        if live > worst:
            worst = live
    return worst


__all__ = [
    "dual_max_live",
    "dual_registers",
    "dual_shifts",
    "membership_masks",
    "registers_per_cluster",
]
