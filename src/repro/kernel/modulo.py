"""The IMS attempt loop on flat arrays and a bitmask reservation table.

Bit-for-bit the algorithm of :func:`repro.sched.modulo._attempt` -- same
priority function, same tie breaks, same forcing and displacement rules,
same operation budget -- with the dict-of-tuples MRT replaced by one
occupancy word per (kernel row, pool).  The free-instance probe becomes
"lowest zero bit of the word" and unschedule/place become single bit
operations; an occupant table keeps op indices for victim selection when a
full row forces a displacement.

Operation indices ascend with op ids (see :mod:`repro.kernel.loop`), so
every id-based tie break below is expressed on indices unchanged.
"""

from __future__ import annotations

from repro.kernel.loop import LoopArrays


def heights(la: LoopArrays, ii: int) -> list[int]:
    """Height-based IMS priority per op index at a candidate II.

    Same fixpoint as :func:`repro.sched.priority.heights`:
    ``H(v) = max(0, max over v->w of H(w) + delay - II * distance)``.
    """
    h = [0] * la.n
    weights = [
        (src, dst, delay - ii * dist)
        for src, dst, delay, dist in zip(
            la.e_src, la.e_dst, la.e_delay, la.e_dist
        )
    ]
    for _ in range(la.n + 1):
        changed = False
        for src, dst, weight in weights:
            candidate = h[dst] + weight
            if candidate > h[src]:
                h[src] = candidate
                changed = True
        if not changed:
            break
    else:
        raise ValueError(
            f"heights diverge: II={ii} below the recurrence bound"
        )
    return h


def attempt(
    la: LoopArrays, ii: int, budget_factor: int
) -> tuple[list[int], list[int]] | None:
    """One IMS attempt at a fixed II.

    Returns ``(times, instances)`` indexed by op index, or ``None`` when the
    operation budget runs out before everything is placed.
    """
    n = la.n
    if n == 0:
        return [], []
    h = heights(la, ii)
    ma = la.ma
    n_pools = ma.n_pools
    pool = la.pool
    in_edges = la.in_edges
    out_edges = la.out_edges

    time = [-1] * n
    inst = [-1] * n
    ever = [False] * n
    last = [-1] * n
    unscheduled = [True] * n
    n_unscheduled = n
    budget = budget_factor * n

    # Heights are fixed for the whole attempt, so "highest height, ties to
    # the lowest index" is simply the first unscheduled entry of one static
    # order: keep a cursor into it and rewind on displacement instead of
    # rescanning all n ops per placement.
    order = sorted(range(n), key=lambda i: -h[i])  # stable: ties by index
    rank = [0] * n
    for r, i in enumerate(order):
        rank[i] = r
    cursor = 0

    # MRT: one occupancy word and one occupant list per (row, pool) cell.
    occ_mask = [0] * (ii * n_pools)
    occ_ops = [
        [-1] * ma.counts[cell % n_pools] for cell in range(ii * n_pools)
    ]

    while n_unscheduled:
        if budget <= 0:
            return None
        budget -= 1

        # Highest height, ties to the lowest index (== lowest op id).
        while not unscheduled[order[cursor]]:
            cursor += 1
        op = order[cursor]
        p = pool[op]
        full = ma.full_masks[p]

        estart = 0
        for src, delay, dist in in_edges[op]:
            t = time[src]
            if t >= 0:
                bound = t + delay - ii * dist
                if bound > estart:
                    estart = bound

        # Search the II-wide window for a free slot.
        chosen_time = -1
        chosen_inst = -1
        for t in range(estart, estart + ii):
            cell = (t % ii) * n_pools + p
            free = ~occ_mask[cell] & full
            if free:
                chosen_time = t
                chosen_inst = (free & -free).bit_length() - 1
                break

        if chosen_time < 0:
            # Force: never-scheduled ops go at Estart; previously displaced
            # ops move at least one cycle past their previous slot so the
            # search cannot cycle.
            if ever[op] and last[op] + 1 > estart:
                chosen_time = last[op] + 1
            else:
                chosen_time = estart
            cell = (chosen_time % ii) * n_pools + p
            occupants = occ_ops[cell]
            # Displace the lowest-height occupant; ties to the highest id.
            victim_idx = 0
            victim = occupants[0]
            for k in range(1, len(occupants)):
                o = occupants[k]
                if h[o] < h[victim] or (h[o] == h[victim] and o > victim):
                    victim_idx = k
                    victim = o
            occ_mask[cell] &= ~(1 << victim_idx)
            occupants[victim_idx] = -1
            time[victim] = -1
            inst[victim] = -1
            unscheduled[victim] = True
            n_unscheduled += 1
            if rank[victim] < cursor:
                cursor = rank[victim]
            chosen_inst = victim_idx

        cell = (chosen_time % ii) * n_pools + p
        occ_mask[cell] |= 1 << chosen_inst
        occ_ops[cell][chosen_inst] = op
        time[op] = chosen_time
        inst[op] = chosen_inst
        ever[op] = True
        last[op] = chosen_time
        unscheduled[op] = False
        n_unscheduled -= 1

        # Displace scheduled successors whose dependences are now violated.
        for dst, delay, dist in out_edges[op]:
            t = time[dst]
            if dst == op or t < 0:
                continue
            if t < chosen_time + delay - ii * dist:
                cell = (t % ii) * n_pools + pool[dst]
                k = inst[dst]
                occ_mask[cell] &= ~(1 << k)
                occ_ops[cell][k] = -1
                time[dst] = -1
                inst[dst] = -1
                unscheduled[dst] = True
                n_unscheduled += 1
                if rank[dst] < cursor:
                    cursor = rank[dst]

    return time, inst


__all__ = ["attempt", "heights"]
