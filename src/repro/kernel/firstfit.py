"""Wands-only first-fit as big-integer bitmask probes.

Under the shear transform of :mod:`repro.regalloc.firstfit` an allocation is
interval packing on a line with II-granular shifts.  Here the occupied cells
of that line are one arbitrary-precision integer per register file: bit
``t`` set means sheared-time cell ``t`` is taken.  Probing a candidate
window is a shift-and-mask; committing a placement is one ``|=``.  The
first-fit shift search jumps past the highest blocked cell of the probed
window, which (like the legacy blocker-end jump) never skips a feasible
shift, so both implementations return the *smallest* feasible shift -- the
same shift.
"""

from __future__ import annotations

from typing import Sequence


class BitOccupancy:
    """Occupied cells of one sheared time line as a single big integer.

    Cells may be negative (a fixed placement can start anywhere): the word
    is kept biased so bit ``x - bias`` represents cell ``x``.
    """

    __slots__ = ("word", "bias")

    def __init__(self) -> None:
        self.word = 0
        self.bias = 0

    def _rebias(self, cell: int) -> None:
        if cell < self.bias:
            self.word <<= self.bias - cell
            self.bias = cell

    def add(self, start: int, end: int) -> None:
        """Mark the half-open cell range ``[start, end)`` occupied."""
        self._rebias(start)
        self.word |= ((1 << (end - start)) - 1) << (start - self.bias)

    def hits(self, start: int, length: int) -> int:
        """Occupied cells within ``[start, start+length)``, as a bitmask
        relative to ``start`` (0 means the window is free)."""
        self._rebias(start)
        return (self.word >> (start - self.bias)) & ((1 << length) - 1)


def first_fit_shift(
    start: int, end: int, ii: int, occupied: Sequence[BitOccupancy]
) -> int:
    """Smallest non-negative shift whose window avoids every occupancy.

    Multi-set queries support the non-consistent dual file, where a value
    duplicated into several subfiles takes the same register index (hence
    the same shift) in all of them.
    """
    length = end - start
    shift = 0
    a = start
    while True:
        blocked = 0
        for occ in occupied:
            blocked |= occ.hits(a, length)
        if not blocked:
            return shift
        # Jump past the highest blocked cell of this window: every smaller
        # shift's window still contains it.
        jump = -(-(a + blocked.bit_length() - start) // ii)
        shift = shift + 1 if shift + 1 > jump else jump
        a = start + shift * ii


__all__ = ["BitOccupancy", "first_fit_shift"]
