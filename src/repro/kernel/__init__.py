"""Array kernels: the flat, compiled form of the scheduling problem.

Every hot loop of the reproduction -- the IMS attempt loop, lifetime
analysis, MaxLive, first-fit interval allocation, the greedy swap search --
originally ran on dicts of frozen dataclasses (``Schedule.placements``, an
MRT keyed by ``(row, pool, instance)`` tuples, per-cycle ``live_at`` sums).
This package lowers the problem once into flat integer arrays and bitmasks:

* :class:`~repro.kernel.machine.MachineArrays` -- pools as indices, unit
  occupancy as per-row bitmask words, cluster-of-instance tables;
* :class:`~repro.kernel.loop.LoopArrays` -- the DDG as parallel arrays
  (pool/latency per op, edge arrays, consumer adjacency built in one pass);
* :mod:`~repro.kernel.modulo` -- the IMS attempt loop with an O(1)
  free-instance lookup (lowest zero bit of the row's occupancy word);
* :mod:`~repro.kernel.lifetimes` -- lifetimes from the consumer adjacency
  and kernel-cycle live profiles via difference arrays;
* :mod:`~repro.kernel.firstfit` -- wands-only first-fit as big-integer
  bitmask probes over the sheared time line;
* :mod:`~repro.kernel.dual` -- value classification and the non-consistent
  dual-file allocation on cluster bitmasks;
* :mod:`~repro.kernel.swap` -- the greedy swap search with incremental
  per-cluster live-profile deltas instead of a full re-classification per
  candidate.

The kernels are drop-in replacements: the public modules
(:mod:`repro.sched.modulo`, :mod:`repro.regalloc`, :mod:`repro.core`)
dispatch here when kernels are enabled and materialize the same frozen
dataclasses at the boundary, so schedules, allocations, swap traces, report
bytes and pipeline fingerprints are identical either way.  The dict
implementations stay selectable behind :func:`use_kernels` for differential
testing.

Three tiers, selected by ``REPRO_KERNELS`` / :func:`set_kernels`:

* ``"0"`` -- dict reference implementations everywhere;
* ``"1"`` -- per-point array kernels (every entry point dispatches here,
  one pipeline run per grid point);
* ``"batch"`` (the default) -- additionally, the engine groups grid jobs
  by loop content and evaluates each group against one shared
  :class:`~repro.kernel.batch.LoopChain` (schedule-stage artifacts computed
  once per loop, not once per point).

The batch tier only changes *where* sharing happens (the engine's
``run_jobs``); single-point entry points behave exactly like tier ``"1"``.
For backwards compatibility the boolean forms remain: ``True`` means the
full ``"batch"`` tier, ``False`` means ``"0"``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_TIERS = ("0", "1", "batch")


def _normalize(value: "bool | str") -> str:
    if value is True:
        return "batch"
    if value is False:
        return "0"
    value = str(value)
    return value if value in _TIERS else "batch"


_tier = _normalize(os.environ.get("REPRO_KERNELS", "batch"))


def kernel_tier() -> str:
    """The active tier: ``"0"`` (dicts), ``"1"`` (arrays), or ``"batch"``."""
    return _tier


def kernels_enabled() -> bool:
    """Whether the public entry points dispatch to the array kernels."""
    return _tier != "0"


def batch_enabled() -> bool:
    """Whether the engine groups grid jobs into per-loop batch chains."""
    return _tier == "batch"


def set_kernels(enabled: "bool | str") -> str:
    """Select the kernel tier process-wide; returns the prior tier.

    Accepts a tier name (``"0"``/``"1"``/``"batch"``) or a boolean
    (``True`` = ``"batch"``, ``False`` = ``"0"``).
    """
    global _tier
    prior = _tier
    _tier = _normalize(enabled)
    return prior


@contextmanager
def use_kernels(enabled: "bool | str") -> Iterator[None]:
    """Scoped kernel-tier override, used by differential tests and benches."""
    prior = set_kernels(enabled)
    try:
        yield
    finally:
        set_kernels(prior)


from repro.kernel.loop import LoopArrays, consumer_map, lower_loop  # noqa: E402
from repro.kernel.machine import MachineArrays, lower_machine  # noqa: E402

__all__ = [
    "LoopArrays",
    "MachineArrays",
    "batch_enabled",
    "consumer_map",
    "kernel_tier",
    "kernels_enabled",
    "lower_loop",
    "lower_machine",
    "set_kernels",
    "use_kernels",
]
