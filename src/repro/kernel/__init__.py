"""Array kernels: the flat, compiled form of the scheduling problem.

Every hot loop of the reproduction -- the IMS attempt loop, lifetime
analysis, MaxLive, first-fit interval allocation, the greedy swap search --
originally ran on dicts of frozen dataclasses (``Schedule.placements``, an
MRT keyed by ``(row, pool, instance)`` tuples, per-cycle ``live_at`` sums).
This package lowers the problem once into flat integer arrays and bitmasks:

* :class:`~repro.kernel.machine.MachineArrays` -- pools as indices, unit
  occupancy as per-row bitmask words, cluster-of-instance tables;
* :class:`~repro.kernel.loop.LoopArrays` -- the DDG as parallel arrays
  (pool/latency per op, edge arrays, consumer adjacency built in one pass);
* :mod:`~repro.kernel.modulo` -- the IMS attempt loop with an O(1)
  free-instance lookup (lowest zero bit of the row's occupancy word);
* :mod:`~repro.kernel.lifetimes` -- lifetimes from the consumer adjacency
  and kernel-cycle live profiles via difference arrays;
* :mod:`~repro.kernel.firstfit` -- wands-only first-fit as big-integer
  bitmask probes over the sheared time line;
* :mod:`~repro.kernel.dual` -- value classification and the non-consistent
  dual-file allocation on cluster bitmasks;
* :mod:`~repro.kernel.swap` -- the greedy swap search with incremental
  per-cluster live-profile deltas instead of a full re-classification per
  candidate.

The kernels are drop-in replacements: the public modules
(:mod:`repro.sched.modulo`, :mod:`repro.regalloc`, :mod:`repro.core`)
dispatch here when kernels are enabled and materialize the same frozen
dataclasses at the boundary, so schedules, allocations, swap traces, report
bytes and pipeline fingerprints are identical either way.  The dict
implementations stay behind :func:`use_kernels` for differential testing
(``REPRO_KERNELS=0`` disables the kernels process-wide).
"""

from __future__ import annotations

import os
from contextlib import contextmanager

_enabled = os.environ.get("REPRO_KERNELS", "1") != "0"


def kernels_enabled() -> bool:
    """Whether the public entry points dispatch to the array kernels."""
    return _enabled


def set_kernels(enabled: bool) -> bool:
    """Enable/disable the kernels process-wide; returns the prior state."""
    global _enabled
    prior = _enabled
    _enabled = bool(enabled)
    return prior


@contextmanager
def use_kernels(enabled: bool):
    """Scoped kernel toggle, used by the differential tests and benchmarks."""
    prior = set_kernels(enabled)
    try:
        yield
    finally:
        set_kernels(prior)


from repro.kernel.loop import LoopArrays, consumer_map, lower_loop  # noqa: E402
from repro.kernel.machine import MachineArrays, lower_machine  # noqa: E402

__all__ = [
    "LoopArrays",
    "MachineArrays",
    "consumer_map",
    "kernels_enabled",
    "lower_loop",
    "lower_machine",
    "set_kernels",
    "use_kernels",
]
