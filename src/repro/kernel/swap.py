"""Greedy swap search with incremental estimator deltas.

The legacy search re-derives the whole GL/LO/RO classification and re-sums
every value's per-cycle live counts for *each* candidate exchange -- an
O(values x (operands + II)) rebuild per candidate that dominates the entire
reproduction (the profiler attributes ~90% of a cold Figure 8/9 grid to
it).  Here the MAXLIVE estimator is maintained incrementally:

* per value: its consumer-use count in each cluster and its current
  subfile-membership bitmask;
* per cluster: the live profile over the II kernel cycles.

Reassigning one operation touches only the values it consumes (plus its own
value when nothing consumes it); each membership flip adds/removes one
value's span contribution from one cluster profile.  A candidate is
evaluated by applying the two reassignments, reading ``max`` of the (two)
profiles, and applying the inverse -- O(touched values x II) instead of a
full rebuild.

Candidates are ranked exactly like the legacy ``consider`` hook: strictly
improving values only, minimized by ``(estimate, action tuple)`` where
action tuples are ``("move", op_id, instance) < ("swap", a_id, b_id)`` --
order-independent, so incremental enumeration cannot change the outcome.
The FIRSTFIT ablation estimator re-allocates per candidate (it is exact by
definition), but on the bitmask allocator of :mod:`repro.kernel.dual`.
"""

from __future__ import annotations

from repro.kernel.dual import dual_registers, membership_masks
from repro.kernel.loop import LoopArrays


class _MaxLiveState:
    """Per-cluster live profiles under an evolving cluster assignment."""

    def __init__(
        self,
        la: LoopArrays,
        asg: list[int],
        starts: list[int],
        ends: list[int],
        ii: int,
    ) -> None:
        self.la = la
        self.asg = asg
        self.starts = starts
        self.ends = ends
        self.ii = ii
        self.n_clusters = la.ma.n_clusters

        self.slot_of = [-1] * la.n
        for k, v in enumerate(la.values):
            self.slot_of[v] = k
        self.total_cons = [len(la.cons[v]) for v in la.values]
        #: op index -> [(value slot, uses)] for the values it consumes.
        self.consumed: list[list[tuple[int, int]]] = [[] for _ in range(la.n)]
        for k, v in enumerate(la.values):
            uses: dict[int, int] = {}
            for c, _dist in la.cons[v]:
                uses[c] = uses.get(c, 0) + 1
            for c, count in uses.items():
                self.consumed[c].append((k, count))

        self.cnt = [[0] * self.n_clusters for _ in la.values]
        for k, v in enumerate(la.values):
            row = self.cnt[k]
            for c, _dist in la.cons[v]:
                row[asg[c]] += 1
        self.mem = membership_masks(la, asg)
        self.prof = [[0] * ii for _ in range(self.n_clusters)]
        for k, mask in enumerate(self.mem):
            for c in range(self.n_clusters):
                if mask >> c & 1:
                    self._span(k, c, 1)

    def _span(self, slot: int, cluster: int, sign: int) -> None:
        """Add/remove value ``slot``'s live contribution to one profile."""
        profile = self.prof[cluster]
        ii = self.ii
        start = self.starts[slot]
        whole, rem = divmod(self.ends[slot] - start, ii)
        if whole:
            delta = whole * sign
            for x in range(ii):
                profile[x] += delta
        if rem:
            lo = start % ii
            hi = lo + rem
            if hi <= ii:
                for x in range(lo, hi):
                    profile[x] += sign
            else:
                for x in range(lo, ii):
                    profile[x] += sign
                for x in range(hi - ii):
                    profile[x] += sign

    def set_cluster(self, op: int, new_cluster: int) -> None:
        """Move ``op`` to ``new_cluster``, updating profiles incrementally."""
        old_cluster = self.asg[op]
        if old_cluster == new_cluster:
            return
        self.asg[op] = new_cluster
        slot = self.slot_of[op]
        if slot >= 0 and self.total_cons[slot] == 0:
            # A value nothing consumes follows its producer's subfile.
            self._span(slot, old_cluster, -1)
            self._span(slot, new_cluster, 1)
            self.mem[slot] = 1 << new_cluster
        for slot2, uses in self.consumed[op]:
            row = self.cnt[slot2]
            row[old_cluster] -= uses
            row[new_cluster] += uses
            mask = self.mem[slot2]
            new_mask = mask
            if row[old_cluster] == 0:
                new_mask &= ~(1 << old_cluster)
            if row[new_cluster] == uses:  # became non-zero just now
                new_mask |= 1 << new_cluster
            if new_mask != mask:
                removed = mask & ~new_mask
                added = new_mask & ~mask
                for c in range(self.n_clusters):
                    bit = 1 << c
                    if removed & bit:
                        self._span(slot2, c, -1)
                    if added & bit:
                        self._span(slot2, c, 1)
                self.mem[slot2] = new_mask

    def estimate(self) -> int:
        """Worst per-cluster MaxLive (0 when a profile is empty)."""
        worst = 0
        for profile in self.prof:
            peak = max(profile) if profile else 0
            if peak > worst:
                worst = peak
        return worst


def greedy_swap_search(
    la: LoopArrays,
    ii: int,
    rows: list[int],
    insts: list[int],
    asg: list[int],
    starts: list[int],
    ends: list[int],
    use_firstfit: bool,
    max_steps: int,
    allow_moves: bool,
) -> tuple[
    list[tuple[int, int]], list[tuple[int, int]], int, int
]:
    """Run the greedy search, mutating ``insts`` and ``asg`` in place.

    Returns ``(swaps, moves, estimate_before, estimate_after)`` with op
    *ids* in the recorded actions, matching the legacy trace exactly.
    """
    ma = la.ma
    ids = la.ids
    pool = la.pool
    state = None
    if use_firstfit:

        def set_cluster(op: int, cluster: int) -> None:
            asg[op] = cluster

        def estimate() -> int:
            return dual_registers(la, asg, starts, ends, ii)

    else:
        state = _MaxLiveState(la, asg, starts, ends, ii)
        set_cluster = state.set_cluster
        estimate = state.estimate

    before = estimate()
    current = before
    swaps: list[tuple[int, int]] = []
    moves: list[tuple[int, int]] = []

    for _ in range(max_steps):
        by_slot: dict[tuple[int, int], list[int]] = {}
        for i in range(la.n):
            by_slot.setdefault((rows[i], pool[i]), []).append(i)

        best_action: tuple | None = None
        best_pair: tuple[int, int] | None = None
        best_value = current

        def consider(action: tuple, a: int, b: int, value: int) -> None:
            nonlocal best_action, best_pair, best_value
            if value >= current:
                return  # only strictly improving actions are applied
            if (
                best_action is None
                or value < best_value
                or (value == best_value and action < best_action)
            ):
                best_action = action
                best_pair = (a, b)
                best_value = value

        for ops in by_slot.values():
            for i, a in enumerate(ops):
                ca = asg[a]
                for b in ops[i + 1 :]:
                    cb = asg[b]
                    if ca == cb:
                        continue
                    set_cluster(a, cb)
                    set_cluster(b, ca)
                    value = estimate()
                    set_cluster(a, ca)
                    set_cluster(b, cb)
                    consider(("swap", ids[a], ids[b]), a, b, value)

        if allow_moves:
            occupied: dict[tuple[int, int], set[int]] = {}
            for i in range(la.n):
                occupied.setdefault((rows[i], pool[i]), set()).add(insts[i])
            for i in range(la.n):
                p = pool[i]
                taken = occupied[(rows[i], p)]
                current_cluster = ma.cluster_of[p][insts[i]]
                old = asg[i]
                for instance in range(ma.counts[p]):
                    if instance in taken:
                        continue
                    cluster = ma.cluster_of[p][instance]
                    if cluster == current_cluster:
                        continue
                    set_cluster(i, cluster)
                    value = estimate()
                    set_cluster(i, old)
                    consider(("move", ids[i], instance), i, instance, value)

        if best_action is None:
            break
        if best_action[0] == "swap":
            a, b = best_pair
            ca, cb = asg[a], asg[b]
            set_cluster(a, cb)
            set_cluster(b, ca)
            insts[a], insts[b] = insts[b], insts[a]
            swaps.append((ids[a], ids[b]))
        else:
            op, instance = best_pair
            set_cluster(op, ma.cluster_of[pool[op]][instance])
            insts[op] = instance
            moves.append((ids[op], instance))
        current = best_value

    return swaps, moves, before, current


__all__ = ["greedy_swap_search"]
