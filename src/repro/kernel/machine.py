"""Machine configurations lowered to index tables and bitmask constants.

A :class:`MachineArrays` turns pool names into dense indices so the
scheduling kernels can address the modulo reservation table as
``row * n_pools + pool`` and test unit occupancy with single integer
operations: each (row, pool) cell is one machine word whose bit ``i`` means
"unit instance ``i`` is taken", and the first free instance is the lowest
zero bit -- ``(~word & full_mask)`` isolates it without scanning a list.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.machine.config import MachineConfig


@dataclass(frozen=True)
class MachineArrays:
    """Flat form of one :class:`~repro.machine.config.MachineConfig`."""

    names: tuple[str, ...]
    index: dict[str, int]
    counts: tuple[int, ...]
    #: Per pool: ``(1 << count) - 1``, the all-units-busy word.
    full_masks: tuple[int, ...]
    #: Per pool: instance -> cluster, as a tuple for O(1) lookup.
    cluster_of: tuple[tuple[int, ...], ...]
    n_clusters: int

    @property
    def n_pools(self) -> int:
        return len(self.names)


_cache: "WeakKeyDictionary[MachineConfig, MachineArrays]" = WeakKeyDictionary()


def lower_machine(machine: MachineConfig) -> MachineArrays:
    """Lower a machine config once; memoized per config object."""
    cached = _cache.get(machine)
    if cached is not None:
        return cached
    names = tuple(p.name for p in machine.pools)
    counts = tuple(p.count for p in machine.pools)
    lowered = MachineArrays(
        names=names,
        index={name: i for i, name in enumerate(names)},
        counts=counts,
        full_masks=tuple((1 << c) - 1 for c in counts),
        cluster_of=tuple(
            tuple(
                machine.cluster_of_instance(name, i) for i in range(count)
            )
            for name, count in zip(names, counts)
        ),
        n_clusters=machine.n_clusters,
    )
    _cache[machine] = lowered
    return lowered


__all__ = ["MachineArrays", "lower_machine"]
