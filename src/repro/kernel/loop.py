"""Dependence graphs lowered to parallel integer arrays.

A :class:`LoopArrays` is built in one pass over the graph: operations in id
order become indices ``0..n-1``; operands become the consumer adjacency and
the flow-edge arrays simultaneously (the same traversal order as
``DependenceGraph.flow_edges`` / ``DependenceGraph.consumers``, so anything
materialized back to the dict world enumerates identically); explicit
memory/ordering edges are appended after the flow edges, matching
``DependenceGraph.edges``.

Lowering is memoized per ``(graph, machine)`` and guarded by the graph's
mutation counter: a graph rewritten in place (the loop builder binding a
placeholder, the spiller redirecting consumers) re-lowers on next use
instead of serving stale arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.ir.ddg import DependenceGraph
from repro.ir.operation import ValueRef
from repro.machine.config import MachineConfig
from repro.kernel.machine import MachineArrays, lower_machine


@dataclass
class LoopArrays:
    """Flat form of one dependence graph on one machine.

    Deliberately holds no reference to the source graph: the lowering
    cache is weakly keyed by the graph, and a back-reference here would
    keep every lowered graph alive for the process lifetime.
    """

    ma: MachineArrays
    n: int
    #: Index <-> op id (ids ascend with index, so id order == index order).
    ids: list[int]
    index: dict[int, int]
    #: Per op: pool index, result latency, whether it defines a loop variant.
    pool: list[int]
    latency: list[int]
    defines: list[bool]
    #: Indices of value-defining ops, in id order.
    values: list[int]
    #: Per op index: ``(consumer index, distance)`` per use, in the exact
    #: order ``DependenceGraph.consumers`` yields them.
    cons: list[list[tuple[int, int]]]
    #: All dependence edges (flow first, then explicit), as parallel arrays
    #: of (src index, dst index, min issue-to-issue delay, distance).
    e_src: list[int]
    e_dst: list[int]
    e_delay: list[int]
    e_dist: list[int]
    #: Per op index: incoming/outgoing ``(other, delay, distance)`` triples.
    in_edges: list[list[tuple[int, int, int]]]
    out_edges: list[list[tuple[int, int, int]]]


def _build(graph: DependenceGraph, machine: MachineConfig) -> LoopArrays:
    ma = lower_machine(machine)
    ops = graph.operations
    n = len(ops)
    ids = [op.op_id for op in ops]
    index = {op_id: i for i, op_id in enumerate(ids)}
    pool = [ma.index[machine.pool_for(op)] for op in ops]
    latency = [machine.latency_of(op) for op in ops]
    defines = [op.defines_value for op in ops]
    values = [i for i in range(n) if defines[i]]

    cons: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    e_src: list[int] = []
    e_dst: list[int] = []
    e_delay: list[int] = []
    e_dist: list[int] = []
    for j, op in enumerate(ops):
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                src = index[operand.producer]
                cons[src].append((j, operand.distance))
                e_src.append(src)
                e_dst.append(j)
                e_delay.append(latency[src])
                e_dist.append(operand.distance)
    for edge in graph.extra_edges():
        e_src.append(index[edge.src])
        e_dst.append(index[edge.dst])
        e_delay.append(edge.min_delay if edge.min_delay is not None else 1)
        e_dist.append(edge.distance)

    in_edges: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
    out_edges: list[list[tuple[int, int, int]]] = [[] for _ in range(n)]
    for src, dst, delay, dist in zip(e_src, e_dst, e_delay, e_dist):
        in_edges[dst].append((src, delay, dist))
        out_edges[src].append((dst, delay, dist))

    return LoopArrays(
        ma=ma,
        n=n,
        ids=ids,
        index=index,
        pool=pool,
        latency=latency,
        defines=defines,
        values=values,
        cons=cons,
        e_src=e_src,
        e_dst=e_dst,
        e_delay=e_delay,
        e_dist=e_dist,
        in_edges=in_edges,
        out_edges=out_edges,
    )


_cache: "WeakKeyDictionary[DependenceGraph, dict]" = WeakKeyDictionary()


def lower_loop(graph: DependenceGraph, machine: MachineConfig) -> LoopArrays:
    """Lower ``graph`` for ``machine``; memoized, mutation-aware."""
    version = getattr(graph, "_version", 0)
    per_graph = _cache.get(graph)
    if per_graph is None:
        per_graph = {}
        _cache[graph] = per_graph
    entry = per_graph.get(machine)
    if entry is not None and entry[0] == version:
        return entry[1]
    lowered = _build(graph, machine)
    per_graph[machine] = (version, lowered)
    return lowered


def consumer_map(
    graph: DependenceGraph,
) -> dict[int, list[tuple[int, int]]]:
    """``producer op_id -> [(consumer op_id, distance), ...]`` in one pass.

    Machine-independent flat form of ``DependenceGraph.consumers`` for every
    value at once: the same pairs in the same order, without the O(ops x
    operands) rescan per queried value.  Used by the spiller and the spill
    policies, which interrogate many values of the same graph per round.
    """
    result: dict[int, list[tuple[int, int]]] = {
        op.op_id: [] for op in graph.operations if op.defines_value
    }
    for op in graph.operations:
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                result[operand.producer].append((op.op_id, operand.distance))
    return result


__all__ = ["LoopArrays", "consumer_map", "lower_loop"]
