"""Pluggable spill-victim selection and II-escalation strategies.

The paper's Section 5.4 loop has two decision points the pipeline exposes as
strategy objects:

* :class:`SpillPolicy` -- *which* value to spill when the register
  requirement exceeds the budget.  The paper's naive policy picks "the value
  with the highest lifetime, which in general will free a higher number of
  registers" and remarks that "more research is required to develop better
  algorithms to spill registers"; the alternatives here are that research
  hook.  All policies are deterministic (ties resolve by op id).
* :class:`IIEscalation` -- *what II to try next* when nothing can be
  spilled and the loop must be rescheduled ("reschedule the loop with an
  increased II"), plus when to give up on escalation altogether.

Policies are stateless singletons registered in :data:`SPILL_POLICIES` /
:data:`II_ESCALATIONS`; the registries back the ``--policy`` /
``--escalation`` knobs of ``python -m repro sweep`` and the engine job
fingerprints, so every name is a stable part of the cache key space.

To add a policy: subclass nothing -- implement ``name`` and ``select`` (see
:class:`HighestLifetime` for the shape), then ``register_policy(MyPolicy())``.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.ir.ddg import DependenceGraph
from repro.ir.operation import OpType
from repro.kernel import consumer_map
from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.sched.schedule import Schedule


def spillable_values(
    graph: DependenceGraph,
    consumers: dict[int, list[tuple[int, int]]] | None = None,
) -> list[int]:
    """Values a spill policy may pick: non-spill values with consumers.

    The consumer adjacency is built once for the whole graph
    (:func:`repro.kernel.consumer_map`), not rescanned per value; pass a
    precomputed ``consumers`` map when the caller needs it too.
    """
    if consumers is None:
        consumers = consumer_map(graph)
    result = []
    for op in graph.values():
        if op.is_spill:
            continue
        uses = consumers[op.op_id]
        if not uses:
            continue
        # Skip values already spilled (their only consumer is a spill store).
        if all(
            graph.op(c).is_spill and graph.op(c).optype is OpType.STORE
            for c, _ in uses
        ):
            continue
        result.append(op.op_id)
    return result


def _register_cost(lt: Lifetime, ii: int) -> int:
    """Registers a lifetime occupies: ``ceil(length / II)`` instances."""
    return -(-lt.length // ii)


@runtime_checkable
class SpillPolicy(Protocol):
    """Victim selection: pick the next value to spill, or ``None``."""

    name: str

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        """Op id of the value to spill under this policy, or ``None``."""


class HighestLifetime:
    """The paper's naive policy: highest lifetime (ties: lowest id)."""

    name = "longest"

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        candidates = spillable_values(schedule.graph)
        if not candidates:
            return None
        return max(candidates, key=lambda i: (lts[i].length, -i))


class MostRegisters:
    """Most simultaneously-live instances: what the lifetime actually
    costs in registers, ``ceil(lifetime / II)``."""

    name = "most_registers"

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        candidates = spillable_values(schedule.graph)
        if not candidates:
            return None
        ii = schedule.ii
        return max(
            candidates, key=lambda i: (_register_cost(lts[i], ii), -i)
        )


class FirstValue:
    """Lowest op id: a deliberately bad baseline for the ablation."""

    name = "first"

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        candidates = spillable_values(schedule.graph)
        if not candidates:
            return None
        return min(candidates)


class MostConsumers:
    """Widest fan-out: the value read at the most consumer endpoints.

    Spilling it collapses one long, many-reader lifetime into a short
    producer-to-store interval plus one tiny reload lifetime per consumer --
    the biggest structural change per spill (ties: longest lifetime, then
    lowest id).
    """

    name = "most_consumers"

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        consumers = consumer_map(schedule.graph)
        candidates = spillable_values(schedule.graph, consumers)
        if not candidates:
            return None
        return max(
            candidates,
            key=lambda i: (len(consumers[i]), lts[i].length, -i),
        )


class LeastTraffic:
    """Cheapest memory bill: fewest added loads/stores per spilled value.

    Spilling op ``v`` adds one store plus one load per distinct
    ``(consumer, distance)`` pair; this policy minimizes that count (ties:
    most registers freed, then lowest id), trading convergence speed for
    bus bandwidth -- the quantity Figure 9 measures.
    """

    name = "least_traffic"

    def select(
        self, schedule: Schedule, lts: dict[int, Lifetime]
    ) -> int | None:
        consumers = consumer_map(schedule.graph)
        candidates = spillable_values(schedule.graph, consumers)
        if not candidates:
            return None
        ii = schedule.ii

        def added_ops(i: int) -> int:
            reloads = {(c, d) for c, d in consumers[i]}
            return 1 + len(reloads)

        return min(
            candidates,
            key=lambda i: (added_ops(i), -_register_cost(lts[i], ii), i),
        )


#: Registry backing the CLI/sweep/engine ``policy`` knobs.  Insertion order
#: is the canonical ablation order (the paper's policy first).
SPILL_POLICIES: dict[str, SpillPolicy] = {
    policy.name: policy
    for policy in (
        HighestLifetime(),
        MostRegisters(),
        FirstValue(),
        MostConsumers(),
        LeastTraffic(),
    )
}


def register_policy(policy: SpillPolicy) -> SpillPolicy:
    """Add a custom policy to the registry (name must be unused).

    Registration is per-process: engine worker processes resolve policy
    names against *their own* copy of the registry, and under the ``spawn``
    start method (macOS/Windows default) they re-import this module with
    only the built-ins.  Register custom policies at import time of a
    module the workers also import, or evaluate with ``workers=0``.
    """
    if policy.name in SPILL_POLICIES:
        raise ValueError(f"spill policy {policy.name!r} already registered")
    SPILL_POLICIES[policy.name] = policy
    return policy


def get_policy(name: str) -> SpillPolicy:
    try:
        return SPILL_POLICIES[name]
    except KeyError:
        known = ", ".join(SPILL_POLICIES)
        raise ValueError(
            f"unknown victim policy {name!r} (known: {known})"
        ) from None


def pick_victim(
    schedule: Schedule,
    policy: str = "longest",
    lts: dict[int, Lifetime] | None = None,
) -> int | None:
    """Select the value to spill under the named policy (ties: lowest id)."""
    selected = get_policy(policy)
    if lts is None:
        lts = lifetimes(schedule)
    return selected.select(schedule, lts)


# ----------------------------------------------------------------------
# II escalation
# ----------------------------------------------------------------------
@runtime_checkable
class IIEscalation(Protocol):
    """Rescheduling strategy when spilling cannot reduce the requirement."""

    name: str

    def next_ii(self, current_ii: int) -> int:
        """The II to reschedule at after a failed round at ``current_ii``."""

    def give_up(self, stale_escalations: int) -> bool:
        """Abandon the loop after this many non-improving escalations."""


class IncrementEscalation:
    """The paper's fallback: retry at ``II + 1``.

    Plateau detection: when the requirement stops shrinking the pressure is
    issue-burst-bound (the scheduler packs producers densely whatever the
    II) and no amount of rescheduling helps -- give up honestly after
    ``stale_limit`` non-improving escalations instead of spinning to the
    round cap.
    """

    name = "increment"

    def __init__(self, stale_limit: int = 8) -> None:
        self.stale_limit = stale_limit

    def next_ii(self, current_ii: int) -> int:
        return current_ii + 1

    def give_up(self, stale_escalations: int) -> bool:
        return stale_escalations >= self.stale_limit


class GeometricEscalation:
    """Escalate by 50% per round: fewer reschedules on hopeless loops,
    coarser final II.  Same plateau rule as :class:`IncrementEscalation`,
    with a shorter leash (each step forfeits more performance)."""

    name = "geometric"

    def __init__(self, stale_limit: int = 4) -> None:
        self.stale_limit = stale_limit

    def next_ii(self, current_ii: int) -> int:
        return max(current_ii + 1, (current_ii * 3) // 2)

    def give_up(self, stale_escalations: int) -> bool:
        return stale_escalations >= self.stale_limit


II_ESCALATIONS: dict[str, IIEscalation] = {
    esc.name: esc for esc in (IncrementEscalation(), GeometricEscalation())
}


def register_escalation(escalation: IIEscalation) -> IIEscalation:
    """Add a custom escalation strategy (name must be unused).

    Same per-process caveat as :func:`register_policy`: worker processes
    resolve names against their own registry copy, so register at import
    time of a module the workers import too, or run with ``workers=0``.
    """
    if escalation.name in II_ESCALATIONS:
        raise ValueError(
            f"II escalation {escalation.name!r} already registered"
        )
    II_ESCALATIONS[escalation.name] = escalation
    return escalation


def get_escalation(name: str) -> IIEscalation:
    try:
        return II_ESCALATIONS[name]
    except KeyError:
        known = ", ".join(II_ESCALATIONS)
        raise ValueError(
            f"unknown II escalation {name!r} (known: {known})"
        ) from None


__all__ = [
    "FirstValue",
    "GeometricEscalation",
    "HighestLifetime",
    "IIEscalation",
    "II_ESCALATIONS",
    "IncrementEscalation",
    "LeastTraffic",
    "MostConsumers",
    "MostRegisters",
    "SPILL_POLICIES",
    "SpillPolicy",
    "get_escalation",
    "get_policy",
    "pick_victim",
    "register_escalation",
    "register_policy",
    "spillable_values",
]
