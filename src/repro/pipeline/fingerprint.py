"""Content fingerprints of loops, graphs, and machines.

These hashes identify *what* is being compiled, independently of object
identity, display names, or which process computed them.  Two layers build
on them:

* the pass pipeline's :class:`~repro.pipeline.context.ArtifactStore` keys
  memoized schedules/lifetimes/allocations by content, so structurally
  identical inputs share derived artifacts;
* the engine (:mod:`repro.engine.jobs`) folds them into job cache keys.

Hashes are SHA-256 over a canonical JSON payload, so they are stable across
processes and interpreter runs (unlike :func:`hash`, which is randomized).
Fingerprints are memoized per object in :class:`weakref.WeakKeyDictionary`
maps: drivers reuse the same :class:`~repro.ir.loop.Loop` and
:class:`~repro.machine.config.MachineConfig` instances across hundreds of
evaluations, and re-serializing the graph each time would dominate warm
paths.  Content is hashed at first sight -- don't mutate a graph after
handing it to the pipeline or the engine.
"""

from __future__ import annotations

import hashlib
import json
from weakref import WeakKeyDictionary

from repro.ir.ddg import DependenceGraph
from repro.ir.loop import Loop
from repro.ir.operation import Immediate, InvariantRef, ValueRef
from repro.machine.config import MachineConfig


def _operand_token(operand: object) -> list:
    if isinstance(operand, ValueRef):
        return ["v", operand.producer, operand.distance]
    if isinstance(operand, InvariantRef):
        return ["i", operand.name]
    if isinstance(operand, Immediate):
        return ["c", operand.value]
    raise TypeError(f"unknown operand {operand!r}")  # pragma: no cover


_graph_fingerprints: "WeakKeyDictionary[DependenceGraph, str]" = (
    WeakKeyDictionary()
)
_machine_fingerprints: "WeakKeyDictionary[MachineConfig, str]" = (
    WeakKeyDictionary()
)


def graph_fingerprint(graph: DependenceGraph) -> str:
    """Content hash of a dependence graph.

    Covers everything that influences scheduling and allocation -- operation
    types, operand wiring, spill flags, explicit edges -- and deliberately
    excludes display names, so structurally identical loops share cache
    entries regardless of how they were labelled.
    """
    cached = _graph_fingerprints.get(graph)
    if cached is not None:
        return cached
    payload = {
        "ops": [
            [
                op.op_id,
                op.optype.value,
                [_operand_token(o) for o in op.operands],
                op.symbol,
                op.is_spill,
            ]
            for op in graph.operations
        ],
        "edges": [
            [e.src, e.dst, e.kind.value, e.distance, e.min_delay]
            for e in graph.extra_edges()
        ],
    }
    result = digest(payload)
    _graph_fingerprints[graph] = result
    return result


_loop_fingerprints: "WeakKeyDictionary[DependenceGraph, dict[int, str]]" = (
    WeakKeyDictionary()
)


def loop_fingerprint(loop: Loop) -> str:
    """Content hash of a loop: its graph plus the trip-count weight.

    Memoized per ``(graph, trip_count)`` -- :class:`~repro.ir.loop.Loop`
    itself is an unhashable value dataclass, but its graph is the identity
    that matters (the engine derives each job key once and reuses it for
    both the cache probe and the store, so a cold grid point serializes its
    graph exactly once).
    """
    per_graph = _loop_fingerprints.get(loop.graph)
    if per_graph is None:
        per_graph = {}
        _loop_fingerprints[loop.graph] = per_graph
    cached = per_graph.get(loop.trip_count)
    if cached is None:
        cached = digest(
            {"graph": graph_fingerprint(loop.graph), "trips": loop.trip_count}
        )
        per_graph[loop.trip_count] = cached
    return cached


def machine_fingerprint(machine: MachineConfig) -> str:
    """Content hash of a machine configuration (name excluded)."""
    cached = _machine_fingerprints.get(machine)
    if cached is not None:
        return cached
    payload = {
        "pools": [[p.name, p.count] for p in machine.pools],
        "pool_of": sorted(
            [t.value, p] for t, p in machine.pool_of.items()
        ),
        "latency": sorted(
            [t.value, l] for t, l in machine.latency.items()
        ),
        "clusters": machine.n_clusters,
    }
    result = digest(payload)
    _machine_fingerprints[machine] = result
    return result


def digest(payload: object) -> str:
    """SHA-256 of the canonical JSON form of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


__all__ = [
    "digest",
    "graph_fingerprint",
    "loop_fingerprint",
    "machine_fingerprint",
]
