"""Composable, policy-pluggable per-loop compilation pipelines.

The paper evaluates one flow per loop -- modulo schedule, register
allocation under a register-file model, greedy swapping, spilling until the
budget fits.  This package expresses that flow once as composable passes
over a :class:`PassContext`, with every derived artifact (MII, schedule,
lifetimes, allocations, swap result) memoized by content in an
:class:`ArtifactStore` so nothing is computed twice across models, rounds,
or experiments.

* :mod:`repro.pipeline.fingerprint` -- content hashes of graphs/loops/machines;
* :mod:`repro.pipeline.context` -- :class:`PassContext` + :class:`ArtifactStore`;
* :mod:`repro.pipeline.passes` -- the concrete passes;
* :mod:`repro.pipeline.policies` -- pluggable :class:`SpillPolicy` and
  :class:`IIEscalation` strategies (registries back the CLI knobs);
* :mod:`repro.pipeline.pipelines` -- composition + the two canonical flows.

``repro.core.pressure``, ``repro.spill.spiller`` and ``repro.engine.jobs``
are thin wrappers over :func:`run_pressure` / :func:`run_evaluation`.
"""

from repro.pipeline.context import (
    ArtifactStats,
    ArtifactStore,
    PassContext,
    default_store,
)
from repro.pipeline.fingerprint import (
    graph_fingerprint,
    loop_fingerprint,
    machine_fingerprint,
)
from repro.pipeline.passes import (
    AllocateDual,
    AllocateUnified,
    ClusterAssign,
    ComputeMII,
    GreedySwap,
    ModuloSchedule,
    Pass,
    SpillLoop,
    SpillRound,
)
from repro.pipeline.pipelines import (
    PRESSURE_STRATEGIES,
    Pipeline,
    evaluation_pipeline,
    pressure_pipeline,
    run_evaluation,
    run_pressure,
)
from repro.pipeline.policies import (
    II_ESCALATIONS,
    IIEscalation,
    SPILL_POLICIES,
    SpillPolicy,
    get_escalation,
    get_policy,
    pick_victim,
    register_escalation,
    register_policy,
    spillable_values,
)

__all__ = [
    "AllocateDual",
    "AllocateUnified",
    "ArtifactStats",
    "ArtifactStore",
    "ClusterAssign",
    "ComputeMII",
    "GreedySwap",
    "II_ESCALATIONS",
    "IIEscalation",
    "ModuloSchedule",
    "PRESSURE_STRATEGIES",
    "Pass",
    "PassContext",
    "Pipeline",
    "SPILL_POLICIES",
    "SpillLoop",
    "SpillPolicy",
    "SpillRound",
    "default_store",
    "evaluation_pipeline",
    "get_escalation",
    "get_policy",
    "graph_fingerprint",
    "loop_fingerprint",
    "machine_fingerprint",
    "pick_victim",
    "pressure_pipeline",
    "register_escalation",
    "register_policy",
    "run_evaluation",
    "run_pressure",
    "spillable_values",
]
