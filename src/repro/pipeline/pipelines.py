"""Pipeline composition and the two canonical per-loop flows.

The paper's evaluation is one compilation flow per loop: modulo schedule,
allocate under a register-file model, greedily swap, spill until the budget
fits.  :func:`pressure_pipeline` and :func:`evaluation_pipeline` assemble
that flow from the passes of :mod:`repro.pipeline.passes`;
:func:`run_pressure` and :func:`run_evaluation` execute it and produce the
exact report objects the pre-pipeline monolithic code produced
(:class:`~repro.core.pressure.PressureReport`,
:class:`~repro.spill.spiller.LoopEvaluation` -- pinned byte-identical by
the golden-report tests).

``repro.core.pressure``, ``repro.spill.spiller`` and the engine job kinds
are thin wrappers over these two entry points; custom flows are one
``Pipeline(...)`` away.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model
from repro.core.pressure import PressureReport
from repro.core.swapping import SwapEstimator
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.pipeline.context import ArtifactStore, PassContext
from repro.pipeline.passes import (
    AllocateDual,
    AllocateUnified,
    ClusterAssign,
    ComputeMII,
    GreedySwap,
    ModuloSchedule,
    Pass,
    SpillLoop,
    SpillRound,
)
from repro.pipeline.policies import get_escalation, get_policy
from repro.regalloc.maxlive import max_live
from repro.spill.spiller import LoopEvaluation

#: The Section 5.4 alternatives: spill (the paper's choice) or only
#: reschedule at increasing IIs ("this option would produce an extremely
#: inefficient code"; the A3 ablation quantifies it).
PRESSURE_STRATEGIES = ("spill", "increase_ii")


@dataclass(frozen=True)
class Pipeline:
    """An ordered composition of passes over one :class:`PassContext`."""

    name: str
    passes: tuple[Pass, ...]

    def run(self, ctx: PassContext) -> PassContext:
        for p in self.passes:
            p.run(ctx)
        return ctx

    def describe(self) -> str:
        return f"{self.name}: " + " -> ".join(p.name for p in self.passes)


def pressure_pipeline() -> Pipeline:
    """The Figures 6/7 flow: one schedule, all models, no budget."""
    return Pipeline(
        name="pressure",
        passes=(
            ComputeMII(),
            ModuloSchedule(),
            ClusterAssign(),
            AllocateUnified(),
            AllocateDual(),
            GreedySwap(),
        ),
    )


def evaluation_pipeline(
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
    max_rounds: int = 200,
) -> Pipeline:
    """The Figures 8/9 flow: schedule/allocate/spill until the budget fits.

    All knobs are registry names so they can ride in engine job
    fingerprints; unknown names raise ``ValueError`` eagerly, not from a
    worker process mid-sweep.
    """
    if pressure_strategy not in PRESSURE_STRATEGIES:
        raise ValueError(f"unknown pressure strategy {pressure_strategy!r}")
    round_ = SpillRound(
        policy=get_policy(victim_policy),
        escalation=get_escalation(ii_escalation),
        strategy=pressure_strategy,
    )
    return Pipeline(
        name="evaluate",
        passes=(ComputeMII(), SpillLoop(round=round_, max_rounds=max_rounds)),
    )


def run_pressure(
    loop: Loop,
    machine: MachineConfig,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    store: ArtifactStore | None = None,
) -> PressureReport:
    """Schedule ``loop`` once and measure all models' register needs."""
    ctx = PassContext(
        loop=loop,
        machine=machine,
        swap_estimator=swap_estimator,
        store=store,
    )
    pressure_pipeline().run(ctx)
    return PressureReport(
        loop=loop,
        machine=machine,
        schedule=ctx.schedule,
        mii=ctx.mii_report.mii,
        unified=ctx.require(Model.UNIFIED).registers,
        partitioned=ctx.require(Model.PARTITIONED).registers,
        swapped=ctx.require(Model.SWAPPED).registers,
        max_live=max_live(ctx.lifetimes.values(), ctx.schedule.ii),
    )


def run_evaluation(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    max_rounds: int = 200,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
    store: ArtifactStore | None = None,
) -> LoopEvaluation:
    """Run the full schedule/allocate/spill pipeline for one loop.

    ``register_budget`` is the size of the register file: of the single
    file for Unified, and of *each subfile* for Partitioned/Swapped.
    ``None`` (or the Ideal model) disables spilling.
    """
    pipeline = evaluation_pipeline(
        victim_policy=victim_policy,
        pressure_strategy=pressure_strategy,
        ii_escalation=ii_escalation,
        max_rounds=max_rounds,
    )
    ctx = PassContext(
        loop=loop,
        machine=machine,
        model=model,
        register_budget=register_budget,
        swap_estimator=swap_estimator,
        store=store,
    )
    pipeline.run(ctx)
    return LoopEvaluation(
        loop=loop,
        machine=machine,
        model=model,
        register_budget=register_budget,
        schedule=ctx.last_schedule,
        requirement=ctx.last_requirement,
        mii=ctx.mii_report.mii,
        spilled_values=ctx.spilled_values,
        ii_increases=ctx.ii_increases,
        fits=ctx.fits,
    )


__all__ = [
    "PRESSURE_STRATEGIES",
    "Pipeline",
    "evaluation_pipeline",
    "pressure_pipeline",
    "run_evaluation",
    "run_pressure",
]
