"""Concrete passes of the per-loop compilation flow.

A pass is a named object with ``run(ctx)``: it reads and advances one
:class:`~repro.pipeline.context.PassContext`.  Most passes just materialize
one artifact (the context's lazy properties make that a one-liner); the two
stateful ones are :class:`SpillRound`, one decision of the paper's
Section 5.4 loop, and :class:`SpillLoop`, which iterates it under a round
cap.  Composition lives in :mod:`repro.pipeline.pipelines`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.models import Model
from repro.pipeline.context import PassContext
from repro.pipeline.policies import IIEscalation, SpillPolicy


@runtime_checkable
class Pass(Protocol):
    """One step of a pipeline: reads/advances a :class:`PassContext`."""

    name: str

    def run(self, ctx: PassContext) -> None: ...


class ComputeMII:
    """Materialize the MII report of the loop as written."""

    name = "compute-mii"

    def run(self, ctx: PassContext) -> None:
        ctx.mii_report


class ModuloSchedule:
    """Materialize the modulo schedule of the current graph at ``min_ii``."""

    name = "modulo-schedule"

    def run(self, ctx: PassContext) -> None:
        ctx.schedule


class ClusterAssign:
    """Materialize the scheduler's unit-binding cluster assignment."""

    name = "cluster-assign"

    def run(self, ctx: PassContext) -> None:
        ctx.assignment


class AllocateUnified:
    """Allocate into a single register file (Ideal/Unified models)."""

    name = "allocate-unified"

    def run(self, ctx: PassContext) -> None:
        ctx.require(Model.UNIFIED)


class AllocateDual:
    """Allocate into the clustered file under the scheduler's assignment."""

    name = "allocate-dual"

    def run(self, ctx: PassContext) -> None:
        ctx.require(Model.PARTITIONED)


class GreedySwap:
    """Run greedy swapping, then allocate under the improved assignment."""

    name = "greedy-swap"

    def run(self, ctx: PassContext) -> None:
        ctx.require(Model.SWAPPED)


@dataclass(frozen=True)
class SpillRound:
    """One round of the Section 5.4 loop: measure, then fit/spill/escalate.

    Schedules the current graph, measures the requirement under the
    context's model, and either declares the loop fitted (halt), spills the
    policy's victim, or -- when nothing is spillable, or under the
    ``increase_ii`` strategy -- escalates the II.  The escalation strategy
    also owns the plateau rule that abandons issue-burst-bound loops whose
    requirement stops shrinking.
    """

    policy: SpillPolicy
    escalation: IIEscalation
    strategy: str = "spill"
    name = "spill-round"

    def run(self, ctx: PassContext) -> None:
        if ctx.halted:
            return
        ctx.rounds += 1
        schedule = ctx.schedule
        requirement = ctx.requirement
        ctx.last_schedule = schedule
        ctx.last_requirement = requirement
        if ctx.budget is None or requirement.registers <= ctx.budget:
            ctx.halt()
            return
        victim = (
            self.policy.select(schedule, ctx.lifetimes)
            if self.strategy == "spill"
            else None
        )
        if victim is None:
            if (
                ctx.best_requirement is None
                or requirement.registers < ctx.best_requirement
            ):
                ctx.best_requirement = requirement.registers
                ctx.stale_escalations = 0
            else:
                ctx.stale_escalations += 1
                if self.escalation.give_up(ctx.stale_escalations):
                    ctx.halt(fits=False)
                    return
            ctx.escalate(self.escalation.next_ii(schedule.ii))
            return
        ctx.apply_spill(victim)


@dataclass(frozen=True)
class SpillLoop:
    """Iterate :class:`SpillRound` until the loop fits or the cap expires.

    When the cap expires mid-flight the verdict is taken against the last
    *measured* requirement (the pre-refactor spiller's exact semantics):
    loops that still do not fit are flagged ``fits=False`` rather than
    silently dropped.
    """

    round: SpillRound
    max_rounds: int = 200
    name = "spill-loop"

    def run(self, ctx: PassContext) -> None:
        for _ in range(self.max_rounds):
            if ctx.halted:
                return
            self.round.run(ctx)
        if not ctx.halted:
            ctx.halt(
                fits=ctx.budget is None
                or ctx.last_requirement.registers <= ctx.budget
            )


__all__ = [
    "AllocateDual",
    "AllocateUnified",
    "ClusterAssign",
    "ComputeMII",
    "GreedySwap",
    "ModuloSchedule",
    "Pass",
    "SpillLoop",
    "SpillRound",
]
