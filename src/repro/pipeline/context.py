"""Pass context and the content-addressed artifact store.

One :class:`PassContext` carries a single loop through the paper's per-loop
compilation flow -- modulo schedule, register allocation under a model,
greedy swapping, spilling -- and every derived artifact (MII report,
schedule, lifetimes, cluster assignment, per-model allocations) is obtained
lazily through an :class:`ArtifactStore`.

The store memoizes by *content*, not identity: a schedule is keyed by
``(graph fingerprint, machine fingerprint, min II)`` and everything derived
from it hangs off that key.  Since the scheduler and allocators are
deterministic, two contexts that reach the same key get the *same object* --
which is exactly the reuse the experiments need:

* the four register-file models of Figures 8/9 share one round-0 schedule
  per (loop, machine) instead of rescheduling per model;
* the Ideal baseline and the Unified model share one allocation;
* a pressure measurement (Figures 6/7) and a spill evaluation of the same
  loop share schedule, lifetimes, and allocations outright;
* lifetimes are computed once per schedule, not once per allocator call.

A process-wide default store (:func:`default_store`) makes the sharing
automatic across engine jobs executed in the same process; pass an explicit
store for isolation (tests, benchmarks).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable

from repro.core.clustering import ClusterAssignment, scheduler_assignment
from repro.core.models import (
    Model,
    Requirement,
    partitioned_requirement,
    swapped_requirement,
    unified_requirement,
)
from repro.core.swapping import SwapEstimator, SwapResult
from repro.ir.ddg import DependenceGraph
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.pipeline.fingerprint import graph_fingerprint, machine_fingerprint
from repro.regalloc.allocation import allocate_unified
from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.sched.mii import MiiReport, minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import Schedule


@dataclass
class ArtifactStats:
    """Hit/miss counters of one store, per artifact kind."""

    hits: int = 0
    misses: int = 0
    by_kind: dict[str, list[int]] = field(default_factory=dict)

    def record(self, kind: str, hit: bool) -> None:
        counters = self.by_kind.setdefault(kind, [0, 0])
        if hit:
            self.hits += 1
            counters[0] += 1
        else:
            self.misses += 1
            counters[1] += 1

    def summary(self) -> str:
        return f"{self.hits} artifact hit(s), {self.misses} miss(es)"


class ArtifactStore:
    """Bounded LRU of schedule-derived artifacts, keyed by content.

    The store never returns a stale artifact: keys include everything that
    determines the value (graph and machine fingerprints, min II, model,
    estimator), and all producers are deterministic pure functions -- so a
    hit is bit-identical to a recomputation by construction.
    """

    def __init__(self, max_entries: int = 2048) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.stats = ArtifactStats()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()

    def memo(self, key: tuple, compute: Callable[[], object]) -> object:
        """Return the memoized value of ``key``, computing it on a miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.record(key[0], hit=False)
            value = compute()
            self._entries[key] = value
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
            return value
        self.stats.record(key[0], hit=True)
        self._entries.move_to_end(key)
        return value

    # ------------------------------------------------------------------
    # Artifact accessors (one per derived product)
    # ------------------------------------------------------------------
    def schedule_key(
        self, graph: DependenceGraph, machine: MachineConfig, min_ii: int
    ) -> tuple:
        """The content coordinate every schedule-derived artifact hangs off."""
        return (graph_fingerprint(graph), machine_fingerprint(machine), min_ii)

    def mii(self, graph: DependenceGraph, machine: MachineConfig) -> MiiReport:
        key = ("mii", graph_fingerprint(graph), machine_fingerprint(machine))
        return self.memo(key, lambda: minimum_ii(graph, machine))

    def schedule(
        self, graph: DependenceGraph, machine: MachineConfig, min_ii: int = 1
    ) -> Schedule:
        key = ("schedule", *self.schedule_key(graph, machine, min_ii))
        return self.memo(
            key, lambda: modulo_schedule(graph, machine, min_ii=min_ii)
        )

    def lifetimes(self, schedule: Schedule, key: tuple) -> dict[int, Lifetime]:
        return self.memo(("lifetimes", *key), lambda: lifetimes(schedule))

    def assignment(self, schedule: Schedule, key: tuple) -> ClusterAssignment:
        return self.memo(
            ("assignment", *key), lambda: scheduler_assignment(schedule)
        )

    def requirement(
        self,
        schedule: Schedule,
        key: tuple,
        model: Model,
        swap_estimator: SwapEstimator,
    ) -> Requirement:
        """Per-model register requirement of one schedule.

        Dispatches to the same per-model helpers as
        :func:`repro.core.models.required_registers` (so the two paths
        cannot drift), adding memoization where sharing pays: the unified
        allocation is memoized on its own because the Ideal and Unified
        models wrap the identical allocation, and lifetimes and the
        scheduler assignment are shared by every model.
        """
        lts = self.lifetimes(schedule, key)
        if model in (Model.IDEAL, Model.UNIFIED):
            unified = self.memo(
                ("ualloc", *key), lambda: allocate_unified(schedule, lts=lts)
            )
            return unified_requirement(schedule, model, unified=unified)
        if model is Model.PARTITIONED:
            return self.memo(
                ("req", *key, model.value),
                lambda: partitioned_requirement(
                    schedule, self.assignment(schedule, key), lts=lts
                ),
            )
        if model is Model.SWAPPED:
            return self.memo(
                ("req", *key, model.value, swap_estimator.value),
                lambda: swapped_requirement(
                    schedule, swap_estimator, lts=lts
                ),
            )
        raise ValueError(f"unknown model {model!r}")  # pragma: no cover


#: Process-wide store: engine jobs executed in the same process (serial
#: engine, or one pool worker's share of a batch) share artifacts freely.
_DEFAULT_STORE = ArtifactStore()


def default_store() -> ArtifactStore:
    return _DEFAULT_STORE


@dataclass
class PassContext:
    """Mutable state of one loop traversing a pass pipeline.

    The immutable coordinates (loop, machine, model, budget, estimator) are
    fixed at construction; passes advance the mutable compilation state --
    the current (possibly spill-rewritten) graph, the scheduling floor
    ``min_ii``, and the spill bookkeeping -- and read derived artifacts
    through the lazy properties, which all route through the store.
    """

    loop: Loop
    machine: MachineConfig
    model: Model = Model.UNIFIED
    register_budget: int | None = None
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE
    store: ArtifactStore | None = None

    # Mutable pipeline state.
    graph: DependenceGraph | None = None
    min_ii: int = 1
    rounds: int = 0
    spilled_values: int = 0
    ii_increases: int = 0
    fits: bool = True
    halted: bool = False
    #: Escalation plateau bookkeeping (see IncrementEscalation.give_up).
    stale_escalations: int = 0
    best_requirement: int | None = None
    #: Schedule/requirement of the last *evaluated* round: the pair the
    #: final report is assembled from, even when the round cap expires
    #: after a graph rewrite whose schedule was never computed.
    last_schedule: Schedule | None = None
    last_requirement: Requirement | None = None

    def __post_init__(self) -> None:
        if self.store is None:
            self.store = default_store()
        if self.graph is None:
            self.graph = self.loop.graph

    # ------------------------------------------------------------------
    # Derived artifacts (lazy, memoized by content in the store)
    # ------------------------------------------------------------------
    @property
    def budget(self) -> int | None:
        """Effective register budget; the Ideal model never spills."""
        return None if self.model is Model.IDEAL else self.register_budget

    @property
    def ddg_fingerprint(self) -> str:
        """Content hash of the *current* (possibly rewritten) graph."""
        return graph_fingerprint(self.graph)

    @property
    def schedule_key(self) -> tuple:
        return self.store.schedule_key(self.graph, self.machine, self.min_ii)

    @property
    def mii_report(self) -> MiiReport:
        """MII of the loop as written (the pre-spill graph)."""
        return self.store.mii(self.loop.graph, self.machine)

    @property
    def schedule(self) -> Schedule:
        return self.store.schedule(self.graph, self.machine, self.min_ii)

    @property
    def lifetimes(self) -> dict[int, Lifetime]:
        return self.store.lifetimes(self.schedule, self.schedule_key)

    @property
    def assignment(self) -> ClusterAssignment:
        return self.store.assignment(self.schedule, self.schedule_key)

    def require(self, model: Model) -> Requirement:
        """Register requirement of the current schedule under ``model``."""
        return self.store.requirement(
            self.schedule, self.schedule_key, model, self.swap_estimator
        )

    @property
    def requirement(self) -> Requirement:
        return self.require(self.model)

    @property
    def swap_result(self) -> SwapResult | None:
        return self.require(Model.SWAPPED).swap

    # ------------------------------------------------------------------
    # State transitions (the only ways passes advance the flow)
    # ------------------------------------------------------------------
    def apply_spill(self, victim: int) -> None:
        """Rewrite the graph with ``victim`` spilled to memory."""
        # Imported lazily: the spill package and this one are peers that
        # reference each other only at call time, never at import time.
        from repro.spill.spiller import spill_value

        self.graph = spill_value(self.graph, victim)
        self.spilled_values += 1

    def escalate(self, next_ii: int) -> None:
        """Raise the scheduling floor and reschedule next round."""
        if next_ii <= self.min_ii:
            raise ValueError(
                f"escalation must raise the II (min_ii={self.min_ii}, "
                f"next={next_ii})"
            )
        self.min_ii = next_ii
        self.ii_increases += 1

    def halt(self, fits: bool | None = None) -> None:
        """Stop the iterative flow (optionally recording the verdict)."""
        if fits is not None:
            self.fits = fits
        self.halted = True


__all__ = [
    "ArtifactStats",
    "ArtifactStore",
    "PassContext",
    "default_store",
]
