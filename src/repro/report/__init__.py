"""Reproduction artifacts: run the paper's suite, validate, render, ship.

``python -m repro report`` generates a single self-contained Markdown or
HTML document containing every figure and table of Llosa/Valero/Ayguade
(HPCA 1995) as reproduced by this codebase, a **paper-expected vs.
reproduced** delta table driven by the expectation registry
(:mod:`repro.report.expected`), and a provenance footer (git revision,
source fingerprint, cache statistics, wall time).  ``repro report
--check`` exits non-zero when any gated expectation falls outside its
tolerance -- the repository's one-command reproduction gate.

Layers: :mod:`~repro.report.expected` (the paper's numbers + tolerances),
:mod:`~repro.report.sections` (suite results -> document sections),
:mod:`~repro.report.document` (Markdown/HTML rendering of the shared
table/chart primitives), :mod:`~repro.report.provenance` (the footer),
:mod:`~repro.report.build` (orchestration used by the CLI).
"""

from repro.report.build import FILENAMES, ReportResult, generate_report
from repro.report.document import (
    Document,
    Pre,
    Section,
    Text,
    render_html,
    render_markdown,
)
from repro.report.expected import (
    EXPECTATIONS,
    Delta,
    Expectation,
    evaluate_expectations,
    failed_gates,
    gate_summary,
)
from repro.report.provenance import Provenance, collect_provenance
from repro.report.sections import build_document

__all__ = [
    "Delta",
    "Document",
    "EXPECTATIONS",
    "Expectation",
    "FILENAMES",
    "Pre",
    "Provenance",
    "ReportResult",
    "Section",
    "Text",
    "build_document",
    "collect_provenance",
    "evaluate_expectations",
    "failed_gates",
    "gate_summary",
    "generate_report",
    "render_html",
    "render_markdown",
]
