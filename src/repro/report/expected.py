"""The paper's published numbers and claims, with per-metric tolerances.

Two kinds of expectation guard the reproduction:

* **value** -- a number the paper prints (Tables 2-4's 42/29/23, Table 1's
  over-64 percentages, ...) compared against the reproduced number within
  an absolute tolerance.  Deterministic anchors (the Section 4.1 worked
  example, the cost model) carry tolerance 0; suite statistics carry
  tolerances wide enough for quick-scale runs (the synthetic workload is
  Perfect-Club *like*, not the Perfect Club).
* **trend** -- a qualitative claim (Partitioned dominates Unified, spill
  code raises traffic, ...) that must hold at any suite size.

Expectations with ``gate=False`` are reported in the delta table but never
fail ``repro report --check``: they document where the synthetic workload
is known not to match the paper's (e.g. the cycle-weighted Table 1 column,
which depends on trip-count calibration the paper does not publish).

Gated expectations are calibrated to pass on the default-seed suite from
quick scale (``--loops 20``) through paper scale (``--loops 800``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.models import Model
from repro.experiments.cost import CostStudy
from repro.experiments.example_loop import ExampleResult
from repro.experiments.figure6 import DistributionSet
from repro.experiments.figure8 import Figure8Cell
from repro.experiments.figure9 import Figure9Cell
from repro.experiments.runner import SuiteResult
from repro.experiments.table1 import Table1Row
from repro.machine.costmodel import OrganizationCost

#: Dominance slack, in percentage points, for cumulative-curve claims:
#: first-fit allocation is not monotonic, so a single loop may flip across
#: a grid threshold without invalidating the statistical claim.
CURVE_SLACK_POINTS = 3.0

#: Performance-ordering slack for Figure 8 claims (relative performance).
PERF_SLACK = 0.02


@dataclass(frozen=True)
class Expectation:
    """One paper number or claim, plus how to reproduce and judge it."""

    key: str
    section: str  # SuiteResult section key the check reads
    paper_ref: str  # where the paper states it ("Table 2", "S 5.4", ...)
    description: str
    kind: str = "value"  # "value" | "trend"
    extract: Callable[[SuiteResult], float] | None = None
    paper_value: float | None = None
    tolerance: float = 0.0
    unit: str = ""
    holds: Callable[[SuiteResult], bool] | None = None
    gate: bool = True
    note: str = ""

    def __post_init__(self) -> None:
        if self.kind == "value" and (
            self.extract is None or self.paper_value is None
        ):
            raise ValueError(f"{self.key}: value expectations need "
                             "extract and paper_value")
        if self.kind == "trend" and self.holds is None:
            raise ValueError(f"{self.key}: trend expectations need holds")


@dataclass(frozen=True)
class Delta:
    """One expectation evaluated against a finished suite run."""

    expectation: Expectation
    reproduced: float | bool
    passed: bool | None  # None: informational (gate=False and out of band)

    @property
    def status(self) -> str:
        if self.passed is None:
            return "info"
        return "ok" if self.passed else "fail"

    @property
    def expected_display(self) -> str:
        e = self.expectation
        if e.kind == "trend":
            return "holds"
        tol = f" ± {e.tolerance:g}" if e.tolerance else ""
        return f"{e.paper_value:g}{e.unit}{tol}"

    @property
    def reproduced_display(self) -> str:
        if self.expectation.kind == "trend":
            return "holds" if self.reproduced else "violated"
        return f"{self.reproduced:.2f}{self.expectation.unit}"

    @property
    def delta_display(self) -> str:
        if self.expectation.kind == "trend":
            return "--"
        assert isinstance(self.reproduced, float)
        diff = self.reproduced - float(self.expectation.paper_value)
        return f"{diff:+.2f}"


# ----------------------------------------------------------------------
# Section accessors
# ----------------------------------------------------------------------
def _example(suite: SuiteResult) -> ExampleResult:
    return suite.result("example")


def _cost_study(suite: SuiteResult, registers: int) -> CostStudy:
    for study in suite.result("cost"):
        if study.registers == registers:
            return study
    raise KeyError(registers)


def _organization(study: CostStudy, name: str) -> OrganizationCost:
    for org in study.organizations:
        if org.name == name:
            return org
    raise KeyError(name)


def _table1_row(suite: SuiteResult, config: str) -> Table1Row:
    for row in suite.result("table1"):
        if row.config == config:
            return row
    raise KeyError(config)


def _distribution(suite: SuiteResult, key: str, latency: int) -> DistributionSet:
    for dist in suite.result(key):
        if dist.latency == latency:
            return dist
    raise KeyError(latency)


def _cell(
    suite: SuiteResult, key: str, latency: int, budget: int, model: Model
) -> Figure8Cell | Figure9Cell:
    for cell in suite.result(key):
        if (
            cell.latency == latency
            and cell.budget == budget
            and cell.model is model
        ):
            return cell
    raise KeyError((latency, budget, model))


def _perf(suite: SuiteResult, latency: int, budget: int, model: Model) -> float:
    return _cell(suite, "figure8", latency, budget, model).performance


def _density(suite: SuiteResult, latency: int, budget: int, model: Model) -> float:
    return _cell(suite, "figure9", latency, budget, model).density


def _curves_dominate(
    suite: SuiteResult, key: str, lower: str, upper: str
) -> bool:
    """``upper``'s cumulative curve is never materially below ``lower``'s."""
    for dist in suite.result(key):
        for low_point, up_point in zip(
            dist.curves[lower].points, dist.curves[upper].points
        ):
            slack = CURVE_SLACK_POINTS / 100.0
            if up_point.fraction < low_point.fraction - slack:
                return False
    return True


def _fig8_ordering(suite: SuiteResult) -> bool:
    for latency in (3, 6):
        for budget in (32, 64):
            unified = _perf(suite, latency, budget, Model.UNIFIED)
            part = _perf(suite, latency, budget, Model.PARTITIONED)
            swapped = _perf(suite, latency, budget, Model.SWAPPED)
            if unified > part + PERF_SLACK or part > swapped + PERF_SLACK:
                return False
    return True


def _fig9_unified_highest(suite: SuiteResult) -> bool:
    for latency in (3, 6):
        for budget in (32, 64):
            unified = _density(suite, latency, budget, Model.UNIFIED)
            part = _density(suite, latency, budget, Model.PARTITIONED)
            if unified < part - 1e-9:
                return False
    return True


def _fig9_ideal_floor(suite: SuiteResult) -> bool:
    for latency in (3, 6):
        ideal = _density(suite, latency, 32, Model.IDEAL)
        for budget in (32, 64):
            for model in Model:
                if _density(suite, latency, budget, model) < ideal - 1e-9:
                    return False
    return True


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
EXPECTATIONS: tuple[Expectation, ...] = (
    # --- Section 4.1 worked example: deterministic anchors -------------
    Expectation(
        key="example-ii",
        section="example",
        paper_ref="Section 4.1",
        description="example loop modulo-schedules at II = 1",
        extract=lambda s: float(_example(s).ii),
        paper_value=1.0,
    ),
    Expectation(
        key="example-unified-42",
        section="example",
        paper_ref="Table 2",
        description="unified register requirement of the example loop",
        extract=lambda s: float(_example(s).unified_registers),
        paper_value=42.0,
        unit=" regs",
    ),
    Expectation(
        key="example-partitioned-29",
        section="example",
        paper_ref="Table 3",
        description="partitioned requirement after GL/LO/RO classification",
        extract=lambda s: float(_example(s).partitioned_registers),
        paper_value=29.0,
        unit=" regs",
    ),
    Expectation(
        key="example-swapped-23",
        section="example",
        paper_ref="Table 4",
        description="swapped requirement after exchanging A4 and A6",
        extract=lambda s: float(_example(s).swapped_registers),
        paper_value=23.0,
        unit=" regs",
    ),
    # --- Cost model: deterministic ------------------------------------
    Expectation(
        key="cost-specifier-bits",
        section="cost",
        paper_ref="Section 3.2",
        description=(
            "non-consistent dual of 32-register subfiles keeps 5-bit "
            "register specifiers"
        ),
        extract=lambda s: float(
            _organization(
                _cost_study(s, 32), "non-consistent dual"
            ).specifier_bits
        ),
        paper_value=5.0,
        unit=" bits",
    ),
    Expectation(
        key="cost-access-time",
        section="cost",
        paper_ref="Section 3.2 / conclusions",
        description=(
            "the dual organization does not penalise access time "
            "(subfile access <= unified access)"
        ),
        kind="trend",
        holds=lambda s: (
            _organization(_cost_study(s, 32), "non-consistent dual")
            .access_time
            <= _organization(_cost_study(s, 32), "unified").access_time
            + 1e-9
        ),
    ),
    Expectation(
        key="cost-cheaper-than-doubling",
        section="cost",
        paper_ref="Conclusions",
        description=(
            "the non-consistent dual is cheaper (area) than doubling the "
            "unified register file"
        ),
        kind="trend",
        holds=lambda s: (
            _organization(_cost_study(s, 32), "non-consistent dual")
            .total_area
            < _organization(_cost_study(s, 32), "doubled unified")
            .total_area
        ),
    ),
    # --- Table 1: suite statistics ------------------------------------
    Expectation(
        key="table1-p1l3-over64-loops",
        section="table1",
        paper_ref="Table 1 / Section 5.2",
        description="loops needing more than 64 registers on P1L3",
        extract=lambda s: _table1_row(s, "P1L3").over_64_static(),
        paper_value=0.3,
        tolerance=4.0,
        unit="%",
    ),
    Expectation(
        key="table1-p2l6-over64-loops",
        section="table1",
        paper_ref="Table 1 / Section 5.2",
        description="loops needing more than 64 registers on P2L6",
        extract=lambda s: _table1_row(s, "P2L6").over_64_static(),
        paper_value=10.6,
        tolerance=14.0,
        unit="%",
        note=(
            "the synthetic suite is statistically hotter than the "
            "Perfect Club at paper scale (24.5% at 800 loops)"
        ),
    ),
    Expectation(
        key="table1-p2l6-over64-cycles",
        section="table1",
        paper_ref="Table 1 / Section 5.2",
        description="execution cycles carried by those P2L6 loops",
        extract=lambda s: _table1_row(s, "P2L6").over_64_dynamic(),
        paper_value=49.1,
        tolerance=15.0,
        unit="%",
        gate=False,
        note=(
            "cycle weights depend on trip-count calibration the paper "
            "does not publish; the synthetic suite undershoots it"
        ),
    ),
    Expectation(
        key="table1-pressure-grows",
        section="table1",
        paper_ref="Table 1",
        description=(
            "register pressure grows with machine width and latency "
            "(P2L6 leaves more loops over 64 registers than P1L3)"
        ),
        kind="trend",
        holds=lambda s: (
            _table1_row(s, "P2L6").over_64_static()
            >= _table1_row(s, "P1L3").over_64_static()
        ),
    ),
    # --- Figures 6/7: cumulative distributions ------------------------
    Expectation(
        key="fig6-partitioned-dominates",
        section="figure6",
        paper_ref="Section 5.3",
        description=(
            "partitioning shifts the static cumulative curve left of "
            "unified at both latencies"
        ),
        kind="trend",
        holds=lambda s: _curves_dominate(
            s, "figure6", "unified", "partitioned"
        ),
    ),
    Expectation(
        key="fig6-swapped-dominates",
        section="figure6",
        paper_ref="Section 5.3",
        description="swapping adds a further (smaller) static shift",
        kind="trend",
        holds=lambda s: _curves_dominate(
            s, "figure6", "partitioned", "swapped"
        ),
    ),
    Expectation(
        key="fig6-latency-pressure",
        section="figure6",
        paper_ref="Section 5.2",
        description=(
            "latency 6 needs more registers than latency 3 (unified "
            "curve at 32 registers shifts right)"
        ),
        kind="trend",
        holds=lambda s: (
            _distribution(s, "figure6", 6).curves["unified"].at(32)
            <= _distribution(s, "figure6", 3).curves["unified"].at(32)
            + 1e-9
        ),
    ),
    Expectation(
        key="fig7-partitioned-dominates",
        section="figure7",
        paper_ref="Section 5.3",
        description="the dynamic (cycle-weighted) curves show the same "
        "partitioned-over-unified dominance",
        kind="trend",
        holds=lambda s: _curves_dominate(
            s, "figure7", "unified", "partitioned"
        ),
    ),
    Expectation(
        key="fig7-dynamic-gain",
        section="figure7",
        paper_ref="Section 5.3",
        description=(
            "partitioning improves more dynamically than statically "
            "at 32 registers, latency 6"
        ),
        kind="trend",
        holds=lambda s: (
            _distribution(s, "figure7", 6).curves["partitioned"].at(32)
            - _distribution(s, "figure7", 6).curves["unified"].at(32)
        )
        >= (
            _distribution(s, "figure6", 6).curves["partitioned"].at(32)
            - _distribution(s, "figure6", 6).curves["unified"].at(32)
        ),
        gate=False,
        note=(
            "holds in the paper's workload; the synthetic trip-count "
            "distribution does not concentrate cycles in high-pressure "
            "loops as strongly"
        ),
    ),
    # --- Figure 8: performance ----------------------------------------
    Expectation(
        key="fig8-model-ordering",
        section="figure8",
        paper_ref="Section 5.4",
        description=(
            "at every (latency, budget): unified <= partitioned <= "
            "swapped relative performance"
        ),
        kind="trend",
        holds=_fig8_ordering,
    ),
    Expectation(
        key="fig8-dual-near-ideal-r64",
        section="figure8",
        paper_ref="Section 5.4",
        description=(
            "with 64 registers the dual models nearly match the Ideal "
            "machine (>= 0.97 at both latencies)"
        ),
        kind="trend",
        holds=lambda s: all(
            _perf(s, latency, 64, model) >= 0.97
            for latency in (3, 6)
            for model in (Model.PARTITIONED, Model.SWAPPED)
        ),
    ),
    Expectation(
        key="fig8-dual-near-ideal-l3r32",
        section="figure8",
        paper_ref="Section 5.4",
        description=(
            "at latency 3 with 32 registers the swapped model stays near "
            "Ideal (>= 0.95)"
        ),
        kind="trend",
        holds=lambda s: _perf(s, 3, 32, Model.SWAPPED) >= 0.95,
    ),
    Expectation(
        key="fig8-unified-degrades",
        section="figure8",
        paper_ref="Section 5.4",
        description=(
            "the unified model degrades where pressure hurts most "
            "(L6/R32 performance < 0.97, below partitioned)"
        ),
        kind="trend",
        holds=lambda s: (
            _perf(s, 6, 32, Model.UNIFIED) < 0.97
            and _perf(s, 6, 32, Model.UNIFIED)
            <= _perf(s, 6, 32, Model.PARTITIONED) + PERF_SLACK
        ),
    ),
    # --- Figure 9: memory traffic -------------------------------------
    Expectation(
        key="fig9-unified-densest",
        section="figure9",
        paper_ref="Section 5.4",
        description=(
            "spill code makes the unified model's traffic density the "
            "highest at every configuration"
        ),
        kind="trend",
        holds=_fig9_unified_highest,
    ),
    Expectation(
        key="fig9-ideal-floor",
        section="figure9",
        paper_ref="Section 5.4",
        description=(
            "the Ideal machine gives the workload's intrinsic density "
            "floor (no model falls below it)"
        ),
        kind="trend",
        holds=_fig9_ideal_floor,
    ),
)


def evaluate_expectations(
    suite: SuiteResult,
    expectations: Sequence[Expectation] = EXPECTATIONS,
) -> list[Delta]:
    """Judge every expectation against one finished suite run."""
    deltas = []
    for expectation in expectations:
        if expectation.kind == "trend":
            assert expectation.holds is not None
            reproduced: float | bool = bool(expectation.holds(suite))
            within = bool(reproduced)
        else:
            assert expectation.extract is not None
            assert expectation.paper_value is not None
            reproduced = float(expectation.extract(suite))
            within = (
                abs(reproduced - expectation.paper_value)
                <= expectation.tolerance + 1e-9
            )
        passed: bool | None = within
        if not expectation.gate and not within:
            passed = None  # informational: reported, never fails --check
        deltas.append(Delta(expectation, reproduced, passed))
    return deltas


def failed_gates(deltas: Sequence[Delta]) -> list[Delta]:
    """The deltas that should make ``repro report --check`` exit non-zero."""
    return [
        d for d in deltas if d.expectation.gate and d.passed is False
    ]


def gate_summary(deltas: Sequence[Delta]) -> tuple[list[Delta], list[Delta]]:
    """``(gated, failed)`` -- the single source for every "N of M gated
    checks pass" surface (CLI summary, artifact intro, delta table)."""
    gated = [d for d in deltas if d.expectation.gate]
    return gated, failed_gates(deltas)


__all__ = [
    "CURVE_SLACK_POINTS",
    "Delta",
    "EXPECTATIONS",
    "Expectation",
    "PERF_SLACK",
    "evaluate_expectations",
    "failed_gates",
    "gate_summary",
]
