"""Provenance of one reproduction artifact: what ran, where, from what.

A reproduction document is only evidence if a reader can tell exactly which
code produced it.  The footer therefore records the git revision, the
engine's source fingerprint (the same hash that invalidates stale cache
entries -- see :func:`repro.engine.jobs.source_fingerprint`), the Python
runtime, the suite parameters, and the engine's cache statistics for the
run that built the document.
"""

from __future__ import annotations

import platform
import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.engine.jobs import source_fingerprint
from repro.experiments.runner import SuiteResult
from repro.workloads.suite import DEFAULT_SEED


def git_revision(root: Path | None = None) -> str:
    """The checkout's short revision, or ``"unknown"`` outside a repo."""
    if root is None:
        root = Path(__file__).resolve().parents[3]
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


@dataclass(frozen=True)
class Provenance:
    """Everything the footer of a reproduction artifact records."""

    git: str
    source: str  # engine source fingerprint (first 12 hex chars)
    python: str
    platform: str
    n_loops: int
    spill_loops: int | None
    suite_seed: int
    engine_jobs: int
    cache_summary: str | None
    wall_seconds: float
    generated_at: str | None = None
    #: One-line outcome of the sampled simulator cross-check, when it ran
    #: (see :mod:`repro.validate.sampling`); ``None`` otherwise.
    sim_check: str | None = None
    #: One-line outcome of the full-grid static proof, when it ran (see
    #: :mod:`repro.check.coverage`); ``None`` otherwise.
    static_check: str | None = None

    def rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs, in footer order."""
        rows = [
            ("git revision", self.git),
            ("source fingerprint", self.source),
            ("python", self.python),
            ("platform", self.platform),
            ("suite", f"{self.n_loops} loops, seed {self.suite_seed}"),
            (
                "spill subset",
                "all loops"
                if self.spill_loops is None
                else f"{self.spill_loops} loops",
            ),
            ("evaluation points", str(self.engine_jobs)),
            ("cache", self.cache_summary or "disabled"),
            ("wall time", f"{self.wall_seconds:.1f}s"),
        ]
        if self.sim_check:
            rows.append(("sim cross-check", self.sim_check))
        if self.static_check:
            rows.append(("static check", self.static_check))
        if self.generated_at:
            rows.append(("generated", self.generated_at))
        return rows


def collect_provenance(
    suite: SuiteResult,
    generated_at: str | None = None,
    sim_check: str | None = None,
    static_check: str | None = None,
) -> Provenance:
    """Assemble the footer data for one finished suite run."""
    return Provenance(
        git=git_revision(),
        source=source_fingerprint()[:12],
        python=platform.python_version(),
        platform=f"{sys.platform} ({platform.machine()})",
        n_loops=suite.n_loops,
        spill_loops=suite.spill_loops,
        suite_seed=DEFAULT_SEED,
        engine_jobs=suite.engine_jobs,
        cache_summary=suite.cache_summary,
        wall_seconds=suite.wall_seconds,
        generated_at=generated_at,
        sim_check=sim_check,
        static_check=static_check,
    )


__all__ = ["Provenance", "collect_provenance", "git_revision"]
