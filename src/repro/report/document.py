"""Self-contained report documents: one Markdown or HTML file, no deps.

A :class:`Document` is a titled sequence of :class:`Section`\\ s whose
blocks are plain text, preformatted listings, or the shared primitives of
:mod:`repro.analysis.reporting` (tables and charts).  Rendering to
Markdown uses pipe tables and ASCII charts; rendering to HTML inlines a
stylesheet (light and dark schemes) and SVG charts, so the artifact is one
file a reader can open anywhere -- including the GitHub Actions artifact
viewer -- with zero runtime dependencies.
"""

from __future__ import annotations

import html as _html
import re
from dataclasses import dataclass

from repro.analysis.reporting import BarChart, LineChart, Table
from repro.report.provenance import Provenance


@dataclass(frozen=True)
class Text:
    """A paragraph of prose."""

    body: str


@dataclass(frozen=True)
class Pre:
    """A preformatted listing (kernel code, raw report text)."""

    body: str
    title: str | None = None


Block = Text | Pre | Table | BarChart | LineChart


@dataclass(frozen=True)
class Section:
    title: str
    blocks: tuple[Block, ...]

    @property
    def anchor(self) -> str:
        """GitHub-style heading slug, so TOC links work when the Markdown
        artifact is viewed on a forge: lowercase, punctuation dropped,
        spaces become hyphens, literal hyphens kept."""
        slug = re.sub(r"[^a-z0-9 -]", "", self.title.lower())
        return slug.replace(" ", "-")


@dataclass(frozen=True)
class Document:
    title: str
    intro: str
    sections: tuple[Section, ...]
    provenance: Provenance


# ----------------------------------------------------------------------
# Markdown
# ----------------------------------------------------------------------
def _block_markdown(block: Block) -> str:
    if isinstance(block, Text):
        return block.body
    if isinstance(block, Pre):
        fence = f"```\n{block.body}\n```"
        return f"**{block.title}**\n\n{fence}" if block.title else fence
    if isinstance(block, Table):
        return block.to_markdown()
    return f"```\n{block.to_ascii()}\n```"


def render_markdown(doc: Document) -> str:
    lines = [f"# {doc.title}", "", doc.intro, ""]
    lines.append("## Contents")
    lines.append("")
    for section in doc.sections:
        lines.append(f"- [{section.title}](#{section.anchor})")
    lines.append("")
    for section in doc.sections:
        lines.append(f"## {section.title}")
        lines.append("")
        for block in section.blocks:
            lines.append(_block_markdown(block))
            lines.append("")
    lines.append("## Provenance")
    lines.append("")
    lines.append("| | |")
    lines.append("| --- | --- |")
    for label, value in doc.provenance.rows():
        lines.append(f"| {label} | `{value}` |")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# HTML
# ----------------------------------------------------------------------
#: Palette: categorical slots 1-4 of the validated reference palette
#: (blue / orange / aqua / yellow), stepped separately for light and dark
#: surfaces.  Charts reference slots via ``.series-N`` classes only, so
#: this stylesheet is the single place colour lives.
_STYLE = """
:root {
  color-scheme: light dark;
}
body {
  margin: 0;
  font: 15px/1.55 system-ui, -apple-system, "Segoe UI", sans-serif;
}
.viz-root {
  --surface-1: #fcfcfb;
  --surface-2: #f1f0ee;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --grid: #dddcd8;
  --ok: #008300;
  --fail: #b3261e;
  --info: #52514e;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  background: var(--surface-1);
  color: var(--text-primary);
  max-width: 60rem;
  margin: 0 auto;
  padding: 2rem 1.5rem 4rem;
}
@media (prefers-color-scheme: dark) {
  .viz-root {
    --surface-1: #1a1a19;
    --surface-2: #262625;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --grid: #3a3a38;
    --ok: #58b658;
    --fail: #e66767;
    --info: #c3c2b7;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
  }
}
h1 { font-size: 1.7rem; margin: 0 0 .4rem; }
h2 { font-size: 1.25rem; margin: 2.2rem 0 .6rem;
     border-bottom: 1px solid var(--grid); padding-bottom: .3rem; }
p { margin: .5rem 0 1rem; }
.intro, nav { color: var(--text-secondary); }
nav ul { margin: .2rem 0 1rem; padding-left: 1.2rem; }
a { color: var(--series-1); }
pre {
  background: var(--surface-2);
  padding: .8rem 1rem;
  border-radius: 6px;
  overflow-x: auto;
  font: 12.5px/1.45 ui-monospace, "SF Mono", Menlo, Consolas, monospace;
}
table {
  border-collapse: collapse;
  margin: .6rem 0 1.2rem;
  font-size: .88rem;
  font-variant-numeric: tabular-nums;
}
caption {
  caption-side: top;
  text-align: left;
  font-weight: 600;
  padding-bottom: .35rem;
}
th, td {
  border-bottom: 1px solid var(--grid);
  padding: .3rem .7rem;
  text-align: right;
}
th:first-child, td:first-child { text-align: left; }
thead th { border-bottom: 2px solid var(--text-secondary); }
tr.delta-ok td:last-child { color: var(--ok); font-weight: 600; }
tr.delta-fail td:last-child { color: var(--fail); font-weight: 600; }
tr.delta-info td:last-child { color: var(--info); }
svg.chart { display: block; margin: .8rem 0 1.4rem; max-width: 100%;
            height: auto; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .baseline { stroke: var(--text-secondary); stroke-width: 1; }
svg .axis, svg .legend {
  fill: var(--text-secondary);
  font: 11px system-ui, sans-serif;
}
svg .legend { font-weight: 600; }
svg polyline.line { fill: none; stroke-width: 2; }
svg .series-0 { fill: var(--series-1); stroke: var(--series-1); }
svg .series-1 { fill: var(--series-2); stroke: var(--series-2); }
svg .series-2 { fill: var(--series-3); stroke: var(--series-3); }
svg .series-3 { fill: var(--series-4); stroke: var(--series-4); }
footer {
  margin-top: 3rem;
  border-top: 1px solid var(--grid);
  padding-top: 1rem;
  color: var(--text-secondary);
  font-size: .85rem;
}
footer table { font-size: .85rem; }
footer code { font-family: ui-monospace, Menlo, Consolas, monospace; }
"""


def _block_html(block: Block) -> str:
    if isinstance(block, Text):
        return f"<p>{_html.escape(block.body)}</p>"
    if isinstance(block, Pre):
        code = f"<pre>{_html.escape(block.body)}</pre>"
        if block.title:
            return f"<p><strong>{_html.escape(block.title)}</strong></p>{code}"
        return code
    if isinstance(block, Table):
        return block.to_html()
    return block.to_svg()


def render_html(doc: Document) -> str:
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en"><head><meta charset="utf-8">',
        '<meta name="viewport" content="width=device-width, '
        'initial-scale=1">',
        f"<title>{_html.escape(doc.title)}</title>",
        f"<style>{_STYLE}</style>",
        '</head><body><main class="viz-root">',
        f"<h1>{_html.escape(doc.title)}</h1>",
        f'<p class="intro">{_html.escape(doc.intro)}</p>',
        "<nav><ul>",
    ]
    for section in doc.sections:
        parts.append(
            f'<li><a href="#{section.anchor}">'
            f"{_html.escape(section.title)}</a></li>"
        )
    parts.append("</ul></nav>")
    for section in doc.sections:
        parts.append(f'<section id="{section.anchor}">')
        parts.append(f"<h2>{_html.escape(section.title)}</h2>")
        for block in section.blocks:
            parts.append(_block_html(block))
        parts.append("</section>")
    parts.append("<footer><h2>Provenance</h2><table><tbody>")
    for label, value in doc.provenance.rows():
        parts.append(
            f"<tr><td>{_html.escape(label)}</td>"
            f"<td><code>{_html.escape(value)}</code></td></tr>"
        )
    parts.append("</tbody></table></footer>")
    parts.append("</main></body></html>")
    return "\n".join(parts)


RENDERERS = {"md": render_markdown, "html": render_html}

__all__ = [
    "Block",
    "Document",
    "Pre",
    "RENDERERS",
    "Section",
    "Text",
    "render_html",
    "render_markdown",
]
