"""Orchestrate one reproduction artifact: run, validate, render, write.

``python -m repro report`` lands here.  :func:`generate_report` runs the
full experiment suite through the (cached, parallel) engine, judges every
registered paper expectation, and renders a single self-contained Markdown
or HTML document with a provenance footer.  ``--check`` turns the delta
table into an exit code, making "does this still reproduce the paper?"
a one-command CI gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.check.coverage import StaticValidation
    from repro.validate.sampling import SampledValidation

from repro.api.registry import get_experiment
from repro.engine.pool import Engine
from repro.experiments.runner import SuiteResult
from repro.report.document import RENDERERS, Document
from repro.report.expected import (
    Delta,
    evaluate_expectations,
    failed_gates,
    gate_summary,
)
from repro.report.provenance import collect_provenance
from repro.report.sections import build_document

#: Artifact file name per format.
FILENAMES = {"md": "report.md", "html": "report.html"}


@dataclass(frozen=True)
class ReportResult:
    """Everything one ``repro report`` invocation produced."""

    suite: SuiteResult
    deltas: tuple[Delta, ...]
    document: Document
    text: str
    path: Path | None
    #: Sampled simulator cross-check outcome, when it ran (see
    #: :mod:`repro.validate.sampling`); ``None`` otherwise.
    sim: "SampledValidation | None" = None
    #: Full-grid static proof outcome, when it ran (see
    #: :mod:`repro.check.coverage`); covers 100% of suite points where
    #: the simulator samples.  ``None`` otherwise.
    static: "StaticValidation | None" = None

    @property
    def failed(self) -> list[Delta]:
        return failed_gates(self.deltas)

    @property
    def ok(self) -> bool:
        """Paper-delta gates pass, the sampled execution agrees, *and*
        the full-grid static proof holds."""
        return (
            not self.failed
            and (self.sim is None or self.sim.ok)
            and (self.static is None or self.static.ok)
        )

    def summary(self) -> str:
        gated, failed = gate_summary(self.deltas)
        lines = [
            f"checks: {len(gated) - len(failed)}/{len(gated)} "
            "gated expectations pass"
        ]
        for delta in failed:
            lines.append(
                f"  FAIL {delta.expectation.key}: expected "
                f"{delta.expected_display}, reproduced "
                f"{delta.reproduced_display} "
                f"({delta.expectation.paper_ref})"
            )
        if self.sim is not None:
            lines.append(f"sim cross-check: {self.sim.describe()}")
            for mismatch in self.sim.mismatches:
                lines.append("  SIM " + mismatch.describe().replace("\n", " "))
        if self.static is not None:
            lines.append(f"static check: {self.static.describe()}")
            for point in self.static.failures:
                for finding in point.findings:
                    lines.append(
                        "  STATIC "
                        + finding.describe().replace("\n", " ")
                    )
        if self.path is not None:
            lines.append(f"artifact: {self.path}")
        return "\n".join(lines)


def generate_report(
    n_loops: int = 200,
    spill_loops: int | None = None,
    engine: Engine | None = None,
    fmt: str = "md",
    out_dir: Path | str | None = "report",
    stamp: bool = True,
    sim_samples: int = 0,
    sim_seed: int | None = None,
    static_check: bool = False,
) -> ReportResult:
    """Run the suite and build (and optionally write) the artifact.

    ``out_dir=None`` renders without writing (``--check``-only runs).
    ``stamp=False`` omits the generation timestamp, which keeps renders
    byte-reproducible for tests.

    ``sim_samples > 0`` additionally runs the sampled simulator
    cross-check: ``sim_samples`` suite loops -- chosen by one RNG seeded
    with ``sim_seed``, so repeated runs validate the same points -- are
    executed cycle-by-cycle under every model and kernel tier and checked
    against the analytical claims.  The outcome lands in the provenance
    footer and in :attr:`ReportResult.ok`.

    ``static_check=True`` statically proves **every** point of the
    report's suite grid (dependences, reservation table, allocation,
    spill accounting -- see :mod:`repro.check`); simulation stays
    sampled because it is orders of magnitude more expensive.
    """
    if fmt not in RENDERERS:
        raise ValueError(
            f"unknown format {fmt!r}; expected one of {sorted(RENDERERS)}"
        )
    # The suite runs through the experiment registry -- the same validated
    # entry every API/serve/CLI caller uses.
    suite = get_experiment("suite").run(
        engine=engine, loops=n_loops, spill_loops=spill_loops
    )
    deltas = tuple(evaluate_expectations(suite))
    sim = None
    if sim_samples > 0:
        # Imported lazily, like the registry: repro.validate drives the
        # pipeline and must not join the report's import-time graph.
        from repro.validate import run_sampled_validation
        from repro.workloads.suite import DEFAULT_SEED

        sim = run_sampled_validation(
            n_loops=n_loops,
            samples=sim_samples,
            seed=DEFAULT_SEED if sim_seed is None else sim_seed,
        )
    static = None
    if static_check:
        from repro.check.coverage import run_static_validation

        static = run_static_validation(n_loops=n_loops)
    generated_at = (
        datetime.now(timezone.utc).strftime("%Y-%m-%d %H:%M UTC")
        if stamp
        else None
    )
    provenance = collect_provenance(
        suite,
        generated_at=generated_at,
        sim_check=sim.describe() if sim is not None else None,
        static_check=static.describe() if static is not None else None,
    )
    document = build_document(suite, deltas, provenance)
    text = RENDERERS[fmt](document)
    path = None
    if out_dir is not None:
        directory = Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / FILENAMES[fmt]
        path.write_text(text, encoding="utf-8")
    return ReportResult(
        suite=suite,
        deltas=deltas,
        document=document,
        text=text,
        path=path,
        sim=sim,
        static=static,
    )


__all__ = ["FILENAMES", "ReportResult", "generate_report"]
