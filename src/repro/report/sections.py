"""Assemble the reproduction document from one suite run.

Each builder turns a driver's structured result into a report section:
a short narrative stating what the paper reports, the figure as a chart,
and the full numbers as a table.  The paper-delta section renders the
expectation registry (:mod:`repro.report.expected`) as a pass/fail table.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.reporting import Table
from repro.experiments import cost, example_loop, figure6, figure8, figure9
from repro.experiments import table1 as table1_mod
from repro.experiments.runner import SuiteResult
from repro.report.document import Document, Pre, Section, Text
from repro.report.expected import Delta, gate_summary
from repro.report.provenance import Provenance

_STATUS_MARKS = {"ok": "within", "fail": "OUTSIDE", "info": "info"}


def delta_section(deltas: Sequence[Delta]) -> Section:
    gated, failed = gate_summary(deltas)
    summary = (
        f"{len(gated) - len(failed)} of {len(gated)} gated checks pass"
        + (
            "."
            if not failed
            else f"; {len(failed)} FAILED -- this artifact does not "
            "reproduce the paper."
        )
    )
    rows = []
    classes = []
    for delta in deltas:
        e = delta.expectation
        rows.append(
            (
                e.key,
                e.paper_ref,
                delta.expected_display,
                delta.reproduced_display,
                delta.delta_display,
                _STATUS_MARKS[delta.status],
            )
        )
        classes.append(f"delta-{delta.status}")
    blocks = [
        Text(
            "Every number the paper publishes, next to this run's "
            "reproduction. 'within' rows satisfy their tolerance; 'info' "
            "rows are reported but not gated (see docs/"
            "reproduction-report.md for why). "
            + summary
        ),
        Table.build(
            ["check", "paper", "expected", "reproduced", "delta", "status"],
            rows,
            title="Paper-expected vs. reproduced",
            row_classes=classes,
        ),
    ]
    return Section(title="Paper-delta validation", blocks=tuple(blocks))


def example_section(suite: SuiteResult) -> Section:
    result = suite.result("example")
    blocks: list = [
        Text(
            "The Section 4.1 walk-through on the example machine "
            "(2 adders, 2 multipliers, 4 load/store units, latency 3): "
            "modulo-schedule the example loop, allocate under each model, "
            "then swap A4 and A6. The paper's requirement progression is "
            "42 (unified), 29 (partitioned), 23 (swapped)."
        )
    ]
    for title, body in example_loop.kernel_listings(result):
        blocks.append(Pre(body, title=title))
    blocks.extend(example_loop.example_tables(result))
    blocks.append(example_loop.requirement_chart(result))
    return Section(
        title="Section 4.1 example (Tables 2-4)", blocks=tuple(blocks)
    )


def table1_section(suite: SuiteResult) -> Section:
    rows = suite.result("table1")
    return Section(
        title="Table 1 -- allocatable loops",
        blocks=(
            Text(
                "Percentage of loops (and of execution cycles) that "
                "allocate without spilling under a unified register file "
                "of 16/32/64 registers, across the PxLy machine grid. "
                "Pressure grows with machine width and latency."
            ),
            table1_mod.over64_chart(rows),
            table1_mod.table1_table(rows),
        ),
    )


def _distribution_section(
    suite: SuiteResult, key: str, figure_name: str, narrative: str
) -> Section:
    sets = suite.result(key)
    blocks: list = [Text(narrative)]
    for dist in sets:
        blocks.append(figure6.distribution_chart(dist, figure_name))
        blocks.append(figure6.distribution_table(dist, figure_name))
    return Section(
        title=f"{figure_name} -- cumulative register requirements",
        blocks=tuple(blocks),
    )


def figure6_section(suite: SuiteResult) -> Section:
    return _distribution_section(
        suite,
        "figure6",
        "Figure 6",
        "Fraction of loops whose register requirement fits in x "
        "registers, per model and latency. Partitioning shifts the curve "
        "markedly left of unified; swapping adds a smaller further shift; "
        "both dual models gain more at latency 6, where pressure is "
        "higher.",
    )


def figure7_section(suite: SuiteResult) -> Section:
    return _distribution_section(
        suite,
        "figure7",
        "Figure 7",
        "The same distributions weighted by estimated execution time "
        "(trip count x II): loops with high register requirements carry "
        "a disproportionate share of the cycles.",
    )


def figure8_section(suite: SuiteResult) -> Section:
    cells = suite.result("figure8")
    return Section(
        title="Figure 8 -- performance",
        blocks=(
            Text(
                "Workload performance relative to the Ideal machine "
                "(infinite registers) after the full schedule/allocate/"
                "spill pipeline. With 64 registers the dual models nearly "
                "match Ideal; with 32 the unified model degrades heavily "
                "and swapping pays off exactly where pressure hurts most "
                "(L6/R32)."
            ),
            figure8.performance_chart(cells),
            figure8.performance_table(cells),
        ),
    )


def figure9_section(suite: SuiteResult) -> Section:
    cells = suite.result("figure9")
    return Section(
        title="Figure 9 -- memory traffic density",
        blocks=(
            Text(
                "Average fraction of memory-bus bandwidth used per cycle. "
                "Spill code adds loads and stores, so the unified model's "
                "density rises above the dual models'; the Ideal machine "
                "gives the workload's intrinsic floor."
            ),
            figure9.density_chart(cells),
            figure9.density_table(cells),
        ),
    )


def cost_section(suite: SuiteResult) -> Section:
    studies = suite.result("cost")
    blocks: list = [
        Text(
            "The Section 3.2 cost argument: a dual implementation halves "
            "each subfile's read ports (shorter access time, quadratically "
            "less area per port) while the non-consistent organization "
            "keeps short register specifiers yet stores up to twice as "
            "many distinct values -- cheaper than doubling the register "
            "file."
        ),
        cost.area_chart(studies),
    ]
    blocks.extend(cost.cost_table(study) for study in studies)
    return Section(
        title="Register-file cost model (Section 3.2)", blocks=tuple(blocks)
    )


def build_document(
    suite: SuiteResult,
    deltas: Sequence[Delta],
    provenance: Provenance,
    title: str = (
        "Non-Consistent Dual Register Files -- reproduction report"
    ),
) -> Document:
    _, failed = gate_summary(deltas)
    verdict = (
        "All gated checks pass: this run reproduces the paper within "
        "the registered tolerances."
        if not failed
        else f"{len(failed)} gated check(s) FAIL: see the delta table."
    )
    intro = (
        "Llosa, Valero, Ayguade, 'Non-Consistent Dual Register Files to "
        "Reduce Register Pressure' (HPCA 1995), reproduced end-to-end on "
        f"a {suite.n_loops}-loop synthetic Perfect-Club-like suite. "
        + verdict
    )
    sections = (
        delta_section(deltas),
        example_section(suite),
        table1_section(suite),
        figure6_section(suite),
        figure7_section(suite),
        figure8_section(suite),
        figure9_section(suite),
        cost_section(suite),
    )
    return Document(
        title=title,
        intro=intro,
        sections=sections,
        provenance=provenance,
    )


__all__ = [
    "build_document",
    "cost_section",
    "delta_section",
    "example_section",
    "figure6_section",
    "figure7_section",
    "figure8_section",
    "figure9_section",
    "table1_section",
]
