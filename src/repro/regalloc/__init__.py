"""Lifetimes, MaxLive bound, and wands-only first-fit register allocation."""

from repro.regalloc.allocation import UnifiedAllocation, allocate_unified
from repro.regalloc.firstfit import (
    AllocationError,
    AllocationResult,
    PlacedLifetime,
    first_fit,
    registers_required,
    verify_disjoint,
)
from repro.regalloc.lifetimes import Lifetime, lifetimes, total_lifetime
from repro.regalloc.mve import MveAllocation, allocate_mve
from repro.regalloc.maxlive import average_live, live_at, live_profile, max_live

__all__ = [
    "AllocationError",
    "AllocationResult",
    "Lifetime",
    "MveAllocation",
    "PlacedLifetime",
    "UnifiedAllocation",
    "allocate_mve",
    "allocate_unified",
    "average_live",
    "first_fit",
    "lifetimes",
    "live_at",
    "live_profile",
    "max_live",
    "registers_required",
    "total_lifetime",
    "verify_disjoint",
]
