"""MaxLive: the classic lower bound on register requirements.

In the steady state of a modulo-scheduled loop a new instance of every loop
variant is created each II cycles, so at kernel cycle ``c`` (0 <= c < II) the
number of live instances of a variant with lifetime ``[s, e)`` is::

    |{ k : s <= c + k*II < e }|  =  ceil((e - c) / II) - ceil((s - c) / II)

MaxLive is the maximum over kernel cycles of the summed live counts; no
allocation can use fewer registers, and Rau et al. [15] report first-fit
wands-only allocation achieving MaxLive or MaxLive + 1 on virtually all
loops.  The swapping pass uses per-cluster MaxLive as its cheap estimator
(paper, Section 5.2: "a lower bound ... found by computing the maximum number
of values that are alive at any cycle of the schedule").
"""

from __future__ import annotations

import math
from typing import Iterable

from repro import kernel
from repro.kernel.lifetimes import live_profile_spans
from repro.regalloc.lifetimes import Lifetime


def live_at(lifetime: Lifetime, cycle: int, ii: int) -> int:
    """Number of simultaneously live instances of one variant at a kernel
    cycle (0 <= cycle < II)."""
    upper = math.ceil((lifetime.end - cycle) / ii)
    lower = math.ceil((lifetime.start - cycle) / ii)
    return max(0, upper - lower)


def live_profile(lts: Iterable[Lifetime], ii: int) -> list[int]:
    """Total live values at each kernel cycle ``0 .. II-1``.

    With kernels enabled the sum is a difference array over the II cycles
    (O(values + II)); the per-cycle :func:`live_at` scan remains as the
    reference implementation.
    """
    lts = list(lts)
    if kernel.kernels_enabled():
        return live_profile_spans(((lt.start, lt.end) for lt in lts), ii)
    return [sum(live_at(lt, c, ii) for lt in lts) for c in range(ii)]


def max_live(lts: Iterable[Lifetime], ii: int) -> int:
    """Lower bound on registers required by a set of lifetimes."""
    profile = live_profile(lts, ii)
    return max(profile) if profile else 0


def average_live(lts: Iterable[Lifetime], ii: int) -> float:
    """Average live values per cycle = sum of lifetimes / II."""
    total = sum(lt.length for lt in lts)
    return total / ii if ii else 0.0


__all__ = ["average_live", "live_at", "live_profile", "max_live"]
