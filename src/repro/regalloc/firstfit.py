"""Wands-only first-fit allocation for rotating register files.

The paper allocates registers with the *Wands Only* strategy of Rau et
al. [15] combined with *First Fit* ("the one that obtains the more optimal
results ... selected due to its simplicity", Section 2).

Geometry.  In a rotating register file, iteration k's instance of a loop
variant occupies a physical register one past iteration k-1's instance, so
the set of (register, time) cells used by all instances of one variant forms
a diagonal stripe -- Rau's "wand".  Under the shear transform

    (register r, time t)  |->  tau = t - r * II

every instance of a variant maps to the *same* interval ``[start, end)`` of
length equal to its lifetime, and choosing the variant's architectural
register amounts to shifting that interval by an integer multiple of II.
Two variants collide in the register file iff their shifted intervals
overlap.  Wands-only allocation is therefore exactly interval packing on a
line with II-granular shifts, and the registers required by a packing of
span S is ``ceil(S / II)`` (the torus circumference must cover the span).

For II = 1 the packing is gap-free and the requirement equals the sum of
lifetimes -- the "42 registers" of the paper's Section 4.1 example.
"""

from __future__ import annotations

import math
from bisect import bisect_right, insort
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro import kernel
from repro.kernel.firstfit import BitOccupancy
from repro.kernel.firstfit import first_fit_shift as _mask_shift
from repro.regalloc.lifetimes import Lifetime


class AllocationError(ValueError):
    """Raised for invalid allocations."""


@dataclass(frozen=True)
class PlacedLifetime:
    """A lifetime with its chosen shift (architectural register offset).

    ``shift`` counts register offsets: the interval is displaced by
    ``shift * II`` along the sheared time axis.
    """

    lifetime: Lifetime
    shift: int
    ii: int

    @property
    def start(self) -> int:
        return self.lifetime.start + self.shift * self.ii

    @property
    def end(self) -> int:
        return self.lifetime.end + self.shift * self.ii

    @property
    def op_id(self) -> int:
        return self.lifetime.op_id


@dataclass(frozen=True)
class AllocationResult:
    """Outcome of allocating one set of lifetimes into one register file."""

    ii: int
    placements: dict[int, PlacedLifetime]

    @property
    def registers_required(self) -> int:
        return registers_required(self.placements.values(), self.ii)

    def merged_with(self, other: "AllocationResult") -> "AllocationResult":
        """Union of two allocations in the same register file."""
        if other.ii != self.ii:
            raise AllocationError("cannot merge allocations with different II")
        overlap = set(self.placements) & set(other.placements)
        if overlap:
            raise AllocationError(f"duplicate values in merge: {overlap}")
        return AllocationResult(self.ii, {**self.placements, **other.placements})


def registers_required(
    placements: Iterable[PlacedLifetime], ii: int
) -> int:
    """Registers needed by placed (non-overlapping) lifetimes: ceil(span/II)."""
    placements = list(placements)
    if not placements:
        return 0
    span = max(p.end for p in placements) - min(p.start for p in placements)
    return math.ceil(span / ii)


def verify_disjoint(placements: Iterable[PlacedLifetime]) -> None:
    """Raise :class:`AllocationError` if any two placed intervals overlap."""
    ordered = sorted(placements, key=lambda p: p.start)
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.start < prev.end:
            raise AllocationError(
                f"values {prev.op_id} and {cur.op_id} overlap: "
                f"[{prev.start},{prev.end}) vs [{cur.start},{cur.end})"
            )


class IntervalSet:
    """Sorted set of disjoint half-open intervals with first-fit queries."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []

    def add(self, start: int, end: int) -> None:
        idx = bisect_right(self._starts, start)
        self._starts.insert(idx, start)
        self._ends.insert(idx, end)

    def overlaps(self, start: int, end: int) -> int | None:
        """Return the end of some interval overlapping [start, end), else None."""
        idx = bisect_right(self._starts, start)
        # Predecessor may cover start.
        if idx > 0 and self._ends[idx - 1] > start:
            return self._ends[idx - 1]
        # Successor may begin before end.
        if idx < len(self._starts) and self._starts[idx] < end:
            return self._ends[idx]
        return None


def first_fit(
    lts: Iterable[Lifetime],
    ii: int,
    fixed: Sequence[PlacedLifetime] = (),
) -> AllocationResult:
    """First-fit wands-only allocation.

    Lifetimes are processed in increasing start time (ties by op id, the
    paper's deterministic convention); each receives the smallest
    non-negative shift whose interval avoids everything already placed.

    Args:
        fixed: Already-placed lifetimes that must be avoided but are not part
            of the returned allocation -- used for the globals of the
            non-consistent dual file, which occupy identical registers in
            both subfiles.
    """
    if ii < 1:
        raise AllocationError("II must be >= 1")
    use_masks = kernel.kernels_enabled()
    occupied = BitOccupancy() if use_masks else IntervalSet()
    for placed in fixed:
        if placed.ii != ii:
            raise AllocationError("fixed placements use a different II")
        occupied.add(placed.start, placed.end)
    placements: dict[int, PlacedLifetime] = {}
    for lt in sorted(lts, key=lambda l: (l.start, l.op_id)):
        if lt.op_id in placements:
            raise AllocationError(f"duplicate lifetime for op {lt.op_id}")
        if use_masks:
            shift = _mask_shift(lt.start, lt.end, ii, (occupied,))
        else:
            shift = first_fit_shift(lt, ii, (occupied,))
        placed = PlacedLifetime(lt, shift, ii)
        occupied.add(placed.start, placed.end)
        placements[lt.op_id] = placed
    return AllocationResult(ii, placements)


def first_fit_shift(
    lt: Lifetime, ii: int, occupied_sets: Sequence[IntervalSet]
) -> int:
    """Smallest non-negative shift avoiding every occupied interval set.

    Multi-set queries support the generalized non-consistent file, where a
    value duplicated into several subfiles must take the same register index
    (hence the same shift) in all of them.
    """
    shift = 0
    while True:
        start = lt.start + shift * ii
        end = lt.end + shift * ii
        blocker_end = None
        for occupied in occupied_sets:
            candidate = occupied.overlaps(start, end)
            if candidate is not None and (
                blocker_end is None or candidate > blocker_end
            ):
                blocker_end = candidate
        if blocker_end is None:
            return shift
        # Jump past the furthest blocking interval, not one step at a time.
        shift = max(shift + 1, math.ceil((blocker_end - lt.start) / ii))


__all__ = [
    "AllocationError",
    "AllocationResult",
    "IntervalSet",
    "PlacedLifetime",
    "first_fit",
    "first_fit_shift",
    "registers_required",
    "verify_disjoint",
]
