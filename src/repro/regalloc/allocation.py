"""High-level register allocation entry points for unified register files.

The dual-file allocation (globals + per-cluster locals) lives in
:mod:`repro.core.dualfile`; this module covers the *Unified* model, which also
describes the consistent dual register file (both subfiles hold every value,
so capacity equals a single file's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regalloc.firstfit import (
    AllocationResult,
    first_fit,
    verify_disjoint,
)
from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.regalloc.maxlive import max_live
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class UnifiedAllocation:
    """Unified register file allocation of one schedule."""

    schedule: Schedule
    lifetimes: dict[int, Lifetime]
    result: AllocationResult
    max_live: int

    @property
    def registers_required(self) -> int:
        return self.result.registers_required

    @property
    def ii(self) -> int:
        return self.schedule.ii


def allocate_unified(
    schedule: Schedule, lts: dict[int, Lifetime] | None = None
) -> UnifiedAllocation:
    """Wands-only/first-fit allocation into a single register file.

    ``lts`` lets a caller that already analyzed the schedule (the pass
    pipeline memoizes lifetimes per schedule) skip the recomputation; it
    must be exactly ``lifetimes(schedule)``.
    """
    if lts is None:
        lts = lifetimes(schedule)
    result = first_fit(lts.values(), schedule.ii)
    verify_disjoint(result.placements.values())
    return UnifiedAllocation(
        schedule=schedule,
        lifetimes=lts,
        result=result,
        max_live=max_live(lts.values(), schedule.ii),
    )


__all__ = ["UnifiedAllocation", "allocate_unified"]
