"""Modulo variable expansion: allocation without rotating register files.

The paper's architecture assumes Cydra-5-style *rotating* register files so
that "successive definitions of the same virtual register actually use
distinct physical registers" (Section 4.1).  Machines without that hardware
use Lam's **modulo variable expansion** (MVE) instead: the kernel is
unrolled and each loop variant is given ``q_v = ceil(lifetime / II)``
statically renamed registers, one per concurrently live instance.

This module quantifies what the rotating file buys:

* MVE needs ``sum(q_v)`` registers -- each variant pays the ceiling
  individually -- while wands-only allocation on a rotating file packs
  lifetimes fractionally and approaches MaxLive ``~ sum(lifetime) / II``;
* MVE replicates the kernel ``max(q_v)`` times (or ``lcm`` of all ``q_v``
  for a schedule where every instance gets a fixed name), costing code size
  and instruction-cache pressure the rotating file avoids.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class MveAllocation:
    """Register/code costs of modulo variable expansion for one schedule."""

    schedule: Schedule
    lifetimes: dict[int, Lifetime]
    #: Registers per value: ceil(lifetime / II).
    copies: dict[int, int]

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def registers_required(self) -> int:
        """Total registers: every variant pays its own ceiling."""
        return sum(self.copies.values())

    @property
    def unroll_factor(self) -> int:
        """Minimal unroll with per-copy renaming: max over values of q_v."""
        return max(self.copies.values(), default=1)

    @property
    def unroll_factor_lcm(self) -> int:
        """Unroll for a fully static naming: lcm over values of q_v."""
        result = 1
        for q in self.copies.values():
            result = math.lcm(result, q)
        return result

    @property
    def code_expansion(self) -> int:
        """Kernel operations after unrolling by ``unroll_factor``."""
        return self.unroll_factor * len(self.schedule.graph)


def allocate_mve(schedule: Schedule) -> MveAllocation:
    """Compute the MVE costs of a schedule (no rotating file available)."""
    lts = lifetimes(schedule)
    copies = {
        op_id: max(1, math.ceil(lt.length / schedule.ii))
        for op_id, lt in lts.items()
    }
    return MveAllocation(schedule=schedule, lifetimes=lts, copies=copies)


__all__ = ["MveAllocation", "allocate_mve"]
