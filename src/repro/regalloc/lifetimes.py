"""Lifetime analysis of loop variants.

Per the paper (Section 2): "the register allocator assumed that lifetime of a
value starts when the producer operation is issued, and ends when all the
consumer operations finish" -- the definition required for interruptible,
re-startable code when issued operations always run to completion.

For a value v produced by operation p at time ``t_p`` and consumed by
operations c at time ``t_c`` with dependence distance ``d`` (in iterations):

    start(v) = t_p
    end(v)   = max over consumers of (t_c + d * II + latency(c))

A value with no consumers ends when its producer finishes (it must still be
written to the register file).  Lifetimes are half-open intervals
``[start, end)``; their length for II = 1 equals the per-value register count
of the paper's Table 2 (the example loop sums to 42).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """Half-open live interval of one loop variant."""

    op_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"lifetime of op {self.op_id} must have end > start"
            )

    @property
    def length(self) -> int:
        return self.end - self.start

    def shifted(self, amount: int) -> "Lifetime":
        return Lifetime(self.op_id, self.start + amount, self.end + amount)


def lifetimes(schedule: Schedule) -> dict[int, Lifetime]:
    """Lifetime of every loop variant in a schedule, keyed by producer id."""
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    result: dict[int, Lifetime] = {}
    for op in graph.values():
        start = schedule.time_of(op.op_id)
        end = start + machine.latency_of(op)
        for consumer, distance in graph.consumers(op.op_id):
            finish = (
                schedule.time_of(consumer.op_id)
                + distance * ii
                + machine.latency_of(consumer)
            )
            end = max(end, finish)
        result[op.op_id] = Lifetime(op.op_id, start, end)
    return result


def total_lifetime(lts: dict[int, Lifetime]) -> int:
    """Sum of lifetime lengths (the II=1 unified register requirement)."""
    return sum(lt.length for lt in lts.values())


__all__ = ["Lifetime", "lifetimes", "total_lifetime"]
