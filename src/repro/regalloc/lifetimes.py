"""Lifetime analysis of loop variants.

Per the paper (Section 2): "the register allocator assumed that lifetime of a
value starts when the producer operation is issued, and ends when all the
consumer operations finish" -- the definition required for interruptible,
re-startable code when issued operations always run to completion.

For a value v produced by operation p at time ``t_p`` and consumed by
operations c at time ``t_c`` with dependence distance ``d`` (in iterations):

    start(v) = t_p
    end(v)   = max over consumers of (t_c + d * II + latency(c))

A value with no consumers ends when its producer finishes (it must still be
written to the register file).  Lifetimes are half-open intervals
``[start, end)``; their length for II = 1 equals the per-value register count
of the paper's Table 2 (the example loop sums to 42).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernel
from repro.kernel.lifetimes import lifetime_bounds
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class Lifetime:
    """Half-open live interval of one loop variant."""

    op_id: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"lifetime of op {self.op_id} must have end > start"
            )

    @property
    def length(self) -> int:
        return self.end - self.start

    def shifted(self, amount: int) -> "Lifetime":
        return Lifetime(self.op_id, self.start + amount, self.end + amount)


def lifetimes(schedule: Schedule) -> dict[int, Lifetime]:
    """Lifetime of every loop variant in a schedule, keyed by producer id."""
    if kernel.kernels_enabled():
        arrays = kernel.lower_loop(schedule.graph, schedule.machine)
        times = [schedule.placements[op_id].time for op_id in arrays.ids]
        starts, ends = lifetime_bounds(arrays, times, schedule.ii)
        return {
            arrays.ids[v]: Lifetime(arrays.ids[v], starts[k], ends[k])
            for k, v in enumerate(arrays.values)
        }
    return _lifetimes_scan(schedule)


def _lifetimes_scan(schedule: Schedule) -> dict[int, Lifetime]:
    """The dict-based reference implementation (differential tests)."""
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    result: dict[int, Lifetime] = {}
    for op in graph.values():
        start = schedule.time_of(op.op_id)
        end = start + machine.latency_of(op)
        for consumer, distance in graph.consumers(op.op_id):
            finish = (
                schedule.time_of(consumer.op_id)
                + distance * ii
                + machine.latency_of(consumer)
            )
            end = max(end, finish)
        result[op.op_id] = Lifetime(op.op_id, start, end)
    return result


def total_lifetime(lts: dict[int, Lifetime]) -> int:
    """Sum of lifetime lengths (the II=1 unified register requirement)."""
    return sum(lt.length for lt in lts.values())


__all__ = ["Lifetime", "lifetimes", "total_lifetime"]
