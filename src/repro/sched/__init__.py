"""Modulo scheduling: MII bounds, priorities, IMS, schedule objects."""

from repro.sched.codegen import (
    CodeListing,
    VliwInstruction,
    code_size_comparison,
    emit_replicated,
    emit_rotating,
)
from repro.sched.compact import CompactionResult, compact_schedule
from repro.sched.mii import MiiReport, edge_delay, minimum_ii, rec_mii, res_mii
from repro.sched.modulo import SchedulingFailure, modulo_schedule, schedule_loop
from repro.sched.priority import heights, priority_order
from repro.sched.schedule import Placement, Schedule, ScheduleError

__all__ = [
    "CodeListing",
    "CompactionResult",
    "MiiReport",
    "Placement",
    "Schedule",
    "ScheduleError",
    "SchedulingFailure",
    "VliwInstruction",
    "code_size_comparison",
    "compact_schedule",
    "emit_replicated",
    "emit_rotating",
    "edge_delay",
    "heights",
    "minimum_ii",
    "modulo_schedule",
    "priority_order",
    "rec_mii",
    "res_mii",
    "schedule_loop",
]
