"""Schedule data structures: placements, kernels, cluster assignment.

A modulo schedule assigns every operation an issue *time* (non-negative,
relative to iteration 0) and a concrete functional-unit *instance*.  The
kernel row of an operation is ``time % II`` and its stage is ``time // II``
(paper, Section 4.1: "numbers in brackets represent the stage each operation
comes from").

The unit instance determines the operation's initial *cluster* under the
dual-register-file organizations; the swapping pass of :mod:`repro.core`
produces new :class:`Schedule` objects with instances exchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ir.ddg import DependenceGraph, EdgeKind
from repro.ir.operation import Operation
from repro.machine.config import MachineConfig
from repro.sched.mii import edge_delay


class ScheduleError(ValueError):
    """Raised for invalid schedules."""


@dataclass(frozen=True)
class Placement:
    """Issue slot of one operation."""

    time: int
    pool: str
    instance: int

    def row(self, ii: int) -> int:
        return self.time % ii

    def stage(self, ii: int) -> int:
        return self.time // ii


@dataclass(frozen=True)
class Schedule:
    """An immutable modulo schedule of one loop body.

    Attributes:
        graph: The scheduled dependence graph.
        machine: Target machine.
        ii: Initiation interval.
        placements: op_id -> :class:`Placement`.
    """

    graph: DependenceGraph
    machine: MachineConfig
    ii: int
    placements: dict[int, Placement] = field(hash=False)

    # ------------------------------------------------------------------
    def time_of(self, op_id: int) -> int:
        return self.placements[op_id].time

    def placement(self, op_id: int) -> Placement:
        return self.placements[op_id]

    def cluster_of(self, op_id: int) -> int:
        p = self.placements[op_id]
        return self.machine.cluster_of_instance(p.pool, p.instance)

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages (depth of the software pipeline)."""
        return max(p.stage(self.ii) for p in self.placements.values()) + 1

    @property
    def makespan(self) -> int:
        """Cycles from the first issue to the last issue, plus one."""
        times = [p.time for p in self.placements.values()]
        return max(times) - min(times) + 1

    def kernel_rows(self) -> list[list[Operation]]:
        """Operations grouped by kernel row (time mod II), in time order."""
        rows: list[list[Operation]] = [[] for _ in range(self.ii)]
        for op in self.graph.operations:
            rows[self.placements[op.op_id].row(self.ii)].append(op)
        return rows

    def ops_in_cluster(self, cluster: int) -> list[Operation]:
        return [
            op
            for op in self.graph.operations
            if self.cluster_of(op.op_id) == cluster
        ]

    # ------------------------------------------------------------------
    def with_instances(self, swaps: dict[int, int]) -> "Schedule":
        """A copy with some operations moved to different unit instances.

        ``swaps`` maps op_id -> new instance (same pool, same time); used by
        the swapping pass.  Resource feasibility is re-verified.
        """
        new_placements = dict(self.placements)
        for op_id, instance in swaps.items():
            p = new_placements[op_id]
            if not 0 <= instance < self.machine.units(p.pool):
                raise ScheduleError(
                    f"instance {instance} out of range for pool {p.pool!r}"
                )
            new_placements[op_id] = replace(p, instance=instance)
        sched = Schedule(self.graph, self.machine, self.ii, new_placements)
        sched.verify(check_dependences=False)
        return sched

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify(self, check_dependences: bool = True) -> None:
        """Raise :class:`ScheduleError` on constraint violations.

        Checks that every operation is placed exactly once, that no unit
        instance is oversubscribed in any kernel row, and (optionally) that
        every dependence edge is satisfied:
        ``t(dst) >= t(src) + delay(e) - II * distance(e)``.
        """
        if self.ii < 1:
            raise ScheduleError("II must be >= 1")
        op_ids = {op.op_id for op in self.graph.operations}
        if set(self.placements) != op_ids:
            raise ScheduleError("placements do not cover the graph exactly")
        occupied: dict[tuple[int, str, int], int] = {}
        for op_id, p in self.placements.items():
            if p.time < 0:
                raise ScheduleError(f"op {op_id} scheduled at negative time")
            key = (p.row(self.ii), p.pool, p.instance)
            if key in occupied:
                raise ScheduleError(
                    f"ops {occupied[key]} and {op_id} share unit "
                    f"{p.pool}[{p.instance}] in row {key[0]}"
                )
            if not 0 <= p.instance < self.machine.units(p.pool):
                raise ScheduleError(f"op {op_id}: bad instance {p.instance}")
            if self.machine.pool_for(self.graph.op(op_id)) != p.pool:
                raise ScheduleError(f"op {op_id} placed on wrong pool {p.pool}")
            occupied[key] = op_id
        if check_dependences:
            for edge in self.graph.edges():
                delay = edge_delay(edge, self.graph, self.machine)
                lhs = self.time_of(edge.dst)
                rhs = self.time_of(edge.src) + delay - self.ii * edge.distance
                if lhs < rhs:
                    raise ScheduleError(
                        f"dependence {edge.src}->{edge.dst} violated: "
                        f"t={lhs} < {rhs}"
                    )

    def format_kernel(self) -> str:
        """Human-readable kernel table (one line per row, stage in brackets)."""
        lines = []
        for row_idx, ops in enumerate(self.kernel_rows()):
            cells = [
                f"[{self.placements[op.op_id].stage(self.ii)}] {op.name}"
                f"@{self.placements[op.op_id].pool}"
                f"{self.placements[op.op_id].instance}"
                for op in sorted(ops, key=lambda o: self.placements[o.op_id].time)
            ]
            lines.append(f"row {row_idx}: " + " | ".join(cells))
        return "\n".join(lines)

    def format_kernel_clustered(self) -> str:
        """The paper's Figure 4/5 kernel layout: one line per kernel row,
        one column per (cluster, unit), stage numbers in brackets."""
        columns: list[tuple[int, str, int]] = []
        for cluster in range(self.machine.n_clusters):
            for pool in self.machine.pools:
                for instance in self.machine.instances_in_cluster(
                    pool.name, cluster
                ):
                    columns.append((cluster, pool.name, instance))
        occupancy: dict[tuple[int, str, int], dict[int, str]] = {
            key: {} for key in columns
        }
        for op in self.graph.operations:
            p = self.placements[op.op_id]
            cluster = self.machine.cluster_of_instance(p.pool, p.instance)
            occupancy[(cluster, p.pool, p.instance)][p.row(self.ii)] = (
                f"[{p.stage(self.ii)}] {op.name}"
            )
        headers = [
            f"C{cluster}.{pool}{instance}"
            for cluster, pool, instance in columns
        ]
        width = max(
            [len(h) for h in headers]
            + [
                len(cell)
                for cells in occupancy.values()
                for cell in cells.values()
            ]
        )
        lines = ["  ".join(h.ljust(width) for h in headers)]
        for row in range(self.ii):
            lines.append(
                "  ".join(
                    occupancy[key].get(row, "nop").ljust(width)
                    for key in columns
                )
            )
        return "\n".join(lines)


__all__ = ["Placement", "Schedule", "ScheduleError"]
