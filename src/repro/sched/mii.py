"""Minimum initiation interval: resource bound and recurrence bound.

``MII = max(ResMII, RecMII)`` (Rau & Glaeser [7]).

* **ResMII**: for each resource pool, ceil(uses / units); the maximum over
  pools.  All units are fully pipelined, so each operation occupies one unit
  for one cycle.
* **RecMII**: the smallest II such that no dependence cycle requires more
  latency than ``II * distance`` supplies.  Equivalently, the smallest II for
  which the graph with edge weights ``delay(e) - II * distance(e)`` has no
  positive-weight cycle; found by binary search with a Bellman-Ford-style
  positive-cycle test.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ir.ddg import DependenceGraph, Edge, EdgeKind
from repro.machine.config import MachineConfig


def edge_delay(edge: Edge, graph: DependenceGraph, machine: MachineConfig) -> int:
    """Minimum issue-to-issue delay of a dependence edge.

    Flow edges require the producer's result: delay = producer latency.
    Explicit memory/ordering edges carry their own minimum delay.
    """
    if edge.kind is EdgeKind.FLOW:
        return machine.latency_of(graph.op(edge.src))
    return edge.min_delay if edge.min_delay is not None else 1


def res_mii(graph: DependenceGraph, machine: MachineConfig) -> int:
    """Resource-constrained lower bound on the initiation interval."""
    uses: dict[str, int] = {}
    for op in graph.operations:
        pool = machine.pool_for(op)
        uses[pool] = uses.get(pool, 0) + 1
    if not uses:
        return 1
    return max(
        math.ceil(count / machine.units(pool)) for pool, count in uses.items()
    )


def rec_mii(graph: DependenceGraph, machine: MachineConfig) -> int:
    """Recurrence-constrained lower bound on the initiation interval."""
    edges = [
        (e.src, e.dst, edge_delay(e, graph, machine), e.distance)
        for e in graph.edges()
    ]
    if not any(dist > 0 for *_, dist in edges):
        # Acyclic graph (validation rejects zero-distance cycles): RecMII = 1.
        return 1
    lo, hi = 1, max(1, sum(delay for *_, delay, _ in edges))
    # Invariant: feasible(hi) is True, II below lo may be infeasible.
    if _has_positive_cycle(graph, edges, hi):
        # Pathological: even the largest sensible II fails; grow until it
        # works (cannot loop forever: weights decrease with II).
        while _has_positive_cycle(graph, edges, hi):
            hi *= 2
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(graph, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def _has_positive_cycle(
    graph: DependenceGraph,
    edges: list[tuple[int, int, int, int]],
    ii: int,
) -> bool:
    """Bellman-Ford positive-cycle detection on weights delay - II*distance."""
    dist = {op.op_id: 0 for op in graph.operations}
    n = len(dist)
    for iteration in range(n):
        changed = False
        for src, dst, delay, distance in edges:
            weight = delay - ii * distance
            if dist[src] + weight > dist[dst]:
                dist[dst] = dist[src] + weight
                changed = True
        if not changed:
            return False
    return True


@dataclass(frozen=True)
class MiiReport:
    """Both lower bounds and their maximum."""

    res: int
    rec: int

    @property
    def mii(self) -> int:
        return max(self.res, self.rec)


def minimum_ii(graph: DependenceGraph, machine: MachineConfig) -> MiiReport:
    """Compute ResMII, RecMII and MII for a loop on a machine."""
    return MiiReport(res=res_mii(graph, machine), rec=rec_mii(graph, machine))


__all__ = ["MiiReport", "edge_delay", "minimum_ii", "rec_mii", "res_mii"]
