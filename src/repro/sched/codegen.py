"""Code generation for modulo-scheduled loops.

Section 2 of the paper assumes "architectural support for software pipelined
loops without code replication (such as rotating register files and
predicated execution)".  This module makes that assumption concrete by
emitting the code both ways:

* **rotating + predicated** (:func:`emit_rotating`): one kernel copy, II
  instruction words total -- stage predicates handle pipeline fill and
  drain, the rotating file renames instances;
* **replicated** (:func:`emit_replicated`): what a machine *without* that
  support needs -- an explicit prologue (the pipeline-fill cycles), the
  steady-state kernel unrolled by the modulo-variable-expansion factor so
  every concurrently live instance has a static register name, and an
  explicit epilogue (the drain cycles).

The replicated listing is derived from a flat issue map (operation ``v`` of
iteration ``k`` issues at ``t_v + k*II``), so its sections are checkable:
the kernel region is exactly periodic with period II, and the prologue and
epilogue are the truncated boundary windows of that pattern.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.regalloc.mve import allocate_mve
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class VliwInstruction:
    """One VLIW word: the operations issuing in one cycle."""

    cycle: int
    section: str  # "prologue" | "kernel" | "epilogue"
    slots: tuple[str, ...]  # rendered operations, one per busy unit

    @property
    def is_empty(self) -> bool:
        return not self.slots


@dataclass(frozen=True)
class CodeListing:
    """A complete emitted loop."""

    name: str
    style: str  # "rotating" | "replicated"
    instructions: tuple[VliwInstruction, ...]
    kernel_copies: int

    @property
    def words(self) -> int:
        """Instruction words -- the code-size metric.  Empty cycles count:
        a VLIW must encode its nops."""
        return len(self.instructions)

    def section(self, name: str) -> list[VliwInstruction]:
        return [i for i in self.instructions if i.section == name]

    def render(self) -> str:
        lines = [f"; {self.name} ({self.style})"]
        current = None
        for instr in self.instructions:
            if instr.section != current:
                current = instr.section
                lines.append(f"{current}:")
            body = " | ".join(instr.slots) if instr.slots else "nop"
            lines.append(f"  {instr.cycle:>4}: {body}")
        return "\n".join(lines)


def _slot_text(schedule: Schedule, op_id: int, suffix: str = "") -> str:
    op = schedule.graph.op(op_id)
    p = schedule.placement(op_id)
    stage = p.stage(schedule.ii)
    return f"[{stage}] {op.name}@{p.pool}{p.instance}{suffix}"


def emit_rotating(schedule: Schedule) -> CodeListing:
    """One kernel copy: exactly II instruction words, any pipeline depth."""
    rows: list[list[str]] = [[] for _ in range(schedule.ii)]
    for op in schedule.graph.operations:
        p = schedule.placement(op.op_id)
        rows[p.row(schedule.ii)].append(_slot_text(schedule, op.op_id))
    instructions = tuple(
        VliwInstruction(cycle=row, section="kernel", slots=tuple(sorted(slots)))
        for row, slots in enumerate(rows)
    )
    return CodeListing(
        name=schedule.graph.name,
        style="rotating",
        instructions=instructions,
        kernel_copies=1,
    )


def emit_replicated(schedule: Schedule) -> CodeListing:
    """Explicit prologue + MVE-unrolled kernel + epilogue.

    Built from the flat issue map of ``(stages - 1) + unroll`` iterations:
    cycles before the steady state form the prologue, the next
    ``unroll * II`` cycles form the kernel copies (instances renamed with a
    ``#rN`` suffix, N = iteration mod unroll), and the drain cycles after
    the last started iteration form the epilogue.
    """
    ii = schedule.ii
    stages = schedule.stage_count
    unroll = allocate_mve(schedule).unroll_factor
    n_iterations = (stages - 1) + unroll

    fill = (stages - 1) * ii  # cycles before the steady state
    kernel_end = fill + unroll * ii
    # The kernel region is periodic with period II, so it must span full II
    # windows -- including trailing nop words when the II is bound by
    # recurrences or resources rather than by the last issue slot.
    last_cycle = max(
        kernel_end - 1,
        (n_iterations - 1) * ii
        + max(p.time for p in schedule.placements.values()),
    )

    slots_by_cycle: dict[int, list[str]] = {}
    for op in schedule.graph.operations:
        base = schedule.placement(op.op_id).time
        for k in range(n_iterations):
            cycle = base + k * ii
            suffix = f"#r{k % unroll}"
            slots_by_cycle.setdefault(cycle, []).append(
                _slot_text(schedule, op.op_id, suffix)
            )

    instructions = []
    for cycle in range(last_cycle + 1):
        if cycle < fill:
            section = "prologue"
        elif cycle < kernel_end:
            section = "kernel"
        else:
            section = "epilogue"
        instructions.append(
            VliwInstruction(
                cycle=cycle,
                section=section,
                slots=tuple(sorted(slots_by_cycle.get(cycle, []))),
            )
        )
    return CodeListing(
        name=schedule.graph.name,
        style="replicated",
        instructions=tuple(instructions),
        kernel_copies=unroll,
    )


def code_size_comparison(schedule: Schedule) -> dict[str, int]:
    """Instruction-word counts of both styles (the Section 2 trade-off)."""
    return {
        "rotating": emit_rotating(schedule).words,
        "replicated": emit_replicated(schedule).words,
    }


__all__ = [
    "CodeListing",
    "VliwInstruction",
    "code_size_comparison",
    "emit_replicated",
    "emit_rotating",
]
