"""Pressure-aware schedule compaction (stage-scheduling style post-pass).

The paper's conclusions note that "better scheduling algorithms" could
reduce register requirements further but were left out for compile-time
cost.  This module implements the cheapest useful member of that family, in
the same post-pass spirit as the swapping algorithm:

Each operation has *slack* -- a window of issue times permitted by its
scheduled predecessors, successors and the modulo reservation table.  Moving
a producer later (toward its consumers) shortens its value's lifetime;
moving it earlier can shorten its operands' lifetimes.  The pass greedily
tries every feasible (operation, time) move, re-estimates MaxLive, applies
the best strictly-improving move, and repeats until fixpoint.

This is deliberately estimator-driven, exactly like the paper's swapping
pass, and composes with it: compaction first (it changes issue times),
swapping second (it only exchanges units).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.regalloc.lifetimes import lifetimes
from repro.regalloc.maxlive import max_live
from repro.sched.mii import edge_delay
from repro.sched.schedule import Placement, Schedule


@dataclass(frozen=True)
class CompactionResult:
    """Outcome of the compaction pass."""

    schedule: Schedule
    moves: tuple[tuple[int, int, int], ...]  # (op_id, old_time, new_time)
    max_live_before: int
    max_live_after: int

    @property
    def n_moves(self) -> int:
        return len(self.moves)


def _slack_window(
    schedule: Schedule,
    placements: dict[int, Placement],
    op_id: int,
) -> tuple[int, int]:
    """Feasible issue-time window of one op, all else fixed."""
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    earliest = 0
    latest = placements[op_id].time + 4 * ii  # bounded look-ahead
    for edge in graph.edges():
        delay = edge_delay(edge, graph, machine)
        if edge.dst == op_id and edge.src != op_id:
            earliest = max(
                earliest,
                placements[edge.src].time + delay - ii * edge.distance,
            )
        if edge.src == op_id and edge.dst != op_id:
            latest = min(
                latest,
                placements[edge.dst].time - delay + ii * edge.distance,
            )
    return earliest, latest


def compact_schedule(
    schedule: Schedule, max_steps: int = 200
) -> CompactionResult:
    """Greedily move operations within their slack to reduce MaxLive."""
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    placements = dict(schedule.placements)

    def occupancy() -> dict[tuple[int, str], set[int]]:
        occ: dict[tuple[int, str], set[int]] = {}
        for op_id, p in placements.items():
            occ.setdefault((p.time % ii, p.pool), set()).add(p.instance)
        return occ

    def estimate() -> int:
        trial = Schedule(graph, machine, ii, dict(placements))
        return max_live(lifetimes(trial).values(), ii)

    before = estimate()
    current = before
    moves: list[tuple[int, int, int]] = []

    for _ in range(max_steps):
        occ = occupancy()
        best: tuple[int, int, int] | None = None  # (op_id, time, instance)
        best_value = current
        for op in graph.operations:
            p = placements[op.op_id]
            earliest, latest = _slack_window(schedule, placements, op.op_id)
            if latest < earliest:
                continue
            for time in range(earliest, latest + 1):
                if time == p.time or time < 0:
                    continue
                row = time % ii
                used = occ.get((row, p.pool), set())
                free = [
                    i
                    for i in range(machine.units(p.pool))
                    if i not in used or (i == p.instance and row == p.time % ii)
                ]
                if not free:
                    continue
                instance = p.instance if p.instance in free else free[0]
                old = placements[op.op_id]
                placements[op.op_id] = Placement(time, p.pool, instance)
                value = estimate()
                placements[op.op_id] = old
                if value < best_value:
                    best = (op.op_id, time, instance)
                    best_value = value
        if best is None:
            break
        op_id, time, instance = best
        old_time = placements[op_id].time
        placements[op_id] = replace(
            placements[op_id], time=time, instance=instance
        )
        moves.append((op_id, old_time, time))
        current = best_value

    result = Schedule(graph, machine, ii, placements)
    result.verify()
    return CompactionResult(
        schedule=result,
        moves=tuple(moves),
        max_live_before=before,
        max_live_after=current,
    )


__all__ = ["CompactionResult", "compact_schedule"]
