"""Iterative modulo scheduling (Rau [7], as refined in Rau's IMS).

The scheduler tries successive candidate IIs starting at
``MII = max(ResMII, RecMII)``.  For each II it runs the classic IMS loop:

1. pick the unscheduled operation with the greatest height;
2. compute its earliest start from its *scheduled* predecessors;
3. look for a free slot (modulo reservation table) in the II-wide window
   ``[Estart, Estart + II - 1]``;
4. if none exists, force the operation into a slot, displacing the occupant
   and any successors whose dependences become violated;
5. stop when everything is placed or the operation budget is exhausted
   (then try II + 1).

The modulo reservation table binds each operation to a concrete unit
instance; instance parity defines the operation's initial cluster for the
dual-register-file models (the paper schedules for maximum performance first
and partitions afterwards, Section 5.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro import kernel
from repro.ir.ddg import DependenceGraph
from repro.ir.loop import Loop
from repro.kernel import modulo as kmodulo
from repro.machine.config import MachineConfig
from repro.sched.mii import MiiReport, edge_delay, minimum_ii
from repro.sched.priority import heights
from repro.sched.schedule import Placement, Schedule, ScheduleError


class SchedulingFailure(RuntimeError):
    """No schedule found up to the maximum II."""


@dataclass
class _Slot:
    """Mutable scheduling state of one operation."""

    time: int = -1
    instance: int = -1
    ever_scheduled: bool = False
    last_time: int = -1

    @property
    def scheduled(self) -> bool:
        return self.time >= 0


def modulo_schedule(
    graph: DependenceGraph,
    machine: MachineConfig,
    min_ii: int = 1,
    max_ii: int | None = None,
    budget_factor: int = 16,
) -> Schedule:
    """Modulo-schedule ``graph`` on ``machine`` at the smallest feasible II.

    Args:
        min_ii: Lower bound on the candidate II (used by the spiller's
            rescheduling fallback).
        max_ii: Give up beyond this II (default: a generous bound that any
            list schedule satisfies).
        budget_factor: IMS operation budget per candidate II, as a multiple
            of the number of operations.

    Raises:
        SchedulingFailure: If no II up to ``max_ii`` admits a schedule.
    """
    report = minimum_ii(graph, machine)
    ii = max(report.mii, min_ii)
    if max_ii is None:
        total_delay = sum(
            machine.latency_of(op) for op in graph.operations
        )
        max_ii = max(ii, total_delay + len(graph) + 16)
    arrays = kernel.lower_loop(graph, machine) if kernel.kernels_enabled() else None
    while ii <= max_ii:
        if arrays is not None:
            placements = _materialize(arrays, kmodulo.attempt(arrays, ii, budget_factor))
        else:
            placements = _attempt(graph, machine, ii, budget_factor)
        if placements is not None:
            schedule = Schedule(graph, machine, ii, placements)
            schedule.verify()
            return schedule
        ii += 1
    raise SchedulingFailure(
        f"{graph.name}: no schedule up to II={max_ii} (MII={report.mii})"
    )


def _materialize(
    arrays: "kernel.LoopArrays",
    attempt: tuple[list[int], list[int]] | None,
) -> dict[int, Placement] | None:
    """Lift a successful array attempt back to the boundary dataclasses."""
    if attempt is None:
        return None
    times, instances = attempt
    pool_names = arrays.ma.names
    return {
        op_id: Placement(
            time=times[i],
            pool=pool_names[arrays.pool[i]],
            instance=instances[i],
        )
        for i, op_id in enumerate(arrays.ids)
    }


def schedule_loop(
    loop: Loop, machine: MachineConfig, **kwargs: Any
) -> Schedule:
    """Convenience wrapper of :func:`modulo_schedule` for a :class:`Loop`."""
    return modulo_schedule(loop.graph, machine, **kwargs)


# ----------------------------------------------------------------------
# IMS core
# ----------------------------------------------------------------------
def _attempt(
    graph: DependenceGraph,
    machine: MachineConfig,
    ii: int,
    budget_factor: int,
) -> dict[int, Placement] | None:
    ops = graph.operations
    h = heights(graph, machine, ii)
    in_edges: dict[int, list] = {op.op_id: [] for op in ops}
    out_edges: dict[int, list] = {op.op_id: [] for op in ops}
    for edge in graph.edges():
        delay = edge_delay(edge, graph, machine)
        in_edges[edge.dst].append((edge.src, delay, edge.distance))
        out_edges[edge.src].append((edge.dst, delay, edge.distance))

    slots = {op.op_id: _Slot() for op in ops}
    # mrt[(row, pool)] -> list of op_id or None, one entry per unit instance.
    mrt: dict[tuple[int, str], list[int | None]] = {}
    for pool in machine.pools:
        for row in range(ii):
            mrt[(row, pool.name)] = [None] * pool.count

    unscheduled = {op.op_id for op in ops}
    budget = budget_factor * len(ops)

    def free_instance(row: int, pool: str) -> int | None:
        entries = mrt[(row, pool)]
        for idx, occupant in enumerate(entries):
            if occupant is None:
                return idx
        return None

    def unschedule(op_id: int) -> None:
        slot = slots[op_id]
        pool = machine.pool_for(graph.op(op_id))
        mrt[(slot.time % ii, pool)][slot.instance] = None
        slot.time = -1
        slot.instance = -1
        unscheduled.add(op_id)

    def place(op_id: int, time: int, instance: int) -> None:
        slot = slots[op_id]
        pool = machine.pool_for(graph.op(op_id))
        mrt[(time % ii, pool)][instance] = op_id
        slot.time = time
        slot.instance = instance
        slot.ever_scheduled = True
        slot.last_time = time
        unscheduled.discard(op_id)

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        op_id = min(unscheduled, key=lambda i: (-h[i], i))
        op = graph.op(op_id)
        pool = machine.pool_for(op)

        estart = 0
        for src, delay, distance in in_edges[op_id]:
            src_slot = slots[src]
            if src_slot.scheduled:
                estart = max(estart, src_slot.time + delay - ii * distance)
        estart = max(0, estart)

        # Search the II-wide window for a free slot.
        chosen_time = None
        chosen_instance = None
        for time in range(estart, estart + ii):
            instance = free_instance(time % ii, pool)
            if instance is not None:
                chosen_time = time
                chosen_instance = instance
                break

        if chosen_time is None:
            # Force: never-scheduled ops go at Estart; previously displaced
            # ops move at least one cycle past their previous slot so the
            # search cannot cycle.
            slot = slots[op_id]
            if slot.ever_scheduled and slot.last_time + 1 > estart:
                chosen_time = slot.last_time + 1
            else:
                chosen_time = estart
            row = chosen_time % ii
            entries = mrt[(row, pool)]
            # Displace the lowest-height occupant of the needed pool.
            victim_idx = min(
                range(len(entries)),
                key=lambda idx: (h[entries[idx]], -entries[idx]),
            )
            unschedule(entries[victim_idx])
            chosen_instance = victim_idx

        place(op_id, chosen_time, chosen_instance)

        # Displace scheduled successors whose dependences are now violated.
        for dst, delay, distance in out_edges[op_id]:
            dst_slot = slots[dst]
            if dst == op_id or not dst_slot.scheduled:
                continue
            if dst_slot.time < chosen_time + delay - ii * distance:
                unschedule(dst)

    return {
        op.op_id: Placement(
            time=slots[op.op_id].time,
            pool=machine.pool_for(op),
            instance=slots[op.op_id].instance,
        )
        for op in ops
    }


__all__ = ["SchedulingFailure", "modulo_schedule", "schedule_loop"]
