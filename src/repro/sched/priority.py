"""Scheduling priorities for iterative modulo scheduling.

Rau's IMS schedules operations in order of decreasing *height*: the length of
the longest (latency-weighted, II-adjusted) path from the operation to any
sink of the graph.  With loop-carried edges the height function is the
fixpoint of

    H(v) = max(0, max over edges v->w of H(w) + delay(e) - II * distance(e))

which converges whenever II >= RecMII (no positive cycles).  We compute it
with Bellman-Ford-style relaxation.
"""

from __future__ import annotations

from repro.ir.ddg import DependenceGraph
from repro.machine.config import MachineConfig
from repro.sched.mii import edge_delay


def heights(
    graph: DependenceGraph, machine: MachineConfig, ii: int
) -> dict[int, int]:
    """Height-based priority of every operation for a candidate II."""
    h = {op.op_id: 0 for op in graph.operations}
    edges = [
        (e.src, e.dst, edge_delay(e, graph, machine) - ii * e.distance)
        for e in graph.edges()
    ]
    n = len(h)
    for _ in range(n + 1):
        changed = False
        for src, dst, weight in edges:
            candidate = h[dst] + weight
            if candidate > h[src]:
                h[src] = candidate
                changed = True
        if not changed:
            break
    else:
        # Positive cycle: the caller passed II < RecMII.
        raise ValueError(f"heights diverge: II={ii} below the recurrence bound")
    return h


def priority_order(
    graph: DependenceGraph, machine: MachineConfig, ii: int
) -> list[int]:
    """Operation ids sorted by decreasing height (ties by id, deterministic)."""
    h = heights(graph, machine, ii)
    return sorted(h, key=lambda op_id: (-h[op_id], op_id))


__all__ = ["heights", "priority_order"]
