"""``python -m repro serve`` -- the facade over a socket, many clients.

A stdlib :class:`~http.server.ThreadingHTTPServer` front-end: every
request thread dispatches through **one shared**
:class:`~repro.api.session.Session`, so concurrent clients share the
result cache and the engine's worker pool -- the second client asking for
an already-evaluated point gets a cache hit, not a recomputation.

Wire protocol (HTTP/JSON; see ``docs/api.md``):

* ``POST /v1/{schedule,pressure,evaluate,sweep,experiment,report}`` --
  body is the request's ``to_dict()`` form; the path names the type, so
  the ``type`` tag is optional in the body.
* ``GET /v1/health`` -- liveness plus live session counters (cache
  hits/misses, jobs run).
* ``GET /v1/experiments`` / ``GET /v1/capabilities`` -- discovery: the
  experiment registry with parameter schemas, and every name a request
  may use.
* ``POST /v1/shutdown`` -- graceful stop: in-flight requests finish, the
  process exits 0.

Every response is an envelope: ``{"ok": true, "result": {...}}`` on
success, ``{"ok": false, "error": {"type", "message", "status"}}`` on
failure, with the HTTP status matching the error's.  Unknown schema
versions, unknown fields, and malformed JSON are all 400s with a
diagnosable message -- never a stack trace on the socket.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import urlsplit

from repro.api.registry import capabilities, list_experiments
from repro.api.session import Session
from repro.api.types import (
    API_SCHEMA_VERSION,
    ApiError,
    REQUEST_TYPES,
    RequestValidationError,
)

#: Cap on request bodies; a typed request is tiny, so anything bigger is
#: either a mistake or abuse and dies before being buffered.
MAX_BODY_BYTES = 1 << 20


class ReproServer(ThreadingHTTPServer):
    """One shared session behind a thread-per-request HTTP server.

    Handler threads are non-daemon and joined by ``server_close()``
    (``block_on_close``), so a graceful shutdown really does let
    in-flight requests finish before the session (and its worker pool)
    is torn down; the per-connection socket timeout on the handler
    bounds how long an idle keep-alive connection can delay that join.
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(self, address, session: Session, quiet: bool = True):
        self.session = session
        self.quiet = quiet
        super().__init__(address, _Handler)

    @property
    def port(self) -> int:
        return self.server_address[1]

    def handle_error(self, request, client_address):
        """Swallow benign client disconnects; report real faults."""
        import sys as _sys

        exc = _sys.exc_info()[1]
        if isinstance(
            exc, (BrokenPipeError, ConnectionResetError, TimeoutError)
        ):
            return  # the client went away mid-exchange; not our fault
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection, or a client that
    #: declared more body than it sends, releases its thread in bounded
    #: time instead of hanging it forever.
    timeout = 30
    server: ReproServer  # narrowed for type checkers

    # ------------------------------------------------------------------
    # Envelope plumbing
    # ------------------------------------------------------------------
    def _send(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _ok(self, result) -> None:
        self._send(200, {"ok": True, "result": result})

    def _fail(self, status: int, error_type: str, message: str) -> None:
        self._send(
            status,
            {
                "ok": False,
                "error": {
                    "type": error_type,
                    "message": message,
                    "status": status,
                },
            },
        )

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = urlsplit(self.path).path
        if path in ("/v1/health", "/health"):
            self._ok(
                {
                    "status": "serving",
                    "schema_version": API_SCHEMA_VERSION,
                    **self.server.session.stats(),
                }
            )
        elif path == "/v1/experiments":
            self._ok([e.describe() for e in list_experiments()])
        elif path == "/v1/capabilities":
            self._ok(capabilities())
        else:
            self._fail(404, "NotFound", f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        path = urlsplit(self.path).path
        if path == "/v1/shutdown":
            self._ok({"status": "shutting down"})
            # shutdown() joins the serve loop; calling it from a handler
            # thread is safe, from the loop's own thread it would deadlock.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        op = path.removeprefix("/v1/")
        if "/v1/" + op != path or op not in REQUEST_TYPES:
            self._fail(
                404,
                "NotFound",
                f"no route for POST {path} "
                f"(operations: {', '.join(sorted(REQUEST_TYPES))})",
            )
            return
        try:
            body = self._read_body()
            request = REQUEST_TYPES[op].from_dict(body)
            if getattr(request, "out_dir", None) is not None:
                # A network peer must not get a write-anywhere primitive
                # with the server's privileges; artifacts travel in-band.
                raise RequestValidationError(
                    "out_dir is not accepted over the wire; set "
                    "include_text=true and write the artifact client-side"
                )
            response = self.server.session.submit(request)
        except ApiError as exc:
            self._fail(exc.status, type(exc).__name__, str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - envelope, never a trace
            self._fail(500, type(exc).__name__, str(exc))
            return
        self._ok(response.to_dict())

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise RequestValidationError("bad Content-Length header")
        if length < 0:
            # rfile.read(-N) would mean read-to-EOF and hang the thread
            # on a connection the client keeps open.
            raise RequestValidationError("negative Content-Length header")
        if length > MAX_BODY_BYTES:
            # Drain (boundedly) so the 400 reaches a client still writing,
            # then drop the connection rather than resync mid-stream.
            self.close_connection = True
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise RequestValidationError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise RequestValidationError(f"request body is not JSON: {exc}")
        if not isinstance(data, dict):
            raise RequestValidationError("request body must be an object")
        return data


def run_server(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | None = None,
    quiet: bool = True,
) -> int:
    """Serve until shut down (signal or ``POST /v1/shutdown``); returns 0.

    ``port=0`` binds an ephemeral port; ``port_file`` (written after the
    bind, removed on exit) lets scripts discover it without parsing
    stdout.
    """
    server = ReproServer((host, port), session, quiet=quiet)

    def _graceful(signum, frame):  # pragma: no cover - signal path
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:  # signals exist only in the main thread; tests run in others
        previous = signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # pragma: no cover - non-main thread
        previous = None
    if port_file:
        Path(port_file).write_text(str(server.port), encoding="utf-8")
    print(
        f"repro serve: listening on http://{host}:{server.port} "
        f"(schema v{API_SCHEMA_VERSION}; POST /v1/shutdown or Ctrl+C "
        f"to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        session.close()
        if previous is not None:  # pragma: no branch
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        if port_file:
            Path(port_file).unlink(missing_ok=True)
    print("repro serve: shut down cleanly", flush=True)
    return 0


__all__ = ["MAX_BODY_BYTES", "ReproServer", "run_server"]
