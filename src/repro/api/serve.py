"""``python -m repro serve`` -- the facade over a socket, many clients.

Two topologies behind one wire protocol:

* **Single process** (``--workers 0``, the default): a stdlib
  :class:`~http.server.ThreadingHTTPServer` whose request threads share
  one :class:`~repro.api.session.Session` -- the PR 5 front-end,
  unchanged semantics, good for development and tests.
* **Scale-out** (``--workers N``): a supervisor binds the listening
  socket once and forks N *shard* processes that accept from it
  concurrently (the kernel load-balances connections across acceptors;
  on platforms without ``fork`` each shard rebinds the port with
  ``SO_REUSEPORT``).  Every shard owns a private session/engine but all
  of them mount the **same on-disk result cache**
  (:mod:`repro.engine.cache`'s shared backend), so a point evaluated by
  any shard -- or by any earlier run -- is a cache hit for all of them.
  Shards additionally *coalesce* concurrently-arriving requests into
  single engine batches (:class:`repro.api.dispatch.BatchDispatcher`),
  which lets the engine's grid batching work across HTTP requests.

Wire protocol (HTTP/JSON; see ``docs/api.md``):

* ``POST /v1/{schedule,pressure,evaluate,sweep,experiment,validate,report}``
  -- body is the request's ``to_dict()`` form; the path names the type,
  so the ``type`` tag is optional in the body.
* ``POST /v1/sweep?stream=1`` -- chunked newline-delimited JSON: one
  ``point`` event per finished grid point (bursting per loop group under
  the batch tier), then one ``result`` event carrying the full sweep
  response.
* ``GET /v1/health`` -- liveness plus live session counters, this
  worker's queue depth, the shared disk cache's size, the pool
  configuration, and (scale-out) per-worker heartbeats.
* ``GET /v1/experiments`` / ``GET /v1/capabilities`` -- discovery.
* ``POST /v1/shutdown`` -- graceful stop; in scale-out mode the
  receiving shard exits 0 and the supervisor winds down the rest.

Every response is an envelope: ``{"ok": true, "result": {...}}`` on
success, ``{"ok": false, "error": {"type", "message", "status"}}`` on
failure, with the HTTP status matching the error's.  Unknown schema
versions, unknown fields, and malformed JSON are 400s; an oversized body
is a 413; a saturated worker (in-flight bound hit or token bucket empty)
is a 429 with a ``Retry-After`` header -- never a stack trace on the
socket.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import socket
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from repro.api.dispatch import BatchDispatcher, InflightGate, TokenBucket
from repro.api.registry import capabilities, list_experiments
from repro.api.session import Session
from repro.api.types import (
    API_SCHEMA_VERSION,
    ApiError,
    PayloadTooLargeError,
    REQUEST_TYPES,
    RequestValidationError,
    ServerSaturatedError,
    SweepRequest,
)

#: Cap on request bodies; a typed request is tiny, so anything bigger is
#: either a mistake or abuse and dies (as HTTP 413) before being buffered.
MAX_BODY_BYTES = 1 << 20

#: Default bound on concurrently admitted requests per worker process.
DEFAULT_MAX_INFLIGHT = 64


@dataclass
class ServeConfig:
    """Everything ``repro serve`` can be told, in one picklable bundle.

    ``workers=0`` serves single-process; ``workers>=1`` runs that many
    shard processes.  ``engine_workers`` sizes each session's *compute*
    pool (default 0: shards are the parallelism).  ``cache_dir=None``
    keeps results in memory only -- in scale-out mode that forfeits
    cross-shard sharing, so the CLI always passes a directory unless
    ``--no-cache`` was explicit.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    engine_workers: int = 0
    cache_dir: str | None = None
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    rate_limit: float = 0.0  # requests/second; 0 disables
    burst: float | None = None
    linger: float = 0.002  # batch-coalescing window, seconds
    coalesce: bool | None = None  # None: on for shards, off single-process
    port_file: str | None = None
    quiet: bool = True

    def pool_info(self) -> dict:
        """The health endpoint's ``pool`` section."""
        return {
            "shards": self.workers,
            "engine_workers": self.engine_workers,
            "max_inflight": self.max_inflight,
            "rate_limit": self.rate_limit,
            "burst": self.burst,
            "coalesce": bool(
                self.coalesce if self.coalesce is not None else self.workers
            ),
        }


class WorkerHeartbeat:
    """One shard's liveness record: an atomically-replaced JSON file.

    Heartbeats are the scale-out health primitive: every shard keeps
    ``<state_dir>/worker-<i>.json`` fresh (throttled to at most one
    write per ``interval``), and any shard's ``/v1/health`` folds the
    whole directory into a per-worker liveness table -- no shared memory,
    no extra sockets, works across fork and respawn.
    """

    def __init__(
        self, state_dir: Path, index: int, interval: float = 0.5
    ) -> None:
        self.state_dir = Path(state_dir)
        self.index = index
        self.interval = interval
        self.started = time.time()
        self.served = 0
        self._last_write = 0.0
        self._lock = threading.Lock()

    @property
    def path(self) -> Path:
        return self.state_dir / f"worker-{self.index}.json"

    def beat(
        self, inflight: int = 0, queue_depth: int = 0, force: bool = False
    ) -> None:
        """Refresh the heartbeat file (throttled unless ``force``)."""
        now = time.time()
        with self._lock:
            if not force and now - self._last_write < self.interval:
                return
            self._last_write = now
        payload = json.dumps(
            {
                "index": self.index,
                "pid": os.getpid(),
                "started": self.started,
                "served": self.served,
                "inflight": inflight,
                "queue_depth": queue_depth,
                "updated": now,
            }
        )
        tmp = self.path.with_name(f".tmp-{self.path.name}-{os.getpid()}")
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            tmp.write_text(payload, encoding="utf-8")
            os.replace(tmp, self.path)
        except OSError:  # heartbeats must never take a request down
            tmp.unlink(missing_ok=True)

    @staticmethod
    def read_all(state_dir: Path) -> list[dict]:
        """Every worker's last heartbeat, with a live-pid check folded in."""
        workers = []
        state_dir = Path(state_dir)
        if not state_dir.is_dir():
            return workers
        for path in sorted(state_dir.glob("worker-*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue  # mid-replace or torn: skip this poll
            pid = data.get("pid")
            try:
                os.kill(int(pid), 0)
                data["alive"] = True
            except (OSError, TypeError, ValueError):
                data["alive"] = False
            workers.append(data)
        return workers


class ReproServer(ThreadingHTTPServer):
    """One shared session behind a thread-per-request HTTP server.

    Handler threads are non-daemon and joined by ``server_close()``
    (``block_on_close``), so a graceful shutdown really does let
    in-flight requests finish before the session (and its worker pool)
    is torn down; the per-connection socket timeout on the handler
    bounds how long an idle keep-alive connection can delay that join.

    ``sock`` lends an already-listening socket (the scale-out
    supervisor's, inherited across ``fork``); the server then skips its
    own bind/activate.  ``allow_reuse_port`` is enabled when shards must
    rebind the port themselves (non-fork platforms).
    """

    daemon_threads = False
    block_on_close = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        session: Session,
        quiet: bool = True,
        config: ServeConfig | None = None,
        worker_index: int = 0,
        state_dir: str | Path | None = None,
        sock: socket.socket | None = None,
    ) -> None:
        self.session = session
        self.quiet = quiet
        self.config = config if config is not None else ServeConfig(
            host=address[0], port=address[1], quiet=quiet
        )
        self.worker_index = worker_index
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.gate = InflightGate(self.config.max_inflight)
        self.bucket = TokenBucket(
            self.config.rate_limit, burst=self.config.burst
        )
        self.heartbeat = (
            WorkerHeartbeat(self.state_dir, worker_index)
            if self.state_dir is not None
            else None
        )
        if sock is None:
            super().__init__(address, _Handler)
        else:
            super().__init__(address, _Handler, bind_and_activate=False)
            self.socket.close()  # the unbound one the base class made
            self.socket = sock
            self.server_address = sock.getsockname()
            host, port = self.server_address[:2]
            self.server_name = host
            self.server_port = port

    @property
    def port(self) -> int:
        return self.server_address[1]

    def handle_error(self, request: object, client_address: object) -> None:
        """Swallow benign client disconnects; report real faults."""
        import sys as _sys

        exc = _sys.exc_info()[1]
        if isinstance(
            exc, (BrokenPipeError, ConnectionResetError, TimeoutError)
        ):
            return  # the client went away mid-exchange; not our fault
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    #: Socket timeout: an idle keep-alive connection, or a client that
    #: declared more body than it sends, releases its thread in bounded
    #: time instead of hanging it forever.
    timeout = 30
    server: ReproServer  # narrowed for type checkers

    # ------------------------------------------------------------------
    # Envelope plumbing
    # ------------------------------------------------------------------
    def _send(
        self, status: int, payload: dict, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _ok(self, result: object) -> None:
        self._send(200, {"ok": True, "result": result})

    def _fail(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: dict | None = None,
    ) -> None:
        self._send(
            status,
            {
                "ok": False,
                "error": {
                    "type": error_type,
                    "message": message,
                    "status": status,
                },
            },
            headers=headers,
        )

    def _fail_exc(self, exc: Exception) -> None:
        if isinstance(exc, ServerSaturatedError):
            retry = max(exc.retry_after, 0.0)
            self._fail(
                exc.status,
                type(exc).__name__,
                str(exc),
                # ceil to a whole second: Retry-After is integer-valued.
                headers={"Retry-After": str(max(1, int(retry + 0.999)))},
            )
        elif isinstance(exc, ApiError):
            self._fail(exc.status, type(exc).__name__, str(exc))
        else:
            self._fail(500, type(exc).__name__, str(exc))

    def log_message(
        self, format: str, *args: object
    ) -> None:  # noqa: A002 - stdlib signature
        if not self.server.quiet:  # pragma: no cover - debugging aid
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Streaming plumbing (chunked transfer encoding, ndjson lines)
    # ------------------------------------------------------------------
    def _stream_start(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()

    def _stream_line(self, obj: dict) -> None:
        data = (json.dumps(obj) + "\n").encode("utf-8")
        self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _stream_end(self) -> None:
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def _health(self) -> dict:
        server = self.server
        session = server.session
        dispatcher = session.dispatcher
        payload = {
            "status": "serving",
            "schema_version": API_SCHEMA_VERSION,
            **session.stats(),
            "worker": {
                "index": server.worker_index,
                "pid": os.getpid(),
                "inflight": server.gate.depth,
                "queue_depth": (
                    dispatcher.queue_depth if dispatcher is not None else 0
                ),
            },
            "pool": server.config.pool_info(),
        }
        cache = session.engine.cache
        payload["disk_cache"] = (
            cache.disk_usage()
            if cache is not None and cache.directory is not None
            else None
        )
        if server.state_dir is not None:
            if server.heartbeat is not None:
                server.heartbeat.beat(
                    inflight=server.gate.depth,
                    queue_depth=payload["worker"]["queue_depth"],
                    force=True,
                )
            payload["workers"] = WorkerHeartbeat.read_all(server.state_dir)
        return payload

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        path = urlsplit(self.path).path
        if path in ("/v1/health", "/health"):
            self._ok(self._health())
        elif path == "/v1/experiments":
            self._ok([e.describe() for e in list_experiments()])
        elif path == "/v1/capabilities":
            self._ok(capabilities())
        else:
            self._fail(404, "NotFound", f"no route for GET {path}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        split = urlsplit(self.path)
        path = split.path
        if path == "/v1/shutdown":
            self._ok({"status": "shutting down"})
            # shutdown() joins the serve loop; calling it from a handler
            # thread is safe, from the loop's own thread it would deadlock.
            threading.Thread(
                target=self.server.shutdown, daemon=True
            ).start()
            return
        op = path.removeprefix("/v1/")
        if "/v1/" + op != path or op not in REQUEST_TYPES:
            self._fail(
                404,
                "NotFound",
                f"no route for POST {path} "
                f"(operations: {', '.join(sorted(REQUEST_TYPES))})",
            )
            return
        stream = (
            op == "sweep"
            and parse_qs(split.query).get("stream", ["0"])[-1] == "1"
        )
        try:
            # The body must leave the socket before a refusal, or its
            # leftover bytes would corrupt the next keep-alive request;
            # it is bounded (MAX_BODY_BYTES), so admission control right
            # after the read still sheds all meaningful load.
            body = self._read_body()
            wait = self.server.bucket.try_acquire()
            if wait > 0:
                raise ServerSaturatedError(
                    f"rate limit of {self.server.bucket.rate:.6g} "
                    f"request(s)/second exceeded",
                    retry_after=wait,
                )
            with self.server.gate:
                request = REQUEST_TYPES[op].from_dict(body)
                if getattr(request, "out_dir", None) is not None:
                    # A network peer must not get a write-anywhere
                    # primitive with the server's privileges; artifacts
                    # travel in-band.
                    raise RequestValidationError(
                        "out_dir is not accepted over the wire; set "
                        "include_text=true and write the artifact "
                        "client-side"
                    )
                if stream:
                    self._stream_sweep(request)
                    return
                response = self.server.session.submit(request)
        except Exception as exc:  # noqa: BLE001 - envelope, never a trace
            self._fail_exc(exc)
            return
        finally:
            if self.server.heartbeat is not None:
                self.server.heartbeat.served += 1
                self.server.heartbeat.beat(
                    inflight=self.server.gate.depth,
                    queue_depth=(
                        self.server.session.dispatcher.queue_depth
                        if self.server.session.dispatcher is not None
                        else 0
                    ),
                )
        self._ok(response.to_dict())

    def _stream_sweep(self, request: SweepRequest) -> None:
        """Chunked ndjson sweep: point events, then the result envelope.

        The response status must be committed before the sweep starts,
        so mid-flight failures travel as an ``error`` event on the
        stream (same envelope shape, ``ok`` false) rather than an HTTP
        status.  A client that disconnects mid-stream stops receiving;
        the sweep itself runs to completion and lands in the shared
        cache (engine jobs are not cancellable).
        """
        events = self.server.session.sweep_stream(request)
        self._stream_start()
        try:
            for event in events:
                if event["event"] == "error":
                    self._stream_line({"ok": False, **event})
                else:
                    self._stream_line({"ok": True, **event})
        finally:
            self._stream_end()

    def _read_body(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise RequestValidationError("bad Content-Length header")
        if length < 0:
            # rfile.read(-N) would mean read-to-EOF and hang the thread
            # on a connection the client keeps open.
            raise RequestValidationError("negative Content-Length header")
        if length > MAX_BODY_BYTES:
            # Drain (boundedly) so the 413 reaches a client still writing,
            # then drop the connection rather than resync mid-stream.
            self.close_connection = True
            remaining = min(length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            data = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise RequestValidationError(f"request body is not JSON: {exc}")
        if not isinstance(data, dict):
            raise RequestValidationError("request body must be an object")
        return data


# ----------------------------------------------------------------------
# Single-process serving
# ----------------------------------------------------------------------
def _graceful_signals(server: "ReproServer") -> object | None:
    def _graceful(signum: int, frame: object) -> None:  # pragma: no cover
        threading.Thread(target=server.shutdown, daemon=True).start()

    try:  # signals exist only in the main thread; tests run in others
        return signal.signal(signal.SIGTERM, _graceful)
    except ValueError:  # pragma: no cover - non-main thread
        return None


def run_server(
    session: Session,
    host: str = "127.0.0.1",
    port: int = 0,
    port_file: str | None = None,
    quiet: bool = True,
    config: ServeConfig | None = None,
) -> int:
    """Serve single-process until shut down; returns 0.

    ``port=0`` binds an ephemeral port; ``port_file`` (written after the
    bind, removed on exit) lets scripts discover it without parsing
    stdout.  ``config`` carries the admission-control knobs; when absent
    the defaults apply (no rate limit, 64 in-flight).
    """
    if config is None:
        config = ServeConfig(
            host=host, port=port, port_file=port_file, quiet=quiet
        )
    server = ReproServer((host, port), session, quiet=quiet, config=config)
    if config.coalesce:
        session.dispatcher = BatchDispatcher(session, linger=config.linger)
    previous = _graceful_signals(server)
    if port_file:
        Path(port_file).write_text(str(server.port), encoding="utf-8")
    print(
        f"repro serve: listening on http://{host}:{server.port} "
        f"(schema v{API_SCHEMA_VERSION}; POST /v1/shutdown or Ctrl+C "
        f"to stop)",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        server.server_close()
        session.close()
        if previous is not None:  # pragma: no branch
            try:
                signal.signal(signal.SIGTERM, previous)
            except ValueError:  # pragma: no cover - non-main thread
                pass
        if port_file:
            Path(port_file).unlink(missing_ok=True)
    print("repro serve: shut down cleanly", flush=True)
    return 0


# ----------------------------------------------------------------------
# Scale-out serving: supervisor + shard processes
# ----------------------------------------------------------------------
def _shard_main(
    config: ServeConfig,
    index: int,
    state_dir: str,
    sock: socket.socket | None,
    port: int,
) -> None:
    """One shard: private session + dispatcher over the shared cache.

    Runs in a child process.  ``sock`` is the supervisor's listening
    socket (fork platforms); otherwise the shard rebinds ``port`` with
    ``SO_REUSEPORT``.  Exits 0 on graceful shutdown (signal or
    ``POST /v1/shutdown``).
    """
    from repro.engine.cache import ResultCache
    from repro.engine.pool import Engine

    engine = Engine(
        workers=config.engine_workers,
        cache=ResultCache(directory=config.cache_dir),
    )
    session = Session(engine=engine)
    coalesce = config.coalesce if config.coalesce is not None else True
    if coalesce:
        session.dispatcher = BatchDispatcher(session, linger=config.linger)
    if sock is None:
        # Non-fork platform: every shard binds the same concrete port.
        ReproServer.allow_reuse_port = True  # picked up by server_bind
    server = ReproServer(
        (config.host, port),
        session,
        quiet=config.quiet,
        config=config,
        worker_index=index,
        state_dir=state_dir,
        sock=sock,
    )

    def _graceful(signum: int, frame: object) -> None:  # pragma: no cover
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGTERM, _graceful)
    signal.signal(signal.SIGINT, _graceful)
    server.heartbeat.beat(force=True)
    try:
        server.serve_forever()
    finally:
        server.server_close()
        session.close()
        server.heartbeat.beat(force=True)


def run_sharded(config: ServeConfig) -> int:
    """Supervise ``config.workers`` shard processes; returns 0.

    The supervisor binds (and listens on) the socket once, forks the
    shards, then only watches: a shard that exits 0 asked for shutdown
    (``POST /v1/shutdown``), so the rest are wound down too; a shard
    that dies any other way is respawned.  Three consecutive deaths
    within a second of (re)spawn are a crash loop -- a configuration
    problem respawn cannot fix -- so the supervisor winds everything
    down and exits non-zero instead of flapping forever.
    """
    import tempfile

    can_fork = multiprocessing.get_start_method(allow_none=False) == "fork"
    if not can_fork and not hasattr(socket, "SO_REUSEPORT"):
        raise RuntimeError(
            "scale-out serve needs fork or SO_REUSEPORT; "
            "run with --workers 0 on this platform"
        )
    listener = socket.create_server(
        (config.host, config.port), backlog=256, reuse_port=not can_fork
    )
    port = listener.getsockname()[1]
    state_dir = tempfile.mkdtemp(prefix="repro-serve-")
    shard_sock = listener if can_fork else None

    def spawn(index: int) -> multiprocessing.Process:
        process = multiprocessing.Process(
            target=_shard_main,
            args=(config, index, state_dir, shard_sock, port),
            name=f"repro-serve-shard-{index}",
        )
        process.start()
        return process

    shards = {i: (spawn(i), time.monotonic()) for i in range(config.workers)}
    if not can_fork:
        # The supervisor's socket was only there to resolve the port and
        # hold it while shards bind; once they are up it must leave the
        # reuseport group or it would swallow its share of connections.
        time.sleep(0.2)
        listener.close()
    if config.port_file:
        Path(config.port_file).write_text(str(port), encoding="utf-8")
    print(
        f"repro serve: listening on http://{config.host}:{port} "
        f"with {config.workers} worker process(es) "
        f"(schema v{API_SCHEMA_VERSION}; POST /v1/shutdown or Ctrl+C "
        f"to stop)",
        flush=True,
    )

    stop = threading.Event()
    gave_up = False
    quick_deaths = {index: 0 for index in shards}

    def _stop_signal(signum: int, frame: object) -> None:  # pragma: no cover
        stop.set()

    previous_term = signal.signal(signal.SIGTERM, _stop_signal)
    try:
        while not stop.is_set():
            for index, (process, started) in list(shards.items()):
                if process.is_alive():
                    continue
                if process.exitcode == 0:
                    # Graceful shutdown requested through this shard.
                    stop.set()
                    break
                if time.monotonic() - started < 1.0:
                    quick_deaths[index] += 1
                else:
                    quick_deaths[index] = 0
                if quick_deaths[index] >= 3:
                    print(
                        f"repro serve: worker {index} keeps dying on "
                        f"startup (exit {process.exitcode}); giving up",
                        flush=True,
                    )
                    gave_up = True
                    stop.set()
                    break
                print(
                    f"repro serve: worker {index} died "
                    f"(exit {process.exitcode}); respawning",
                    flush=True,
                )
                shards[index] = (spawn(index), time.monotonic())
            stop.wait(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        for process, _started in shards.values():
            if process.is_alive():
                process.terminate()  # SIGTERM -> graceful in-shard
        deadline = time.monotonic() + 10
        for process, _started in shards.values():
            process.join(timeout=max(0.1, deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - wedged shard
                process.kill()
                process.join(timeout=5)
        if can_fork:
            listener.close()
        signal.signal(signal.SIGTERM, previous_term)
        if config.port_file:
            Path(config.port_file).unlink(missing_ok=True)
        for path in Path(state_dir).glob("*"):
            path.unlink(missing_ok=True)
        try:
            os.rmdir(state_dir)
        except OSError:  # pragma: no cover - something still writing
            pass
    if gave_up:
        print("repro serve: shut down after a worker crash loop", flush=True)
        return 1
    print("repro serve: shut down cleanly", flush=True)
    return 0


def serve(config: ServeConfig) -> int:
    """Entry point the CLI calls: route on the topology."""
    if config.workers >= 1:
        return run_sharded(config)
    from repro.engine.cache import ResultCache
    from repro.engine.pool import Engine

    session = Session(
        engine=Engine(
            workers=config.engine_workers,
            cache=ResultCache(directory=config.cache_dir),
        )
    )
    return run_server(
        session,
        host=config.host,
        port=config.port,
        port_file=config.port_file,
        quiet=config.quiet,
        config=config,
    )


__all__ = [
    "DEFAULT_MAX_INFLIGHT",
    "MAX_BODY_BYTES",
    "ReproServer",
    "ServeConfig",
    "WorkerHeartbeat",
    "run_server",
    "run_sharded",
    "serve",
]
