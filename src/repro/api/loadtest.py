"""Load generation for the serve front-end, shared by bench and CI.

Three pieces, reused by ``python -m repro bench`` (the ``serve_single`` /
``serve_throughput`` scenarios behind the gated ``serve_scaleout``
ratio), by ``benchmarks/bench_serve.py`` (the standalone load harness),
and by the CI smoke step:

* :func:`build_workload` -- deterministic request bodies off the bench
  grid (:func:`repro.bench.bench_grid`'s loops x models x budgets), in
  loop-major order so concurrently in-flight requests tend to share a
  loop and coalesce under the shard dispatcher's grid batching.
* :class:`ServerProcess` -- spawn ``python -m repro serve`` as a
  subprocess, wait for the port file, shut it down cleanly (and verify
  it *was* clean).
* :func:`run_load` -- hammer a URL with N persistent-connection client
  threads sharing one work iterator; collects latency quantiles,
  throughput, cache-hit counts, and honors 429 ``Retry-After``.

Everything here is stdlib-only (``http.client``, ``threading``,
``subprocess``); the harness must not be heavier than the server.
"""

from __future__ import annotations

import http.client
import json
import os
import random
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path

#: Workload shapes :func:`build_workload` knows how to lay out.
WORKLOADS = ("cold", "warm", "mixed")


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
    return ordered[rank]


def build_workload(
    kind: str = "cold", n_loops: int = 8, latency: int | None = None
) -> list[dict]:
    """Request bodies for ``POST /v1/evaluate`` off the bench grid.

    ``cold``: every grid point once -- all misses on a fresh cache.
    ``warm``: the same bodies (run it against a primed server: all hits).
    ``mixed``: two copies of the grid, deterministically shuffled -- every
    point appears twice, so roughly half the requests are satisfiable
    from the shared cache (or deduped within a coalesced batch) once its
    twin has landed.

    Bodies are loop-major (all points of loop *i* adjacent), matching the
    bench driver's order, so whatever slice of the list is in flight at
    once mostly shares a loop -- the case grid batching rewards.
    """
    from repro.bench import BUDGETS, LATENCY, MODELS

    if kind not in WORKLOADS:
        raise ValueError(
            f"unknown workload {kind!r} (known: {', '.join(WORKLOADS)})"
        )
    machine = {"kind": "paper", "latency": latency or LATENCY}
    bodies = []
    for index in range(n_loops):
        loop = {"kind": "suite", "n_loops": n_loops, "index": index}
        bodies.append(
            {
                "loop": loop,
                "machine": machine,
                "model": "ideal",
                "register_budget": None,
            }
        )
        for budget in BUDGETS:
            for model in MODELS:
                bodies.append(
                    {
                        "loop": loop,
                        "machine": machine,
                        "model": model.value,
                        "register_budget": budget,
                    }
                )
    if kind == "mixed":
        bodies = bodies + bodies
        # Deterministic interleave: a fixed seed keeps the workload (and
        # therefore the gated ratio's input) identical across runs.
        random.Random(20260808).shuffle(bodies)
    return bodies


@dataclass
class LoadStats:
    """What one :func:`run_load` run observed."""

    requests: int = 0
    errors: int = 0
    throttled: int = 0  # 429 responses (each later retried)
    cached: int = 0  # responses served from the result cache
    elapsed: float = 0.0
    latencies: list[float] = field(default_factory=list, repr=False)
    error_samples: list[str] = field(default_factory=list)

    @property
    def points_per_sec(self) -> float:
        return self.requests / self.elapsed if self.elapsed else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies, 50) * 1000.0

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies, 99) * 1000.0

    def as_dict(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "throttled": self.throttled,
            "cached": self.cached,
            "elapsed": round(self.elapsed, 4),
            "points_per_sec": round(self.points_per_sec, 1),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
        }


def _parse_url(url: str) -> tuple[str, int]:
    from urllib.parse import urlsplit

    split = urlsplit(url if "//" in url else f"http://{url}")
    return split.hostname or "127.0.0.1", split.port or 80


def run_load(
    url: str,
    bodies: list[dict],
    clients: int = 16,
    op: str = "evaluate",
    timeout: float = 60.0,
    max_attempts: int = 8,
) -> LoadStats:
    """Send every body once via ``clients`` persistent connections.

    Each client thread owns one keep-alive :class:`http.client`
    connection and pulls work off a shared iterator, so the offered
    concurrency is exactly ``clients`` regardless of how the work is
    shaped.  A 429 is honored (sleep ``Retry-After``, retry the same
    body, count it); a transport error reconnects and retries; a body
    that keeps failing after ``max_attempts`` counts as one error and is
    dropped.  Latency is measured per attempt that produced a final
    response, wall time across the whole run.
    """
    host, port = _parse_url(url)
    work = iter(list(enumerate(bodies)))
    work_lock = threading.Lock()
    stats = LoadStats()
    stats_lock = threading.Lock()

    def pull() -> tuple[int, dict] | None:
        with work_lock:
            return next(work, None)

    def client_main() -> None:
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        local_lat: list[float] = []
        served = throttled = errors = cached = 0
        samples: list[str] = []
        while True:
            item = pull()
            if item is None:
                break
            _index, body = item
            payload = json.dumps(body).encode("utf-8")
            attempts = 0
            while True:
                attempts += 1
                start = time.perf_counter()
                try:
                    conn.request(
                        "POST",
                        f"/v1/{op}",
                        body=payload,
                        headers={"Content-Type": "application/json"},
                    )
                    response = conn.getresponse()
                    raw = response.read()
                except (OSError, http.client.HTTPException) as exc:
                    conn.close()
                    conn = http.client.HTTPConnection(
                        host, port, timeout=timeout
                    )
                    if attempts >= max_attempts:
                        errors += 1
                        if len(samples) < 5:
                            samples.append(f"transport: {exc!r}")
                        break
                    continue
                if response.status == 429:
                    throttled += 1
                    retry_after = float(
                        response.getheader("Retry-After") or 1.0
                    )
                    if attempts >= max_attempts:
                        errors += 1
                        if len(samples) < 5:
                            samples.append("throttled past max_attempts")
                        break
                    time.sleep(min(retry_after, 5.0))
                    continue
                local_lat.append(time.perf_counter() - start)
                if response.status != 200:
                    errors += 1
                    if len(samples) < 5:
                        samples.append(
                            f"HTTP {response.status}: {raw[:200]!r}"
                        )
                    break
                served += 1
                try:
                    if json.loads(raw)["result"].get("cached"):
                        cached += 1
                except (ValueError, KeyError, AttributeError):
                    pass
                break
        conn.close()
        with stats_lock:
            stats.requests += served
            stats.errors += errors
            stats.throttled += throttled
            stats.cached += cached
            stats.latencies.extend(local_lat)
            stats.error_samples.extend(samples)

    threads = [
        threading.Thread(target=client_main, name=f"load-client-{i}")
        for i in range(max(1, clients))
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    stats.elapsed = time.perf_counter() - start
    return stats


class ServerProcess:
    """``python -m repro serve`` as a context-managed subprocess.

    Binds an ephemeral port (discovered via ``--port-file``), exposes
    ``url``, and on exit shuts the server down -- preferring the wire
    protocol (``POST /v1/shutdown``) so the exit is the graceful path
    the server advertises; SIGTERM and kill are the fallbacks.
    ``clean_exit`` records whether the process really exited 0.
    """

    def __init__(
        self,
        workers: int = 0,
        cache_dir: str | None = None,
        engine_workers: int = 0,
        max_inflight: int | None = None,
        rate_limit: float | None = None,
        extra_args: tuple[str, ...] = (),
        startup_timeout: float = 30.0,
    ) -> None:
        self.workers = workers
        self.cache_dir = cache_dir
        self.engine_workers = engine_workers
        self.max_inflight = max_inflight
        self.rate_limit = rate_limit
        self.extra_args = tuple(extra_args)
        self.startup_timeout = startup_timeout
        self.process: subprocess.Popen | None = None
        self.url: str | None = None
        self.clean_exit: bool | None = None
        self._tmp: tempfile.TemporaryDirectory | None = None

    def __enter__(self) -> "ServerProcess":
        self._tmp = tempfile.TemporaryDirectory(prefix="repro-loadtest-")
        port_file = Path(self._tmp.name) / "port.txt"
        cache_dir = self.cache_dir
        if cache_dir is None:
            cache_dir = str(Path(self._tmp.name) / "cache")
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            str(self.workers),
            "--engine-workers",
            str(self.engine_workers),
            "--cache-dir",
            cache_dir,
        ]
        if self.max_inflight is not None:
            argv += ["--max-inflight", str(self.max_inflight)]
        if self.rate_limit is not None:
            argv += ["--rate-limit", str(self.rate_limit)]
        argv += list(self.extra_args)
        env = dict(os.environ)
        env.setdefault("PYTHONPATH", str(Path(__file__).parents[2]))
        self.process = subprocess.Popen(
            argv,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            if port_file.exists():
                text = port_file.read_text().strip()
                if text:
                    self.url = f"http://127.0.0.1:{text}"
                    return self
            if self.process.poll() is not None:
                raise RuntimeError(
                    "serve subprocess died during startup:\n"
                    + (self.process.stdout.read() or "")
                )
            time.sleep(0.05)
        self.terminate()
        raise RuntimeError("serve subprocess never wrote its port file")

    def request(
        self, op: str, body: dict | None = None, timeout: float = 10.0
    ) -> tuple[int, dict]:
        """One wire request against the server; returns the envelope."""
        host, port = _parse_url(self.url)
        conn = http.client.HTTPConnection(host, port, timeout=timeout)
        try:
            if body is None:
                conn.request("GET", f"/v1/{op}")
            else:
                conn.request(
                    "POST",
                    f"/v1/{op}",
                    body=json.dumps(body).encode("utf-8"),
                    headers={"Content-Type": "application/json"},
                )
            response = conn.getresponse()
            return response.status, json.loads(response.read() or b"{}")
        finally:
            conn.close()

    def shutdown(self, timeout: float = 30.0) -> bool:
        """Graceful stop; returns True when the exit really was clean."""
        if self.process is None:
            return True
        if self.process.poll() is None:
            try:
                self.request("shutdown", {})
            except OSError:
                self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                self.process.terminate()
                try:
                    self.process.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    self.process.kill()
                    self.process.wait(timeout=10)
        self.clean_exit = self.process.returncode == 0
        return self.clean_exit

    def terminate(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)

    def output(self) -> str:
        if self.process is None or self.process.stdout is None:
            return ""
        return self.process.stdout.read() or ""

    def __exit__(self, *exc_info: object) -> None:
        try:
            self.shutdown()
        finally:
            self.terminate()
            if self._tmp is not None:
                self._tmp.cleanup()


__all__ = [
    "LoadStats",
    "ServerProcess",
    "WORKLOADS",
    "build_workload",
    "percentile",
    "run_load",
]
