"""Wire types of the versioned facade: frozen, JSON-round-trippable.

Every request and response of :mod:`repro.api` is a frozen dataclass that
round-trips losslessly through plain JSON-safe dicts::

    request == type(request).from_dict(request.to_dict())

``to_dict`` stamps each message with its ``type`` tag and the
``schema_version`` it was built under; ``from_dict`` rejects unknown
versions (:class:`SchemaVersionError`) and unknown fields, so a client
talking to a newer or older server fails with a diagnosable envelope
instead of silently misreading numbers.  Loops and machines travel as
declarative *specs* (:class:`LoopSpec`, :class:`MachineSpec`) -- names and
parameters, never pickled objects -- which makes every request safe to
log, cache, and send over a socket.

Versioning policy: ``API_SCHEMA_VERSION`` bumps whenever a field changes
meaning, is removed, or is re-typed.  Adding a new optional field with a
default is *not* a bump (old payloads still decode); removing or renaming
one is.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, ClassVar, Iterable, TypeVar

T = TypeVar("T", bound="WireMessage")

from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.engine.sweep import NAMED_SWEEPS, SweepSpec, named_sweep
from repro.ir.loop import Loop
from repro.machine.config import (
    MachineConfig,
    clustered_config,
    example_config,
    paper_config,
    pxly,
)
from repro.pipeline.pipelines import PRESSURE_STRATEGIES
from repro.pipeline.policies import get_escalation, get_policy
from repro.workloads.kernels import example_loop, kernel_names, make_kernel
from repro.workloads.suite import DEFAULT_SEED, perfect_club_like

#: Version of the wire schema; see the module docstring for the bump policy.
API_SCHEMA_VERSION = 1

#: Upper bound on suite sizes a request may name.  The paper's scale is
#: ~800 loops; this guards a shared server against a 60-byte request
#: committing it to unbounded compute while holding the session lock.
MAX_SUITE_LOOPS = 10_000


# ----------------------------------------------------------------------
# Errors
# ----------------------------------------------------------------------
class ApiError(Exception):
    """Base of every deliberate facade error.

    ``status`` is the HTTP status the ``repro serve`` front-end maps the
    error to; in-process callers just catch the exception types.
    """

    status = 500


class RequestValidationError(ApiError):
    """A request field failed validation (bad name, range, or type)."""

    status = 400


class SchemaVersionError(RequestValidationError):
    """A payload was written under a schema this build does not speak."""

    status = 400


class UnknownExperimentError(ApiError):
    """An :class:`ExperimentRequest` named no registered experiment."""

    status = 404


class PayloadTooLargeError(RequestValidationError):
    """A request body exceeded the front-end's size cap.

    Distinct from a generic validation failure so clients (and load
    balancers) can tell "shrink the body" apart from "fix the fields";
    the serve front-end maps it to HTTP 413.
    """

    status = 413


class ServerSaturatedError(ApiError):
    """The front-end is at capacity (in-flight queue full or rate limited).

    Carries ``retry_after`` (seconds, possibly fractional) so the serve
    layer can emit a ``Retry-After`` header with the 429; in-process
    callers can sleep on it directly.
    """

    status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise RequestValidationError(message)


def _choice(value: str, known: Iterable[str], what: str) -> None:
    _check(
        value in tuple(known),
        f"unknown {what} {value!r} (known: {', '.join(sorted(known))})",
    )


# ----------------------------------------------------------------------
# Serialization base
# ----------------------------------------------------------------------
def _encode(value: object) -> object:
    """Recursively lower a wire value to JSON-safe types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _encode(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (tuple, list)):
        return [_encode(item) for item in value]
    if isinstance(value, dict):
        return {key: _encode(item) for key, item in value.items()}
    return value


class WireMessage:
    """Mixin: tagged ``to_dict`` / version-checked ``from_dict``.

    Subclasses set ``KIND`` (the wire tag) and, for fields that JSON
    flattens (tuples, nested specs), a ``_CONVERTERS`` entry restoring the
    declared type; every other field decodes as-is.
    """

    KIND: ClassVar[str]
    _CONVERTERS: ClassVar[dict[str, Callable]] = {}

    def to_dict(self) -> dict:
        data = _encode(self)
        data["type"] = self.KIND
        return data

    @classmethod
    def from_dict(cls: "type[T]", data: dict) -> "T":
        if not isinstance(data, dict):
            raise RequestValidationError(
                f"{cls.KIND} payload must be an object, not "
                f"{type(data).__name__}"
            )
        data = dict(data)
        tag = data.pop("type", cls.KIND)
        if tag != cls.KIND:
            raise RequestValidationError(
                f"payload of type {tag!r} is not a {cls.KIND!r}"
            )
        version = data.pop("schema_version", API_SCHEMA_VERSION)
        if version != API_SCHEMA_VERSION:
            raise SchemaVersionError(
                f"unsupported schema version {version!r} "
                f"(this build speaks {API_SCHEMA_VERSION})"
            )
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise RequestValidationError(
                f"{cls.KIND}: unknown field(s) {sorted(unknown)}"
            )
        decoded = {"schema_version": version} if "schema_version" in names else {}
        for name, value in data.items():
            converter = cls._CONVERTERS.get(name)
            decoded[name] = (
                converter(value)
                if converter is not None and value is not None
                else value
            )
        try:
            return cls(**decoded)
        except ApiError:
            raise
        except (TypeError, ValueError) as exc:
            raise RequestValidationError(f"{cls.KIND}: {exc}") from None


def _ints(values: Iterable[object]) -> tuple[int, ...]:
    return tuple(int(v) for v in values)


def _strs(values: Iterable[object]) -> tuple[str, ...]:
    return tuple(str(v) for v in values)


def _rows(values: Iterable[Iterable[object]]) -> tuple[tuple, ...]:
    return tuple(tuple(row) for row in values)


# ----------------------------------------------------------------------
# Loop / machine specs
# ----------------------------------------------------------------------
@lru_cache(maxsize=8)
def _suite_loops(n_loops: int, seed: int) -> tuple[Loop, ...]:
    """Materialized synthetic suites, shared across spec resolutions."""
    return tuple(perfect_club_like(n_loops, seed=seed))


@dataclass(frozen=True)
class LoopSpec(WireMessage):
    """A loop named declaratively, resolvable on any peer.

    ``kind="kernel"`` names one of the hand-written kernels
    (:func:`repro.workloads.kernels.kernel_names`); ``kind="suite"`` picks
    loop ``index`` out of the seeded Perfect-Club-like synthetic suite;
    ``kind="example"`` is the Section 4.1 worked example.
    """

    KIND: ClassVar[str] = "loop"

    kind: str = "kernel"
    name: str | None = None
    n_loops: int = 40
    seed: int = DEFAULT_SEED
    index: int = 0
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _choice(self.kind, ("kernel", "suite", "example"), "loop kind")
        if self.kind == "kernel":
            _check(self.name is not None, "kernel loops need a name")
            _choice(self.name, kernel_names(), "kernel")
        elif self.kind == "suite":
            _check(self.n_loops >= 1, "n_loops must be positive")
            _check(
                self.n_loops <= MAX_SUITE_LOOPS,
                f"n_loops must be <= {MAX_SUITE_LOOPS}",
            )
            _check(
                0 <= self.index < self.n_loops,
                f"index {self.index} outside suite of {self.n_loops} loops",
            )

    def resolve(self) -> Loop:
        if self.kind == "kernel":
            return make_kernel(self.name)
        if self.kind == "example":
            return example_loop()
        return _suite_loops(self.n_loops, self.seed)[self.index]


@dataclass(frozen=True)
class MachineSpec(WireMessage):
    """A machine configuration named declaratively.

    ``kind="paper"`` is the Section 5.2 machine at ``latency``;
    ``kind="pxly"`` the Table 1 machine with ``ports`` adders/multipliers;
    ``kind="clustered"`` the Section 4 generalization with ``clusters``
    clusters; ``kind="example"`` the Section 4.1 example machine.
    """

    KIND: ClassVar[str] = "machine"

    kind: str = "paper"
    latency: int = 3
    ports: int = 2
    clusters: int = 2
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _choice(
            self.kind, ("paper", "pxly", "clustered", "example"),
            "machine kind",
        )
        _check(self.latency >= 1, "latency must be >= 1")
        _check(self.ports >= 1, "ports must be >= 1")
        _check(self.clusters >= 1, "clusters must be >= 1")

    def resolve(self) -> MachineConfig:
        if self.kind == "paper":
            return paper_config(self.latency)
        if self.kind == "pxly":
            return pxly(self.ports, self.latency)
        if self.kind == "clustered":
            return clustered_config(self.clusters, self.latency)
        return example_config()


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleRequest(WireMessage):
    """Modulo-schedule one loop and report the schedule's shape."""

    KIND: ClassVar[str] = "schedule"
    _CONVERTERS = {
        "loop": LoopSpec.from_dict,
        "machine": MachineSpec.from_dict,
    }

    loop: LoopSpec
    machine: MachineSpec | None = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(isinstance(self.loop, LoopSpec), "loop must be a LoopSpec")


@dataclass(frozen=True)
class PressureRequest(WireMessage):
    """Measure one loop's register pressure under all models, no budget."""

    KIND: ClassVar[str] = "pressure"
    _CONVERTERS = {
        "loop": LoopSpec.from_dict,
        "machine": MachineSpec.from_dict,
    }

    loop: LoopSpec
    machine: MachineSpec | None = None
    swap_estimator: str | None = None  # None: the session's default
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(isinstance(self.loop, LoopSpec), "loop must be a LoopSpec")
        if self.swap_estimator is not None:
            _choice(
                self.swap_estimator,
                [e.value for e in SwapEstimator],
                "swap estimator",
            )


@dataclass(frozen=True)
class EvaluateRequest(WireMessage):
    """Run the full schedule/allocate/spill pipeline for one loop.

    ``None`` policy knobs inherit the session's defaults; explicit values
    ride into the engine job (and therefore the cache key) verbatim.
    """

    KIND: ClassVar[str] = "evaluate"
    _CONVERTERS = {
        "loop": LoopSpec.from_dict,
        "machine": MachineSpec.from_dict,
    }

    loop: LoopSpec
    machine: MachineSpec | None = None
    model: str = Model.UNIFIED.value
    register_budget: int | None = None
    swap_estimator: str | None = None
    victim_policy: str | None = None
    pressure_strategy: str | None = None
    ii_escalation: str | None = None
    max_rounds: int = 200
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(isinstance(self.loop, LoopSpec), "loop must be a LoopSpec")
        _choice(self.model, [m.value for m in Model], "model")
        if self.register_budget is not None:
            _check(self.register_budget >= 1, "register_budget must be >= 1")
        _check(
            1 <= self.max_rounds <= 10_000,
            "max_rounds must be between 1 and 10000",
        )
        if self.swap_estimator is not None:
            _choice(
                self.swap_estimator,
                [e.value for e in SwapEstimator],
                "swap estimator",
            )
        try:
            if self.victim_policy is not None:
                get_policy(self.victim_policy)
            if self.ii_escalation is not None:
                get_escalation(self.ii_escalation)
        except ValueError as exc:
            raise RequestValidationError(str(exc)) from None
        if self.pressure_strategy is not None:
            _choice(
                self.pressure_strategy, PRESSURE_STRATEGIES,
                "pressure strategy",
            )


@dataclass(frozen=True)
class SweepRequest(WireMessage):
    """A named sweep grid with optional per-field overrides.

    ``None`` overrides keep the registered grid's own value, so the wire
    form stays small and a re-registered grid changes behaviour everywhere
    at once.  Arbitrary ad-hoc grids stay an in-process concern: build a
    :class:`repro.engine.sweep.SweepSpec` directly.
    """

    KIND: ClassVar[str] = "sweep"
    _CONVERTERS = {
        "seeds": _ints,
        "latencies": _ints,
        "cluster_counts": _ints,
        "budgets": _ints,
        "models": _strs,
        "victim_policies": _strs,
    }

    name: str = "performance"
    n_loops: int | None = None
    seeds: tuple[int, ...] | None = None
    latencies: tuple[int, ...] | None = None
    cluster_counts: tuple[int, ...] | None = None
    budgets: tuple[int, ...] | None = None
    models: tuple[str, ...] | None = None
    victim_policies: tuple[str, ...] | None = None
    pressure_strategy: str | None = None
    ii_escalation: str | None = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _choice(self.name, NAMED_SWEEPS, "sweep")
        if self.n_loops is not None:
            _check(
                1 <= self.n_loops <= MAX_SUITE_LOOPS,
                f"n_loops must be between 1 and {MAX_SUITE_LOOPS}",
            )
        if NAMED_SWEEPS[self.name].kind == "pressure" and (
            self.victim_policies or self.ii_escalation
        ):
            # Pressure sweeps never spill; silently ignoring the knobs
            # would make a "policy comparison" of identical numbers look
            # meaningful.
            raise RequestValidationError(
                f"victim_policies/ii_escalation have no effect on the "
                f"pressure-kind sweep {self.name!r} (it never spills)"
            )
        try:
            self.to_spec()  # SweepSpec's own validation covers the rest
        except ApiError:
            raise
        except ValueError as exc:
            raise RequestValidationError(str(exc)) from None

    def to_spec(self) -> SweepSpec:
        """The executable grid: the named spec plus non-``None`` overrides."""
        overrides: dict = {}
        for field_name in (
            "n_loops",
            "seeds",
            "latencies",
            "cluster_counts",
            "budgets",
            "victim_policies",
            "pressure_strategy",
            "ii_escalation",
        ):
            value = getattr(self, field_name)
            if value is not None:
                overrides[field_name] = value
        if self.models is not None:
            overrides["models"] = tuple(Model(m) for m in self.models)
        return named_sweep(self.name, **overrides)


@dataclass(frozen=True)
class ExperimentRequest(WireMessage):
    """Run one registered experiment (see :mod:`repro.api.registry`).

    ``params`` is validated against the experiment's declared parameter
    schema -- unknown names and out-of-range values are rejected before
    any work starts.
    """

    KIND: ClassVar[str] = "experiment"
    _CONVERTERS = {"params": dict}

    name: str = "figure6"
    params: dict = field(default_factory=dict)
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(
            isinstance(self.name, str) and bool(self.name),
            "experiment name must be a non-empty string",
        )
        _check(isinstance(self.params, dict), "params must be an object")


#: Kernel tiers a ValidateRequest may name (mirrors repro.validate.TIERS;
#: literal here so the wire module stays import-light).
VALIDATE_TIERS = ("batch", "1", "0")


@dataclass(frozen=True)
class ValidateRequest(WireMessage):
    """Differentially validate one evaluated point by execution.

    The point is re-evaluated under each requested kernel tier and its
    schedule/allocation executed cycle-by-cycle against the reference
    interpreter (:mod:`repro.validate`); the response reports every
    observed-vs-claimed mismatch with actionable coordinates.
    """

    KIND: ClassVar[str] = "validate"
    _CONVERTERS = {
        "loop": LoopSpec.from_dict,
        "machine": MachineSpec.from_dict,
        "tiers": _strs,
    }

    loop: LoopSpec
    machine: MachineSpec | None = None
    model: str = Model.UNIFIED.value
    register_budget: int | None = None
    tiers: tuple[str, ...] = VALIDATE_TIERS
    iterations: int | None = None
    #: Also prove the point analytically (repro.check) -- the O(ops)
    #: static tier.  On by default; an additive field, no schema bump.
    static: bool = True
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(isinstance(self.loop, LoopSpec), "loop must be a LoopSpec")
        _choice(self.model, [m.value for m in Model], "model")
        if self.register_budget is not None:
            _check(self.register_budget >= 1, "register_budget must be >= 1")
        _check(len(self.tiers) >= 1, "tiers must not be empty")
        for tier in self.tiers:
            _choice(tier, VALIDATE_TIERS, "kernel tier")
        if self.iterations is not None:
            _check(
                1 <= self.iterations <= 4096,
                "iterations must be between 1 and 4096",
            )


@dataclass(frozen=True)
class ReportRequest(WireMessage):
    """Generate the reproduction artifact through the facade.

    ``out_dir=None`` renders without writing; ``include_text=True`` puts
    the rendered artifact into the response body (it can be large).
    ``check`` records the caller's intent to gate on the result -- the
    response's ``ok`` field carries the verdict either way.

    ``sim_samples`` sizes the sampled simulator cross-check
    (:mod:`repro.validate`); ``None`` runs the default sample when
    ``check`` is set and skips it otherwise, ``0`` disables it outright.
    ``sim_seed`` drives sample selection, so a fixed seed validates the
    same points on every run.  ``static_check`` runs the full-grid
    static proof (:mod:`repro.check`) over 100% of suite points;
    ``None`` follows ``check``.  (New optional fields with defaults:
    not a schema bump per the policy above.)
    """

    KIND: ClassVar[str] = "report"

    n_loops: int = 200
    spill_loops: int | None = None
    fmt: str = "md"
    out_dir: str | None = None
    check: bool = False
    include_text: bool = False
    stamp: bool = True
    sim_samples: int | None = None
    sim_seed: int = DEFAULT_SEED
    static_check: bool | None = None
    schema_version: int = API_SCHEMA_VERSION

    def __post_init__(self) -> None:
        _check(self.n_loops >= 1, "n_loops must be positive")
        _check(
            self.n_loops <= MAX_SUITE_LOOPS,
            f"n_loops must be <= {MAX_SUITE_LOOPS}",
        )
        if self.spill_loops is not None:
            _check(
                1 <= self.spill_loops <= MAX_SUITE_LOOPS,
                f"spill_loops must be between 1 and {MAX_SUITE_LOOPS}",
            )
        _choice(self.fmt, ("md", "html"), "report format")
        if self.sim_samples is not None:
            _check(
                0 <= self.sim_samples <= 256,
                "sim_samples must be between 0 and 256",
            )


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScheduleResponse(WireMessage):
    KIND: ClassVar[str] = "schedule.response"

    loop_name: str
    machine: str
    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    stage_count: int
    n_ops: int
    kernel: str
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class PressureResponse(WireMessage):
    """Register requirements of one loop under the three finite models."""

    KIND: ClassVar[str] = "pressure.response"

    loop_name: str
    machine: str
    trip_count: int
    ii: int
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int
    cached: bool = False
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class EvaluateResponse(WireMessage):
    """Final state of one loop under one model and register budget."""

    KIND: ClassVar[str] = "evaluate.response"

    loop_name: str
    machine: str
    model: str
    register_budget: int | None
    trip_count: int
    ii: int
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool
    memory_ops_per_iteration: int
    spill_ops_per_iteration: int
    memory_bandwidth: int
    registers_required: int
    cycles: int
    traffic_density: float
    cached: bool = False
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class SweepResponse(WireMessage):
    """An executed grid: aggregate rows plus throughput/cache numbers."""

    KIND: ClassVar[str] = "sweep.response"
    _CONVERTERS = {"headers": _strs, "rows": _rows}

    name: str
    kind: str
    description: str
    headers: tuple[str, ...]
    rows: tuple[tuple, ...]
    points: int
    elapsed: float
    cache_hits: int
    cache_misses: int
    text: str
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class ExperimentResponse(WireMessage):
    """One experiment's rendered report plus timing."""

    KIND: ClassVar[str] = "experiment.response"
    _CONVERTERS = {"params": dict}

    name: str
    kind: str
    title: str
    params: dict
    seconds: float
    text: str
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class ValidateResponse(WireMessage):
    """Verdict of one differential validation across kernel tiers."""

    KIND: ClassVar[str] = "validate.response"
    _CONVERTERS = {"tiers": _strs}

    loop_name: str
    machine: str
    model: str
    register_budget: int | None
    tiers: tuple[str, ...]
    points: int
    mismatches: int
    ok: bool
    text: str
    #: Findings of the static proof, already folded into ``mismatches``
    #: and ``ok``; -1 when the caller disabled the static tier.
    static_findings: int = -1
    schema_version: int = API_SCHEMA_VERSION


@dataclass(frozen=True)
class ReportResponse(WireMessage):
    """Verdict and summary of one reproduction-artifact run.

    ``ok`` folds the paper-delta gates *and* the sampled simulator
    cross-check; ``sim_points``/``sim_mismatches`` break the latter out
    (both 0 when the cross-check did not run).
    """

    KIND: ClassVar[str] = "report.response"
    _CONVERTERS = {"failed_keys": _strs}

    ok: bool
    n_loops: int
    spill_loops: int | None
    fmt: str
    checks_gated: int
    failed_keys: tuple[str, ...]
    summary: str
    path: str | None
    text: str | None = None
    sim_points: int = 0
    sim_mismatches: int = 0
    sim_summary: str | None = None
    static_points: int = 0
    static_findings: int = 0
    static_summary: str | None = None
    schema_version: int = API_SCHEMA_VERSION


#: Wire tag -> request class, the serve front-end's dispatch table.
REQUEST_TYPES: dict[str, type[WireMessage]] = {
    cls.KIND: cls
    for cls in (
        ScheduleRequest,
        PressureRequest,
        EvaluateRequest,
        SweepRequest,
        ExperimentRequest,
        ValidateRequest,
        ReportRequest,
    )
}

#: Wire tag -> response class, for symmetric client-side decoding.
RESPONSE_TYPES: dict[str, type[WireMessage]] = {
    cls.KIND: cls
    for cls in (
        ScheduleResponse,
        PressureResponse,
        EvaluateResponse,
        SweepResponse,
        ExperimentResponse,
        ValidateResponse,
        ReportResponse,
    )
}

#: Requests the facade accepts, in wire-tag form (= serve endpoint names).
REQUEST_KINDS = tuple(REQUEST_TYPES)


def request_from_dict(data: dict) -> WireMessage:
    """Decode any request payload by its ``type`` tag."""
    if not isinstance(data, dict):
        raise RequestValidationError("request payload must be an object")
    tag = data.get("type")
    if tag not in REQUEST_TYPES:
        raise RequestValidationError(
            f"unknown request type {tag!r} "
            f"(known: {', '.join(REQUEST_KINDS)})"
        )
    return REQUEST_TYPES[tag].from_dict(data)


def response_from_dict(data: dict) -> WireMessage:
    """Decode any response payload by its ``type`` tag."""
    if not isinstance(data, dict):
        raise RequestValidationError("response payload must be an object")
    tag = data.get("type")
    if tag not in RESPONSE_TYPES:
        raise RequestValidationError(f"unknown response type {tag!r}")
    return RESPONSE_TYPES[tag].from_dict(data)


__all__ = [
    "API_SCHEMA_VERSION",
    "ApiError",
    "EvaluateRequest",
    "EvaluateResponse",
    "ExperimentRequest",
    "ExperimentResponse",
    "LoopSpec",
    "MAX_SUITE_LOOPS",
    "MachineSpec",
    "PayloadTooLargeError",
    "PressureRequest",
    "PressureResponse",
    "REQUEST_KINDS",
    "REQUEST_TYPES",
    "RESPONSE_TYPES",
    "ReportRequest",
    "ReportResponse",
    "RequestValidationError",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchemaVersionError",
    "ServerSaturatedError",
    "SweepRequest",
    "SweepResponse",
    "UnknownExperimentError",
    "VALIDATE_TIERS",
    "ValidateRequest",
    "ValidateResponse",
    "WireMessage",
    "request_from_dict",
    "response_from_dict",
]
