"""Admission control and batched dispatch for the serve front-end.

Three small, separately testable pieces:

* :class:`TokenBucket` -- a classic token-bucket rate limiter (``rate``
  requests/second sustained, ``burst`` extra headroom).  ``try_acquire``
  never blocks; on refusal it returns the seconds until a token exists,
  which the front-end surfaces as ``Retry-After``.
* :class:`InflightGate` -- a bounded in-flight counter.  Admission is
  non-blocking: a request over the bound is refused immediately (HTTP
  429) instead of queueing invisibly, so clients and load balancers see
  saturation the moment it happens.
* :class:`BatchDispatcher` -- the throughput core of a serve worker.
  Handler threads do not run engine jobs themselves; they enqueue
  ``(job, future)`` and block on the future.  One dispatcher thread
  drains the queue -- everything that arrived, plus a tiny *linger* to
  let concurrently-arriving co-travellers join -- and executes the whole
  batch as **one** ``Engine.map`` call.  That hands the engine a real
  batch, so its grid batching (one shared
  :class:`repro.kernel.batch.LoopChain` per loop group, see PR 6) and
  in-batch single-flight dedup apply *across HTTP requests*: N
  concurrent clients asking for N points of the same loop cost one
  schedule, and N clients asking for the same point cost one evaluation.
  A lone request still dispatches immediately after the linger (bounded
  added latency), so the batch path is never slower than per-request
  dispatch by more than the linger.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from typing import TYPE_CHECKING, Callable

from repro.api.types import ServerSaturatedError
from repro.engine.jobs import EvalJob, JobResult

if TYPE_CHECKING:
    from repro.api.session import Session


class TokenBucket:
    """Thread-safe token bucket; ``rate <= 0`` disables limiting.

    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self,
        rate: float,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(self.rate, 1.0)
        if self.rate > 0 and self.burst < 1.0:
            raise ValueError("burst must allow at least one request")
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> float:
        """Take one token; returns 0.0 on success, else seconds to wait."""
        if self.rate <= 0:
            return 0.0
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._updated) * self.rate
            )
            self._updated = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return 0.0
            return (1.0 - self._tokens) / self.rate


class InflightGate:
    """Bounded in-flight admission; refuses instead of queueing.

    ``limit <= 0`` disables the bound.  ``depth`` is a lock-free read of
    the current in-flight count for the health endpoint.
    """

    def __init__(self, limit: int, retry_after: float = 1.0) -> None:
        self.limit = int(limit)
        self.retry_after = retry_after
        self._count = 0
        self._lock = threading.Lock()

    @property
    def depth(self) -> int:
        return self._count

    def try_enter(self) -> bool:
        with self._lock:
            if self.limit > 0 and self._count >= self.limit:
                return False
            self._count += 1
            return True

    def exit(self) -> None:
        with self._lock:
            self._count = max(0, self._count - 1)

    def __enter__(self) -> "InflightGate":
        if not self.try_enter():
            raise ServerSaturatedError(
                f"server is at its in-flight capacity of {self.limit} "
                f"request(s); retry shortly",
                retry_after=self.retry_after,
            )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.exit()


class BatchDispatcher:
    """Coalesce concurrent engine jobs into single ``Engine.map`` calls.

    ``session`` provides the engine and the lock discipline (the batch
    executes under the session lock, like every other engine access).
    ``linger`` bounds the extra latency a lone request pays waiting for
    co-travellers; ``max_batch`` bounds how much work one dispatch round
    may bite off, so a flood cannot starve the queue behind one giant
    batch.
    """

    def __init__(
        self,
        session: "Session",
        linger: float = 0.002,
        max_batch: int = 512,
    ) -> None:
        if linger < 0:
            raise ValueError("linger must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.session = session
        self.linger = linger
        self.max_batch = max_batch
        self.batches_run = 0
        self.jobs_batched = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._started = False
        self._closed = False
        self._start_lock = threading.Lock()
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def queue_depth(self) -> int:
        """Jobs waiting for (or riding in) a dispatch round."""
        return self._queue.qsize()

    def submit(self, job: EvalJob) -> tuple[JobResult, bool]:
        """Execute ``job`` via the next batch; returns ``(result, cached)``.

        Called from handler threads; blocks until the dispatcher round
        carrying the job completes.  Exceptions from the engine re-raise
        here, in the submitting thread.
        """
        if self._closed:
            raise RuntimeError("dispatcher is closed")
        self._ensure_thread()
        future: Future = Future()
        self._queue.put((job, future))
        return future.result()

    def close(self) -> None:
        """Stop the dispatcher thread after the current round."""
        self._closed = True
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout=10)

    # ------------------------------------------------------------------
    def _ensure_thread(self) -> None:
        if self._started:
            return
        with self._start_lock:
            if self._started:
                return
            self._thread = threading.Thread(
                target=self._run, name="repro-batch-dispatch", daemon=True
            )
            self._thread.start()
            self._started = True

    def _drain(
        self, first: tuple[EvalJob, Future]
    ) -> list[tuple[EvalJob, Future]]:
        """One round's worth of work: ``first`` plus the linger window."""
        batch = [first]
        deadline = time.monotonic() + self.linger
        while len(batch) < self.max_batch:
            timeout = deadline - time.monotonic()
            try:
                if timeout <= 0:
                    item = self._queue.get_nowait()
                else:
                    item = self._queue.get(timeout=timeout)
            except queue.Empty:
                break
            if item is None:  # close sentinel: finish this round, stop
                self._closed = True
                break
            batch.append(item)
        return batch

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch = self._drain(item)
            jobs = [job for job, _future in batch]
            flags: list[bool] = []
            try:
                with self.session._lock:
                    results = self.session.engine.map(
                        jobs, cached_flags=flags
                    )
                    self.session.requests_served += len(jobs)
            except BaseException as exc:  # noqa: BLE001 - fan the fault out
                for _job, future in batch:
                    future.set_exception(exc)
            else:
                self.batches_run += 1
                self.jobs_batched += len(jobs)
                for (_job, future), result, cached in zip(
                    batch, results, flags
                ):
                    future.set_result((result, cached))
            if self._closed:
                return


__all__ = ["BatchDispatcher", "InflightGate", "TokenBucket"]
