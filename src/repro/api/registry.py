"""Experiment registry: every runnable study behind one discoverable door.

The paper's figures and tables, the full suite, and the named sweep grids
all register here as :class:`Experiment` records -- a name, a kind, a
*declared parameter schema* (:class:`Param`), a runner and a formatter.
:func:`list_experiments` / :func:`get_experiment` replace the ad-hoc
driver imports the CLI, suite runner, and report builder used to carry:
adding an experiment to this registry makes it reachable from
``ExperimentRequest``, ``python -m repro serve``, and the discovery
endpoints without touching any front-end.

The suite sections (:func:`suite_sections`) are the registry's ordered
view the runner iterates -- same drivers, same titles, same evaluation
order as the historical hard-coded list, so suite output stays
byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.api.types import (
    API_SCHEMA_VERSION,
    MAX_SUITE_LOOPS,
    RequestValidationError,
    UnknownExperimentError,
)
from repro.core.models import Model
from repro.core.swapping import SwapEstimator
if TYPE_CHECKING:
    from repro.engine.pool import Engine
    from repro.ir.loop import Loop

from repro.engine.sweep import (
    NAMED_SWEEPS,
    format_outcome,
    named_sweep,
    run_sweep,
)
from repro.experiments import (
    cost,
    example_loop,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)
from repro.pipeline.pipelines import PRESSURE_STRATEGIES
from repro.pipeline.policies import II_ESCALATIONS, SPILL_POLICIES
from repro.workloads.kernels import kernel_names
from repro.workloads.suite import DEFAULT_SEED


# ----------------------------------------------------------------------
# Parameter schemas
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Param:
    """One declared experiment parameter: type, default, constraints."""

    name: str
    type: str  # "int" | "str" | "bool"
    default: object = None
    help: str = ""
    choices: tuple[str, ...] | None = None
    minimum: int | None = None
    maximum: int | None = None
    nullable: bool = False

    def coerce(self, value: object) -> object:
        """Validate one supplied value against the schema; returns it."""
        if value is None:
            if not self.nullable:
                raise RequestValidationError(
                    f"parameter {self.name!r} must not be null"
                )
            return None
        if self.type == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise RequestValidationError(
                    f"parameter {self.name!r} must be an integer, got "
                    f"{value!r}"
                )
            if self.minimum is not None and value < self.minimum:
                raise RequestValidationError(
                    f"parameter {self.name!r} must be >= {self.minimum}, "
                    f"got {value}"
                )
            if self.maximum is not None and value > self.maximum:
                raise RequestValidationError(
                    f"parameter {self.name!r} must be <= {self.maximum}, "
                    f"got {value}"
                )
        elif self.type == "bool":
            if not isinstance(value, bool):
                raise RequestValidationError(
                    f"parameter {self.name!r} must be a boolean, got "
                    f"{value!r}"
                )
        elif self.type == "str":
            if not isinstance(value, str):
                raise RequestValidationError(
                    f"parameter {self.name!r} must be a string, got "
                    f"{value!r}"
                )
            if self.choices is not None and value not in self.choices:
                raise RequestValidationError(
                    f"parameter {self.name!r} must be one of "
                    f"{', '.join(self.choices)}; got {value!r}"
                )
        else:  # pragma: no cover - registration-time programming error
            raise RequestValidationError(
                f"parameter {self.name!r} has unknown type {self.type!r}"
            )
        return value

    def describe(self) -> dict:
        """JSON-able schema record for the discovery endpoints."""
        record = {
            "name": self.name,
            "type": self.type,
            "default": self.default,
            "help": self.help,
        }
        if self.choices is not None:
            record["choices"] = list(self.choices)
        if self.minimum is not None:
            record["minimum"] = self.minimum
        if self.maximum is not None:
            record["maximum"] = self.maximum
        if self.nullable:
            record["nullable"] = True
        return record


@dataclass(frozen=True)
class Experiment:
    """One registered study: schema-validated entry to a driver."""

    name: str
    kind: str  # "experiment" | "sweep" | "suite"
    title: str
    description: str
    params: tuple[Param, ...]
    runner: Callable  # (engine=..., **params) -> structured result
    formatter: Callable  # structured result -> report text
    #: Suite hook: ``(loops, spill_subset, engine) -> result`` for entries
    #: that render a section of ``python -m repro run`` (None otherwise).
    suite_runner: Callable | None = None

    def validate(self, params: dict) -> dict:
        """Defaults filled, values coerced, unknown names rejected."""
        known = {p.name: p for p in self.params}
        unknown = set(params) - set(known)
        if unknown:
            raise RequestValidationError(
                f"experiment {self.name!r}: unknown parameter(s) "
                f"{sorted(unknown)} (declared: {sorted(known) or 'none'})"
            )
        validated = {}
        for param in self.params:
            value = params.get(param.name, param.default)
            validated[param.name] = param.coerce(value)
        return validated

    def run(self, engine: "Engine | None" = None, **params: object) -> object:
        """Validate ``params`` and execute the driver."""
        return self.runner(engine=engine, **self.validate(params))

    def format(self, result: object) -> str:
        return self.formatter(result)

    def describe(self) -> dict:
        """JSON-able registry record for the discovery endpoints."""
        return {
            "name": self.name,
            "kind": self.kind,
            "title": self.title,
            "description": self.description,
            "params": [p.describe() for p in self.params],
            "schema_version": API_SCHEMA_VERSION,
        }


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
EXPERIMENTS: dict[str, Experiment] = {}


def register_experiment(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (name must be unused)."""
    if experiment.name in EXPERIMENTS:
        raise ValueError(
            f"experiment {experiment.name!r} already registered"
        )
    EXPERIMENTS[experiment.name] = experiment
    return experiment


def list_experiments(kind: str | None = None) -> list[Experiment]:
    """Registered experiments, in registration (= suite section) order."""
    return [
        e for e in EXPERIMENTS.values() if kind is None or e.kind == kind
    ]


def get_experiment(name: str) -> Experiment:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise UnknownExperimentError(
            f"unknown experiment {name!r} (known: {known})"
        ) from None


def suite_sections() -> list[tuple[str, str, Callable]]:
    """``(name, title, suite_runner)`` for every suite-section entry."""
    return [
        (e.name, e.title, e.suite_runner)
        for e in EXPERIMENTS.values()
        if e.suite_runner is not None
    ]


def capabilities() -> dict:
    """Everything a client can name, computed live from the registries.

    This is what ``GET /v1/capabilities`` serves and what the CLI derives
    its ``--policy``/``--escalation``/``--name`` choices from, so a policy
    registered at import time shows up everywhere at once.
    """
    return {
        "schema_version": API_SCHEMA_VERSION,
        "experiments": [e.describe() for e in list_experiments()],
        "sweeps": sorted(NAMED_SWEEPS),
        "spill_policies": sorted(SPILL_POLICIES),
        "ii_escalations": sorted(II_ESCALATIONS),
        "pressure_strategies": list(PRESSURE_STRATEGIES),
        "models": [m.value for m in Model],
        "swap_estimators": [e.value for e in SwapEstimator],
        "kernels": kernel_names(),
    }


# ----------------------------------------------------------------------
# Registrations
# ----------------------------------------------------------------------
def _suite(loops: int, seed: int) -> "list[Loop]":
    # Reuses the spec-resolution cache: repeated experiment requests for
    # the same (size, seed) must not regenerate the synthetic suite.
    from repro.api.types import _suite_loops

    return list(_suite_loops(loops, seed))


_LOOPS = Param(
    "loops",
    "int",
    default=200,
    minimum=1,
    maximum=MAX_SUITE_LOOPS,
    help="synthetic suite size",
)
_SEED = Param(
    "seed", "int", default=DEFAULT_SEED, help="suite generation seed"
)
_POLICY = Param(
    "victim_policy",
    "str",
    default="longest",
    choices=tuple(sorted(SPILL_POLICIES)),
    help="spill victim selection policy",
)
_ESCALATION = Param(
    "ii_escalation",
    "str",
    default="increment",
    choices=tuple(sorted(II_ESCALATIONS)),
    help="II escalation strategy when nothing is spillable",
)

register_experiment(
    Experiment(
        name="example",
        kind="experiment",
        title="Tables 2/3/4 -- example loop",
        description=(
            "The Section 4.1 worked example: schedule, lifetimes, and the "
            "42/29/23 register-requirement progression."
        ),
        params=(),
        runner=lambda engine=None: example_loop.run_example(),
        formatter=example_loop.format_report,
        suite_runner=lambda loops, spill, engine: example_loop.run_example(),
    )
)

register_experiment(
    Experiment(
        name="table1",
        kind="experiment",
        title="Table 1 -- PxLy allocatable loops",
        description=(
            "Percentage of loops (and of cycles) allocatable without "
            "spilling at 16/32/64 registers on the PxLy machines."
        ),
        params=(_LOOPS, _SEED),
        runner=lambda engine=None, loops=200, seed=DEFAULT_SEED: (
            table1.run_table1(_suite(loops, seed), engine=engine)
        ),
        formatter=table1.format_report,
        suite_runner=lambda loops, spill, engine: table1.run_table1(
            loops, engine=engine
        ),
    )
)

register_experiment(
    Experiment(
        name="figure6",
        kind="experiment",
        title="Figure 6 -- static distributions",
        description=(
            "Static cumulative distribution of loops vs registers "
            "required, per model and latency."
        ),
        params=(_LOOPS, _SEED),
        runner=lambda engine=None, loops=200, seed=DEFAULT_SEED: (
            figure6.run_figure6(_suite(loops, seed), engine=engine)
        ),
        formatter=figure6.format_report,
        suite_runner=lambda loops, spill, engine: figure6.run_figure6(
            loops, engine=engine
        ),
    )
)

register_experiment(
    Experiment(
        name="figure7",
        kind="experiment",
        title="Figure 7 -- dynamic distributions",
        description=(
            "Cycle-weighted (dynamic) cumulative distributions; free on a "
            "shared engine once Figure 6 has run."
        ),
        params=(_LOOPS, _SEED),
        runner=lambda engine=None, loops=200, seed=DEFAULT_SEED: (
            figure7.run_figure7(_suite(loops, seed), engine=engine)
        ),
        formatter=figure7.format_report,
        suite_runner=lambda loops, spill, engine: figure7.run_figure7(
            loops, engine=engine
        ),
    )
)

register_experiment(
    Experiment(
        name="figure8",
        kind="experiment",
        title="Figure 8 -- performance",
        description=(
            "Performance of the four models with limited register files, "
            "relative to infinite registers."
        ),
        params=(_LOOPS, _SEED, _POLICY, _ESCALATION),
        runner=lambda engine=None, loops=200, seed=DEFAULT_SEED,
        victim_policy="longest", ii_escalation="increment": (
            figure8.run_figure8(
                _suite(loops, seed),
                engine=engine,
                victim_policy=victim_policy,
                ii_escalation=ii_escalation,
            )
        ),
        formatter=figure8.format_report,
        suite_runner=lambda loops, spill, engine: figure8.run_figure8(
            spill, engine=engine
        ),
    )
)

register_experiment(
    Experiment(
        name="figure9",
        kind="experiment",
        title="Figure 9 -- traffic density",
        description=(
            "Memory-bus traffic density per model; identical engine jobs "
            "to Figure 8's."
        ),
        params=(_LOOPS, _SEED, _POLICY, _ESCALATION),
        runner=lambda engine=None, loops=200, seed=DEFAULT_SEED,
        victim_policy="longest", ii_escalation="increment": (
            figure9.run_figure9(
                _suite(loops, seed),
                engine=engine,
                victim_policy=victim_policy,
                ii_escalation=ii_escalation,
            )
        ),
        formatter=figure9.format_report,
        suite_runner=lambda loops, spill, engine: figure9.run_figure9(
            spill, engine=engine
        ),
    )
)

register_experiment(
    Experiment(
        name="cost",
        kind="experiment",
        title="Cost model -- Section 3.2",
        description=(
            "Register-file organization cost comparison (area, access "
            "time, specifier bits)."
        ),
        params=(
            Param(
                "registers",
                "int",
                default=32,
                minimum=1,
                help="register count per (sub)file",
            ),
        ),
        runner=lambda engine=None, registers=32: [
            cost.run_cost_study(registers)
        ],
        formatter=cost.format_report,
        suite_runner=lambda loops, spill, engine: [
            cost.run_cost_study(32),
            cost.run_cost_study(64),
        ],
    )
)


def _run_validate_entry(
    engine: "Engine | None" = None,
    loops: int = 200,
    samples: int = 6,
    seed: int = DEFAULT_SEED,
    latency: int = 6,
    iterations: int | None = None,
) -> object:
    # Imported lazily: repro.validate drives the pipeline and simulator;
    # the registry must stay importable without either.  The engine is
    # deliberately unused -- validation verdicts must come from executing
    # this build, never from cached analytical results.
    from repro.validate import run_sampled_validation

    return run_sampled_validation(
        n_loops=loops,
        samples=samples,
        seed=seed,
        latency=latency,
        iterations=iterations,
    )


register_experiment(
    Experiment(
        name="validate",
        kind="experiment",
        title="Simulator cross-check -- sampled differential validation",
        description=(
            "Execute a seeded sample of suite points cycle-by-cycle under "
            "every model and kernel tier and check observed II, register "
            "occupancy, and bus traffic against the analytical claims."
        ),
        params=(
            _LOOPS,
            Param(
                "samples",
                "int",
                default=6,
                minimum=1,
                maximum=256,
                help="sampled suite loops to execute",
            ),
            Param(
                "seed",
                "int",
                default=DEFAULT_SEED,
                help="sample-selection seed (suite seed stays the default)",
            ),
            Param(
                "latency",
                "int",
                default=6,
                minimum=1,
                maximum=64,
                help="paper-machine FP latency to validate under",
            ),
            Param(
                "iterations",
                "int",
                default=None,
                minimum=1,
                maximum=4096,
                nullable=True,
                help="simulated iterations per point (default: auto)",
            ),
        ),
        runner=_run_validate_entry,
        formatter=lambda result: result.format(),
    )
)


def _run_check_entry(
    engine: "Engine | None" = None, loops: int = 200, latency: int = 6
) -> object:
    # Imported lazily, like validate's: repro.check drives the pipeline.
    # The engine is unused for the same reason -- proofs must come from
    # evaluating this build, never from cached results.
    from repro.check import run_static_validation

    return run_static_validation(n_loops=loops, latency=latency)


register_experiment(
    Experiment(
        name="check",
        kind="experiment",
        title="Static proof -- full-grid schedule/allocation verification",
        description=(
            "Statically prove every suite point under every model: "
            "dependence legality, modulo reservation table, allocation "
            "disjointness and register-count minimality, and spill/"
            "traffic accounting -- O(ops) per point, no simulation, "
            "100% coverage."
        ),
        params=(
            _LOOPS,
            Param(
                "latency",
                "int",
                default=6,
                minimum=1,
                maximum=64,
                help="paper-machine FP latency to prove under",
            ),
        ),
        runner=_run_check_entry,
        formatter=lambda result: result.format(),
    )
)


def _run_suite_entry(
    engine: "Engine | None" = None,
    loops: int = 200,
    spill_loops: int | None = None,
) -> object:
    # Imported lazily: the runner iterates this registry for its sections,
    # so the import must happen at call time to keep the layering one-way.
    from repro.experiments.runner import run_suite

    return run_suite(loops, spill_loops, engine=engine)


def _format_suite_entry(result: object) -> str:
    from repro.experiments.runner import format_suite

    return format_suite(result)


register_experiment(
    Experiment(
        name="suite",
        kind="suite",
        title="Full experiment suite",
        description=(
            "Every section above through one shared engine -- the "
            "programmatic form of ``python -m repro run``."
        ),
        params=(
            _LOOPS,
            Param(
                "spill_loops",
                "int",
                default=None,
                minimum=1,
                maximum=MAX_SUITE_LOOPS,
                nullable=True,
                help="subset size for the spill-pipeline figures",
            ),
        ),
        runner=_run_suite_entry,
        formatter=_format_suite_entry,
    )
)


def _sweep_entry(name: str) -> Experiment:
    spec = NAMED_SWEEPS[name]
    params = [
        Param(
            "loops", "int", default=None, minimum=1,
            maximum=MAX_SUITE_LOOPS, nullable=True,
            help="suite size override",
        ),
        Param(
            "seed", "int", default=None, nullable=True,
            help="suite seed override",
        ),
    ]
    if spec.kind == "evaluate":
        params.append(
            Param(
                "victim_policy", "str", default=None, nullable=True,
                choices=tuple(sorted(SPILL_POLICIES)),
                help="spill victim policy override",
            )
        )
        params.append(
            Param(
                "ii_escalation", "str", default=None, nullable=True,
                choices=tuple(sorted(II_ESCALATIONS)),
                help="II escalation override",
            )
        )

    def run(
        engine: "Engine | None" = None,
        loops: int | None = None,
        seed: int | None = None,
        victim_policy: str | None = None,
        ii_escalation: str | None = None,
    ) -> object:
        overrides: dict = {}
        if loops is not None:
            overrides["n_loops"] = loops
        if seed is not None:
            overrides["seeds"] = (seed,)
        if victim_policy is not None:
            overrides["victim_policies"] = (victim_policy,)
        if ii_escalation is not None:
            overrides["ii_escalation"] = ii_escalation
        return run_sweep(named_sweep(name, **overrides), engine=engine)

    return Experiment(
        name=name,
        kind="sweep",
        title=f"Named sweep {name!r}",
        description=spec.describe(),
        params=tuple(params),
        runner=run,
        formatter=format_outcome,
    )


for _name in NAMED_SWEEPS:
    register_experiment(_sweep_entry(_name))


__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "Param",
    "capabilities",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "suite_sections",
]
