"""``repro.api`` -- the versioned, typed public facade.

This package is the supported programmatic entry point to the
reproduction: frozen, JSON-round-trippable request/response dataclasses
(:mod:`~repro.api.types`), a stateful :class:`~repro.api.session.Session`
that owns machine defaults, the result cache, and the worker pool, a
discoverable experiment registry (:mod:`~repro.api.registry`), and a
concurrent HTTP/JSON front-end (:mod:`~repro.api.serve`, reachable as
``python -m repro serve``).

In-process::

    from repro.api import EvaluateRequest, LoopSpec, Session

    with Session() as session:
        response = session.evaluate(
            EvaluateRequest(
                loop=LoopSpec(kind="kernel", name="daxpy"),
                model="swapped",
                register_budget=32,
            )
        )
        print(response.ii, response.registers_required)

Over a socket: start ``python -m repro serve``, then POST the same
request's ``to_dict()`` form to ``/v1/evaluate`` -- see ``docs/api.md``
for the wire protocol, error envelopes, and versioning policy.  The CLI
subcommands (``run``/``sweep``/``report``) route through this facade, so
anything the CLI prints is reachable programmatically.
"""

from repro.api.registry import (
    EXPERIMENTS,
    Experiment,
    Param,
    capabilities,
    get_experiment,
    list_experiments,
    register_experiment,
    suite_sections,
)
from repro.api.serve import ReproServer, run_server
from repro.api.session import Session
from repro.api.types import (
    API_SCHEMA_VERSION,
    ApiError,
    EvaluateRequest,
    EvaluateResponse,
    ExperimentRequest,
    ExperimentResponse,
    LoopSpec,
    MachineSpec,
    PayloadTooLargeError,
    PressureRequest,
    PressureResponse,
    REQUEST_KINDS,
    ReportRequest,
    ReportResponse,
    RequestValidationError,
    ScheduleRequest,
    ScheduleResponse,
    SchemaVersionError,
    ServerSaturatedError,
    SweepRequest,
    SweepResponse,
    UnknownExperimentError,
    ValidateRequest,
    ValidateResponse,
    request_from_dict,
    response_from_dict,
)

__all__ = [
    "API_SCHEMA_VERSION",
    "ApiError",
    "EXPERIMENTS",
    "EvaluateRequest",
    "EvaluateResponse",
    "Experiment",
    "ExperimentRequest",
    "ExperimentResponse",
    "LoopSpec",
    "MachineSpec",
    "Param",
    "PayloadTooLargeError",
    "PressureRequest",
    "PressureResponse",
    "REQUEST_KINDS",
    "ReportRequest",
    "ReportResponse",
    "ReproServer",
    "RequestValidationError",
    "ScheduleRequest",
    "ScheduleResponse",
    "SchemaVersionError",
    "ServerSaturatedError",
    "Session",
    "SweepRequest",
    "SweepResponse",
    "UnknownExperimentError",
    "ValidateRequest",
    "ValidateResponse",
    "capabilities",
    "get_experiment",
    "list_experiments",
    "register_experiment",
    "request_from_dict",
    "response_from_dict",
    "run_server",
    "suite_sections",
]
