"""The facade's stateful entry point: one :class:`Session`, many requests.

A Session owns the things every request needs -- default
:class:`~repro.api.types.MachineSpec`, default pipeline policies, and one
:class:`~repro.engine.pool.Engine` (result cache + worker pool) -- and
dispatches the typed requests of :mod:`repro.api.types` to the core.
Because the engine is shared, concurrent callers (threads in this
process, clients of ``python -m repro serve``) share cache hits and the
worker pool: the second identical request costs a lookup, not a
recomputation.

Thread safety: a session-level lock serializes access to the engine and
cache (their bookkeeping is not thread-safe); parallelism inside one
request still fans out over the engine's worker processes.  The lock is
held only around core evaluation, so request validation and response
serialization stay concurrent.

Every engine-backed request (evaluate, pressure, sweep, experiment) rides
the engine's grid-batched execution under the default kernel tier: cache
misses are grouped per loop and evaluated against one shared
:class:`repro.kernel.batch.LoopChain`, so an experiment's sweep of models
and budgets over one loop costs one schedule, not one per point.  Response
payloads are bit-identical to per-point execution.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:
    from repro.machine.config import MachineConfig

from repro.api.registry import get_experiment
from repro.api.types import (
    ApiError,
    EvaluateRequest,
    EvaluateResponse,
    ExperimentRequest,
    ExperimentResponse,
    LoopSpec,
    MachineSpec,
    PressureRequest,
    PressureResponse,
    ReportRequest,
    ReportResponse,
    RequestValidationError,
    ScheduleRequest,
    ScheduleResponse,
    SweepRequest,
    SweepResponse,
    ValidateRequest,
    ValidateResponse,
    WireMessage,
)
from repro.core.swapping import SwapEstimator
from repro.engine.cache import ResultCache
from repro.engine.jobs import EvalJob, JobResult, evaluate_job, pressure_job
from repro.engine.pool import Engine
from repro.engine.sweep import (
    SweepOutcome,
    SweepSpec,
    aggregate_rows,
    format_outcome,
    outcome_headers,
    run_sweep,
)


class Session:
    """Owns defaults + engine; turns requests into responses.

    ``engine=None`` builds a private engine: serial (``workers=0``) with
    an in-memory cache by default -- deterministic and hermetic -- or
    disk-backed when ``cache_dir`` is given.  Pass an explicit
    :class:`~repro.engine.pool.Engine` to share cache and workers with
    other machinery (the CLI does exactly that).

    The default machine and policy knobs fill every request field left
    ``None``, so a session configured once evaluates everything under a
    consistent regime.
    """

    def __init__(
        self,
        *,
        engine: Engine | None = None,
        workers: int = 0,
        cache_dir: str | Path | None = None,
        machine: MachineSpec | None = None,
        swap_estimator: str = SwapEstimator.MAXLIVE.value,
        victim_policy: str = "longest",
        pressure_strategy: str = "spill",
        ii_escalation: str = "increment",
    ) -> None:
        if engine is None:
            engine = Engine(
                workers=workers, cache=ResultCache(directory=cache_dir)
            )
        self.engine = engine
        self.machine = machine if machine is not None else MachineSpec()
        self.swap_estimator = swap_estimator
        self.victim_policy = victim_policy
        self.pressure_strategy = pressure_strategy
        self.ii_escalation = ii_escalation
        self._lock = threading.Lock()
        self.requests_served = 0
        #: Optional :class:`repro.api.dispatch.BatchDispatcher`.  When
        #: set (the scale-out serve workers do), single-job requests are
        #: coalesced with concurrent ones into one engine batch instead
        #: of mapping jobs one at a time under the lock.
        self.dispatcher = None
        # Fail on a bad session default now, not on the first request.
        EvalJob(
            kind="pressure",
            loop=LoopSpec(kind="example").resolve(),
            machine=self.machine.resolve(),
            swap_estimator=swap_estimator,
            victim_policy=victim_policy,
            pressure_strategy=pressure_strategy,
            ii_escalation=ii_escalation,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the engine's worker pool; the session stays usable."""
        if self.dispatcher is not None:
            self.dispatcher.close()
            self.dispatcher = None
        self.engine.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _machine(self, spec: MachineSpec | None) -> MachineConfig:
        return (spec if spec is not None else self.machine).resolve()

    def _run_job(self, job: EvalJob) -> tuple[JobResult, bool]:
        """Execute one engine job; returns ``(result, served_from_cache)``.

        With a dispatcher installed the job rides a coalesced batch
        (identical numbers; see :mod:`repro.api.dispatch`); either way
        the ``cached`` flag is the engine's own per-position provenance,
        not a stats-delta guess.
        """
        if self.dispatcher is not None:
            return self.dispatcher.submit(job)
        flags: list[bool] = []
        with self._lock:
            result = self.engine.map([job], cached_flags=flags)[0]
            self.requests_served += 1
        return result, flags[0]

    def stats(self) -> dict:
        """Live session counters (the serve front-end's health payload).

        Deliberately lock-free: health/liveness must answer while a long
        request holds the session lock.  The counters are plain ints read
        atomically; a snapshot taken mid-request may be one event stale,
        which is fine for monitoring.
        """
        cache = (
            self.engine.cache.stats.as_dict()
            if self.engine.cache is not None
            else None
        )
        return {
            "requests_served": self.requests_served,
            "engine_jobs": self.engine.jobs_run,
            "cache": cache,
        }

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def schedule(self, request: ScheduleRequest) -> ScheduleResponse:
        """Modulo-schedule the named loop; no engine, always computed."""
        from repro.sched.mii import minimum_ii
        from repro.sched.modulo import schedule_loop

        loop = request.loop.resolve()
        machine = self._machine(request.machine)
        mii = minimum_ii(loop.graph, machine)
        schedule = schedule_loop(loop, machine)
        with self._lock:
            self.requests_served += 1
        return ScheduleResponse(
            loop_name=loop.name,
            machine=machine.name,
            ii=schedule.ii,
            mii=mii.mii,
            res_mii=mii.res,
            rec_mii=mii.rec,
            stage_count=schedule.stage_count,
            n_ops=loop.size,
            kernel=schedule.format_kernel(),
        )

    def pressure(self, request: PressureRequest) -> PressureResponse:
        """All-model register pressure of one loop, engine-cached."""
        machine = self._machine(request.machine)
        job = pressure_job(
            request.loop.resolve(),
            machine,
            swap_estimator=SwapEstimator(
                request.swap_estimator or self.swap_estimator
            ),
        )
        result, cached = self._run_job(job)
        return PressureResponse(
            loop_name=result.loop_name,
            machine=machine.name,
            trip_count=result.trip_count,
            ii=result.ii,
            mii=result.mii,
            unified=result.unified,
            partitioned=result.partitioned,
            swapped=result.swapped,
            max_live=result.max_live,
            cached=cached,
        )

    def evaluate(self, request: EvaluateRequest) -> EvaluateResponse:
        """Full spill-pipeline evaluation of one loop, engine-cached."""
        from repro.core.models import Model

        machine = self._machine(request.machine)
        job = evaluate_job(
            request.loop.resolve(),
            machine,
            Model(request.model),
            request.register_budget,
            swap_estimator=SwapEstimator(
                request.swap_estimator or self.swap_estimator
            ),
            victim_policy=request.victim_policy or self.victim_policy,
            pressure_strategy=(
                request.pressure_strategy or self.pressure_strategy
            ),
            ii_escalation=request.ii_escalation or self.ii_escalation,
            max_rounds=request.max_rounds,
        )
        result, cached = self._run_job(job)
        return EvaluateResponse(
            loop_name=result.loop_name,
            machine=machine.name,
            model=request.model,
            register_budget=request.register_budget,
            trip_count=result.trip_count,
            ii=result.ii,
            mii=result.mii,
            spilled_values=result.spilled_values,
            ii_increases=result.ii_increases,
            fits=result.fits,
            memory_ops_per_iteration=result.memory_ops_per_iteration,
            spill_ops_per_iteration=result.spill_ops_per_iteration,
            memory_bandwidth=result.memory_bandwidth,
            registers_required=result.registers_required,
            cycles=result.cycles,
            traffic_density=result.traffic_density,
            cached=cached,
        )

    @staticmethod
    def _sweep_response(
        spec: SweepSpec, outcome: SweepOutcome
    ) -> SweepResponse:
        return SweepResponse(
            name=spec.name,
            kind=spec.kind,
            description=spec.describe(),
            headers=tuple(outcome_headers(outcome)),
            rows=tuple(tuple(row) for row in aggregate_rows(outcome)),
            points=len(outcome.points),
            elapsed=outcome.elapsed,
            cache_hits=outcome.cache_stats.get("hits", 0),
            cache_misses=outcome.cache_stats.get("misses", 0),
            text=format_outcome(outcome),
        )

    def sweep(
        self, request: SweepRequest, echo_progress: bool = False
    ) -> SweepResponse:
        """Execute a named grid; aggregates plus the rendered report."""
        spec = request.to_spec()
        with self._lock:
            outcome = run_sweep(
                spec, engine=self.engine, echo_progress=echo_progress
            )
            self.requests_served += 1
        return self._sweep_response(spec, outcome)

    def sweep_stream(self, request: SweepRequest) -> Iterator[dict]:
        """Execute a sweep, yielding partial outcomes as points complete.

        A generator of JSON-shaped events (the serve front-end writes
        them as newline-delimited JSON):

        * ``{"event": "point", ...}`` per finished grid point, in
          completion order -- under the default batch tier that means one
          burst per loop group as its shared chain resolves;
        * ``{"event": "result", "response": {...}}`` with the full
          :class:`SweepResponse` dict, exactly what the non-streaming
          endpoint returns;
        * ``{"event": "error", "error": {...}}`` instead of ``result``
          if the sweep fails mid-flight (the envelope matches the
          non-streaming error shape).

        The sweep runs in a worker thread (holding the session lock like
        any other sweep) while the caller's thread drains events, so a
        slow consumer never stalls the engine -- events queue up
        unboundedly, but a sweep's point count is bounded by its spec.
        """
        import queue as _queue

        from repro.engine.sweep import build_points

        spec = request.to_spec()
        points = build_points(spec)  # deterministic: same order run_sweep uses
        total = len(points)
        events: "_queue.SimpleQueue" = _queue.SimpleQueue()

        def on_result(index: int, job: EvalJob, result: JobResult) -> None:
            point = points[index]
            events.put(
                {
                    "event": "point",
                    "index": index,
                    "total": total,
                    "loop": result.loop_name,
                    "machine": point.machine,
                    "model": point.model,
                    "budget": point.budget,
                    "ii": result.ii,
                    "fits": getattr(result, "fits", None),
                }
            )

        def worker() -> None:
            try:
                with self._lock:
                    previous = self.engine.on_result
                    self.engine.on_result = on_result
                    try:
                        outcome = run_sweep(spec, engine=self.engine)
                    finally:
                        self.engine.on_result = previous
                    self.requests_served += 1
                response = self._sweep_response(spec, outcome)
                events.put(
                    {"event": "result", "response": response.to_dict()}
                )
            except Exception as exc:  # noqa: BLE001 - streamed envelope
                status = exc.status if isinstance(exc, ApiError) else 500
                events.put(
                    {
                        "event": "error",
                        "error": {
                            "type": type(exc).__name__,
                            "message": str(exc),
                            "status": status,
                        },
                    }
                )
            finally:
                events.put(None)

        threading.Thread(
            target=worker, name="repro-sweep-stream", daemon=True
        ).start()
        while True:
            item = events.get()
            if item is None:
                return
            yield item

    def experiment(self, request: ExperimentRequest) -> ExperimentResponse:
        """Run one registry entry; validated params, rendered report."""
        exp = get_experiment(request.name)
        params = exp.validate(request.params)
        with self._lock:
            start = time.perf_counter()
            result = exp.runner(engine=self.engine, **params)
            seconds = time.perf_counter() - start
            self.requests_served += 1
        return ExperimentResponse(
            name=exp.name,
            kind=exp.kind,
            title=exp.title,
            params=params,
            seconds=seconds,
            text=exp.format(result),
        )

    def validate(self, request: ValidateRequest) -> ValidateResponse:
        """Differentially validate one point by cycle-level execution.

        Always computed: the verdict must come from executing *this
        build's* pipeline output, so cached analytical results are
        deliberately bypassed.
        """
        # Runtime-only import (like report's): repro.validate drives the
        # pipeline, which the wire-type layer must not pull in at import.
        from repro.core.models import Model
        from repro.validate import reproducer_spec, validate_point

        loop = request.loop.resolve()
        machine_spec = (
            request.machine if request.machine is not None else self.machine
        )
        machine = machine_spec.resolve()
        model = Model(request.model)
        report = validate_point(
            loop,
            machine,
            model,
            request.register_budget,
            tiers=tuple(request.tiers),
            iterations=request.iterations,
            reproducer=reproducer_spec(
                loop,
                machine,
                model,
                request.register_budget,
                loop_spec=request.loop.to_dict(),
                machine_spec=machine_spec.to_dict(),
            ),
            static=request.static,
        )
        with self._lock:
            self.requests_served += 1
        return ValidateResponse(
            loop_name=loop.name,
            machine=machine.name,
            model=request.model,
            register_budget=request.register_budget,
            tiers=tuple(request.tiers),
            points=len(report.points),
            mismatches=len(report.mismatches),
            ok=report.ok,
            text=report.describe(),
            static_findings=(
                len(report.static.findings)
                if report.static is not None
                else -1
            ),
        )

    def report(self, request: ReportRequest) -> ReportResponse:
        """Generate (and optionally write) the reproduction artifact."""
        # Imported here: repro.report imports the suite runner, which
        # iterates this package's registry -- runtime-only use keeps the
        # import graph acyclic.
        from repro.report.build import generate_report
        from repro.report.expected import gate_summary

        sim_samples = request.sim_samples
        if sim_samples is None:
            # --check implies the sampled simulator cross-check; a plain
            # artifact render skips it (and its footer row) by default.
            from repro.validate import DEFAULT_SAMPLES

            sim_samples = DEFAULT_SAMPLES if request.check else 0
        static_check = request.static_check
        if static_check is None:
            # --check statically proves *all* points (simulation stays
            # sampled); a plain artifact render skips the proof.
            static_check = request.check
        with self._lock:
            result = generate_report(
                n_loops=request.n_loops,
                spill_loops=request.spill_loops,
                engine=self.engine,
                fmt=request.fmt,
                out_dir=request.out_dir,
                stamp=request.stamp,
                sim_samples=sim_samples,
                sim_seed=request.sim_seed,
                static_check=static_check,
            )
            self.requests_served += 1
        gated, failed = gate_summary(result.deltas)
        return ReportResponse(
            ok=result.ok,
            n_loops=request.n_loops,
            spill_loops=request.spill_loops,
            fmt=request.fmt,
            checks_gated=len(gated),
            failed_keys=tuple(d.expectation.key for d in failed),
            summary=result.summary(),
            path=str(result.path) if result.path is not None else None,
            text=result.text if request.include_text else None,
            sim_points=(
                len(result.sim.points) if result.sim is not None else 0
            ),
            sim_mismatches=(
                len(result.sim.mismatches) if result.sim is not None else 0
            ),
            sim_summary=(
                result.sim.describe() if result.sim is not None else None
            ),
            static_points=(
                len(result.static.points)
                if result.static is not None
                else 0
            ),
            static_findings=(
                result.static.findings_count
                if result.static is not None
                else 0
            ),
            static_summary=(
                result.static.describe()
                if result.static is not None
                else None
            ),
        )

    # ------------------------------------------------------------------
    # Generic dispatch
    # ------------------------------------------------------------------
    _HANDLERS = {
        ScheduleRequest: schedule,
        PressureRequest: pressure,
        EvaluateRequest: evaluate,
        SweepRequest: sweep,
        ExperimentRequest: experiment,
        ValidateRequest: validate,
        ReportRequest: report,
    }

    def submit(self, request: WireMessage) -> WireMessage:
        """Dispatch any request type to its handler."""
        handler = self._HANDLERS.get(type(request))
        if handler is None:
            raise RequestValidationError(
                f"unsupported request type {type(request).__name__}"
            )
        return handler(self, request)

    def submit_dict(self, data: dict) -> dict:
        """Wire-form dispatch: dict in, dict out (the serve hot path)."""
        from repro.api.types import request_from_dict

        return self.submit(request_from_dict(data)).to_dict()


__all__ = ["ApiError", "Session"]
