"""repro -- reproduction of "Non-Consistent Dual Register Files to Reduce
Register Pressure" (Llosa, Valero, Ayguade; HPCA 1995).

The package implements the paper's complete pipeline in pure Python:

* :mod:`repro.ir` -- loop bodies as data-dependence graphs (+ builder DSL);
* :mod:`repro.machine` -- VLIW machine configurations and register-file
  cost models;
* :mod:`repro.sched` -- iterative modulo scheduling;
* :mod:`repro.regalloc` -- lifetimes, MaxLive, wands-only first-fit
  allocation for rotating register files;
* :mod:`repro.core` -- the contribution: non-consistent dual register
  files (GL/LO/RO classification, dual allocation, greedy swapping, the
  Ideal/Unified/Partitioned/Swapped models);
* :mod:`repro.pipeline` -- the pass pipeline: composable per-loop flows
  over a memoizing :class:`~repro.pipeline.context.PassContext`, with
  pluggable spill/escalation policies;
* :mod:`repro.spill` -- the naive spiller and traffic metrics;
* :mod:`repro.sim` -- a verifying cycle-level kernel simulator;
* :mod:`repro.workloads` -- kernels and the calibrated Perfect-Club-like
  synthetic suite;
* :mod:`repro.analysis` / :mod:`repro.experiments` -- distributions,
  performance aggregation, shared table/chart primitives, and one driver
  per table/figure;
* :mod:`repro.report` -- the reproduction artifact: paper-delta
  validation (``python -m repro report --check``), Markdown/HTML
  rendering, provenance;
* :mod:`repro.api` -- the versioned typed facade: ``Session``,
  JSON-round-trippable request/response types, the experiment registry,
  and the concurrent ``python -m repro serve`` front-end.

Quickstart::

    from repro import Model, evaluate_loop, paper_config
    from repro.workloads import example_loop

    ev = evaluate_loop(example_loop(), paper_config(3), Model.SWAPPED, 32)
    print(ev.ii, ev.requirement.registers)
"""

from repro.api import (
    API_SCHEMA_VERSION,
    ApiError,
    EvaluateRequest,
    ExperimentRequest,
    LoopSpec,
    MachineSpec,
    PressureRequest,
    ReportRequest,
    ScheduleRequest,
    Session,
    SweepRequest,
    capabilities,
    get_experiment,
    list_experiments,
)
from repro.core.models import Model, Requirement, required_registers
from repro.core.pressure import PressureReport, pressure_report
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.pool import Engine, serial_engine
from repro.engine.sweep import SweepSpec, format_outcome, named_sweep, run_sweep
from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop
from repro.machine.config import (
    MachineConfig,
    clustered_config,
    example_config,
    paper_config,
    pxly,
)
from repro.pipeline import (
    ArtifactStore,
    PassContext,
    Pipeline,
    SPILL_POLICIES,
    evaluation_pipeline,
    pressure_pipeline,
    run_evaluation,
    run_pressure,
)
from repro.report import ReportResult, generate_report
from repro.sched.compact import compact_schedule
from repro.sched.modulo import modulo_schedule, schedule_loop
from repro.spill.spiller import LoopEvaluation, evaluate_loop

__version__ = "1.0.0"

__all__ = [
    "API_SCHEMA_VERSION",
    "ApiError",
    "ArtifactStore",
    "Engine",
    "EvaluateRequest",
    "ExperimentRequest",
    "LoopSpec",
    "MachineSpec",
    "PressureRequest",
    "ReportRequest",
    "ScheduleRequest",
    "Session",
    "SweepRequest",
    "capabilities",
    "get_experiment",
    "list_experiments",
    "Loop",
    "LoopBuilder",
    "LoopEvaluation",
    "MachineConfig",
    "Model",
    "PassContext",
    "Pipeline",
    "PressureReport",
    "ReportResult",
    "Requirement",
    "ResultCache",
    "SPILL_POLICIES",
    "SweepSpec",
    "clustered_config",
    "compact_schedule",
    "default_cache_dir",
    "evaluate_loop",
    "evaluation_pipeline",
    "example_config",
    "format_outcome",
    "generate_report",
    "modulo_schedule",
    "named_sweep",
    "paper_config",
    "pressure_pipeline",
    "pressure_report",
    "pxly",
    "required_registers",
    "run_evaluation",
    "run_pressure",
    "run_sweep",
    "schedule_loop",
    "serial_engine",
    "__version__",
]
