"""Spilling: what happens when a loop does not fit its register file.

The paper handles over-budget loops by adding spill code and, when that
cannot help, increasing the II (Section 5.4); the resulting extra memory
traffic is what Figure 9 measures.  :mod:`~repro.spill.spiller` rewrites
the dependence graph (store after the producer, load before each
consumer) and iterates schedule -> allocate -> spill until the loop fits,
delegating victim choice and II escalation to the pluggable policies of
:mod:`repro.pipeline.policies`.  :mod:`~repro.spill.traffic` aggregates
memory accesses into the bus-density metric.

Key entry points: :func:`~repro.spill.spiller.evaluate_loop` (the full
pipeline, returns a :class:`LoopEvaluation`),
:func:`~repro.spill.spiller.spill_value`, and
:func:`~repro.spill.traffic.aggregate_density` /
:func:`~repro.spill.traffic.aggregate_traffic` for Figure 9.
"""

from repro.spill.spiller import (
    LoopEvaluation,
    SpillError,
    evaluate_loop,
    pick_victim,
    spill_value,
    spillable_values,
)
from repro.spill.traffic import (
    aggregate_density,
    aggregate_traffic,
    loop_density,
    memory_ops,
    spill_memory_ops,
)

__all__ = [
    "LoopEvaluation",
    "SpillError",
    "aggregate_density",
    "aggregate_traffic",
    "evaluate_loop",
    "loop_density",
    "memory_ops",
    "pick_victim",
    "spill_memory_ops",
    "spill_value",
    "spillable_values",
]
