"""Spill-code insertion and memory-traffic metrics."""

from repro.spill.spiller import (
    LoopEvaluation,
    SpillError,
    evaluate_loop,
    pick_victim,
    spill_value,
    spillable_values,
)
from repro.spill.traffic import (
    aggregate_density,
    aggregate_traffic,
    loop_density,
    memory_ops,
    spill_memory_ops,
)

__all__ = [
    "LoopEvaluation",
    "SpillError",
    "aggregate_density",
    "aggregate_traffic",
    "evaluate_loop",
    "loop_density",
    "memory_ops",
    "pick_victim",
    "spill_memory_ops",
    "spill_value",
    "spillable_values",
]
