"""The paper's "naive" spiller: graph rewriting plus the evaluation entry.

Section 5.4 pseudo-code::

    DO
      modulo scheduling
      register allocation
      IF registers needed > physical registers
        select a value to spill out        (the one with the highest lifetime)
        modify the dependence graph
    UNTIL registers needed <= physical registers

Spilling a value rewrites the graph: a spill *store* is added after the
producer, and each consumer is redirected to its own spill *load* (so the
spilled value's register lifetime shrinks to producer-to-store, and each
reload lives only from the load to its consumer).  Store and loads are
connected by memory dependences carrying the original iteration distance.

This module owns that graph transform (:func:`spill_value`) and the
:class:`LoopEvaluation` report.  The iterative flow itself -- measure,
spill, escalate the II when nothing is spillable, give up on plateaus --
lives in the pass pipeline (:func:`repro.pipeline.pipelines.run_evaluation`)
with victim selection and escalation pluggable through
:mod:`repro.pipeline.policies`; :func:`evaluate_loop` is the historical
entry point over it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model, Requirement
from repro.core.swapping import SwapEstimator
from repro.ir.ddg import DependenceGraph, EdgeKind
from repro.ir.loop import Loop
from repro.ir.operation import OpType, ValueRef
from repro.machine.config import MachineConfig
from repro.regalloc.lifetimes import Lifetime
from repro.sched.schedule import Schedule


def __getattr__(name: str) -> object:
    # ``VICTIM_POLICIES`` reflects the pipeline's policy registry, but the
    # pipeline package references this module at import time (for the graph
    # transform and the report dataclass), so the reverse edge resolves
    # lazily on first attribute access.
    if name == "VICTIM_POLICIES":
        from repro.pipeline.policies import SPILL_POLICIES

        return tuple(SPILL_POLICIES)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def spillable_values(graph: DependenceGraph) -> list[int]:
    """Values the spiller may pick: non-spill values with consumers."""
    from repro.pipeline.policies import spillable_values as select

    return select(graph)


def pick_victim(
    schedule: Schedule,
    policy: str = "longest",
    lts: dict[int, Lifetime] | None = None,
) -> int | None:
    """Select the value to spill under ``policy`` (ties: lowest id).

    Policies live in :data:`repro.pipeline.policies.SPILL_POLICIES`; the
    paper's is ``"longest"`` ("the value with the highest lifetime, which
    in general will free a higher number of registers").
    """
    from repro.pipeline.policies import pick_victim as select

    return select(schedule, policy=policy, lts=lts)


class SpillError(RuntimeError):
    """Raised when a value cannot be spilled."""


def spill_value(graph: DependenceGraph, op_id: int) -> DependenceGraph:
    """Return a new graph with the value of ``op_id`` spilled to memory."""
    from repro.kernel import consumer_map

    producer = graph.op(op_id)
    if not producer.defines_value:
        raise SpillError(f"{producer.name} defines no value")
    # Flat consumer adjacency, one pass over the graph (same pair order as
    # ``graph.consumers``), lifted back to operations where names matter.
    consumers = [
        (graph.op(consumer_id), distance)
        for consumer_id, distance in consumer_map(graph)[op_id]
    ]
    if not consumers:
        raise SpillError(f"{producer.name} has no consumers; nothing to spill")

    new_graph = graph.copy()
    symbol = f"spill.{producer.name}"
    store = new_graph.add_operation(
        OpType.STORE,
        (ValueRef(op_id, 0),),
        name=f"sst.{producer.name}",
        symbol=symbol,
        is_spill=True,
    )
    # One reload per (consumer, distance); a consumer using the value twice
    # at the same distance shares one load.
    reloads: dict[tuple[int, int], int] = {}
    for consumer, distance in consumers:
        key = (consumer.op_id, distance)
        if key in reloads:
            continue
        load = new_graph.add_operation(
            OpType.LOAD,
            (),
            name=f"sld.{producer.name}.{consumer.name}",
            symbol=symbol,
            is_spill=True,
        )
        new_graph.add_edge(
            store.op_id,
            load.op_id,
            kind=EdgeKind.MEMORY,
            distance=distance,
            min_delay=1,
        )
        reloads[key] = load.op_id
    rewired: set[int] = set()
    for consumer, _distance in consumers:
        if consumer.op_id in rewired:
            continue
        rewired.add(consumer.op_id)
        operands = []
        for operand in new_graph.op(consumer.op_id).operands:
            if isinstance(operand, ValueRef) and operand.producer == op_id:
                operands.append(ValueRef(reloads[(consumer.op_id, operand.distance)], 0))
            else:
                operands.append(operand)
        new_graph.set_operands(consumer.op_id, operands)
    return new_graph


@dataclass(frozen=True)
class LoopEvaluation:
    """Final state of one loop under one model and register budget."""

    loop: Loop
    machine: MachineConfig
    model: Model
    register_budget: int | None
    schedule: Schedule
    requirement: Requirement
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count

    @property
    def memory_bandwidth(self) -> int:
        return self.machine.memory_bandwidth

    @property
    def cycles(self) -> int:
        """Steady-state execution cycles: trip count times the final II."""
        return self.loop.trip_count * self.ii

    @property
    def memory_ops_per_iteration(self) -> int:
        return len(self.schedule.graph.memory_operations())

    @property
    def spill_ops_per_iteration(self) -> int:
        return sum(
            1 for op in self.schedule.graph.memory_operations() if op.is_spill
        )

    @property
    def traffic_density(self) -> float:
        """Average fraction of the memory bus used per cycle."""
        bandwidth = self.machine.memory_bandwidth
        return self.memory_ops_per_iteration / (self.ii * bandwidth)


def evaluate_loop(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    max_rounds: int = 200,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
) -> LoopEvaluation:
    """Run the full schedule/allocate/spill pipeline for one loop.

    ``register_budget`` is the size of the register file: of the single file
    for Unified, and of *each subfile* for Partitioned/Swapped (the paper
    compares a 32-register unified file against a dual file of two
    32-register subfiles -- same specifier width, roughly the same area as
    the consistent dual implementation).  ``None`` (or the Ideal model)
    disables spilling.

    ``victim_policy`` names a :data:`~repro.pipeline.policies.SPILL_POLICIES`
    entry; ``pressure_strategy`` selects among the Section 5.4 alternatives
    (``"spill"`` is the paper's choice, ``"increase_ii"`` never spills and
    only reschedules); ``ii_escalation`` names how the II grows when
    rescheduling (:data:`~repro.pipeline.policies.II_ESCALATIONS`).
    """
    # Imported here: the pipeline package imports this module for the
    # report dataclass and the graph transform, so the dependency must
    # stay one-way at import time.
    from repro.pipeline.pipelines import run_evaluation

    return run_evaluation(
        loop,
        machine,
        model,
        register_budget=register_budget,
        swap_estimator=swap_estimator,
        max_rounds=max_rounds,
        victim_policy=victim_policy,
        pressure_strategy=pressure_strategy,
        ii_escalation=ii_escalation,
    )


__all__ = [
    "LoopEvaluation",
    "SpillError",
    "VICTIM_POLICIES",
    "evaluate_loop",
    "pick_victim",
    "spill_value",
    "spillable_values",
]
