"""The paper's "naive" spiller and the per-loop evaluation pipeline.

Section 5.4 pseudo-code::

    DO
      modulo scheduling
      register allocation
      IF registers needed > physical registers
        select a value to spill out        (the one with the highest lifetime)
        modify the dependence graph
    UNTIL registers needed <= physical registers

Spilling a value rewrites the graph: a spill *store* is added after the
producer, and each consumer is redirected to its own spill *load* (so the
spilled value's register lifetime shrinks to producer-to-store, and each
reload lives only from the load to its consumer).  Store and loads are
connected by memory dependences carrying the original iteration distance.

Termination fallback: the naive policy alone cannot always reach the budget
(e.g. every value already spilled).  When no spillable candidate remains,
we reschedule with ``II + 1`` -- the paper's first alternative in Section 5.4
("reschedule the loop with an increased II") -- and record that the loop
needed it.  A round cap guards against pathological cases; loops that still
do not fit are flagged (``fits=False``) rather than silently dropped.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model, Requirement, required_registers
from repro.core.swapping import SwapEstimator
from repro.ir.ddg import DependenceGraph, EdgeKind
from repro.ir.loop import Loop
from repro.ir.operation import OpType, ValueRef
from repro.machine.config import MachineConfig
from repro.regalloc.lifetimes import lifetimes
from repro.sched.mii import minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import Schedule


class SpillError(RuntimeError):
    """Raised when a value cannot be spilled."""


def spill_value(graph: DependenceGraph, op_id: int) -> DependenceGraph:
    """Return a new graph with the value of ``op_id`` spilled to memory."""
    producer = graph.op(op_id)
    if not producer.defines_value:
        raise SpillError(f"{producer.name} defines no value")
    consumers = graph.consumers(op_id)
    if not consumers:
        raise SpillError(f"{producer.name} has no consumers; nothing to spill")

    new_graph = graph.copy()
    symbol = f"spill.{producer.name}"
    store = new_graph.add_operation(
        OpType.STORE,
        (ValueRef(op_id, 0),),
        name=f"sst.{producer.name}",
        symbol=symbol,
        is_spill=True,
    )
    # One reload per (consumer, distance); a consumer using the value twice
    # at the same distance shares one load.
    reloads: dict[tuple[int, int], int] = {}
    for consumer, distance in consumers:
        key = (consumer.op_id, distance)
        if key in reloads:
            continue
        load = new_graph.add_operation(
            OpType.LOAD,
            (),
            name=f"sld.{producer.name}.{consumer.name}",
            symbol=symbol,
            is_spill=True,
        )
        new_graph.add_edge(
            store.op_id,
            load.op_id,
            kind=EdgeKind.MEMORY,
            distance=distance,
            min_delay=1,
        )
        reloads[key] = load.op_id
    rewired: set[int] = set()
    for consumer, _distance in consumers:
        if consumer.op_id in rewired:
            continue
        rewired.add(consumer.op_id)
        operands = []
        for operand in new_graph.op(consumer.op_id).operands:
            if isinstance(operand, ValueRef) and operand.producer == op_id:
                operands.append(ValueRef(reloads[(consumer.op_id, operand.distance)], 0))
            else:
                operands.append(operand)
        new_graph.set_operands(consumer.op_id, operands)
    return new_graph


def spillable_values(graph: DependenceGraph) -> list[int]:
    """Values the naive spiller may pick: non-spill values with consumers."""
    result = []
    for op in graph.values():
        if op.is_spill:
            continue
        consumers = graph.consumers(op.op_id)
        if not consumers:
            continue
        # Skip values already spilled (their only consumer is a spill store).
        if all(c.is_spill and c.optype is OpType.STORE for c, _ in consumers):
            continue
        result.append(op.op_id)
    return result


#: Victim-selection policies for the spiller.  ``longest`` is the paper's
#: ("the value with the highest lifetime, which in general will free a
#: higher number of registers"); the others exist for the ablation study.
VICTIM_POLICIES = ("longest", "most_registers", "first")


def pick_victim(schedule: Schedule, policy: str = "longest") -> int | None:
    """Select the value to spill under ``policy`` (ties: lowest id).

    * ``longest`` -- highest lifetime (the paper's naive policy);
    * ``most_registers`` -- most simultaneously-live instances,
      ``ceil(lifetime / II)``: what the lifetime actually costs in registers;
    * ``first`` -- lowest op id (a deliberately bad baseline).
    """
    candidates = spillable_values(schedule.graph)
    if not candidates:
        return None
    lts = lifetimes(schedule)
    if policy == "longest":
        return max(candidates, key=lambda i: (lts[i].length, -i))
    if policy == "most_registers":
        return max(
            candidates,
            key=lambda i: (-(-lts[i].length // schedule.ii), -i),
        )
    if policy == "first":
        return min(candidates)
    raise ValueError(f"unknown victim policy {policy!r}")


@dataclass(frozen=True)
class LoopEvaluation:
    """Final state of one loop under one model and register budget."""

    loop: Loop
    machine: MachineConfig
    model: Model
    register_budget: int | None
    schedule: Schedule
    requirement: Requirement
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count

    @property
    def memory_bandwidth(self) -> int:
        return self.machine.memory_bandwidth

    @property
    def cycles(self) -> int:
        """Steady-state execution cycles: trip count times the final II."""
        return self.loop.trip_count * self.ii

    @property
    def memory_ops_per_iteration(self) -> int:
        return len(self.schedule.graph.memory_operations())

    @property
    def spill_ops_per_iteration(self) -> int:
        return sum(
            1 for op in self.schedule.graph.memory_operations() if op.is_spill
        )

    @property
    def traffic_density(self) -> float:
        """Average fraction of the memory bus used per cycle."""
        bandwidth = self.machine.memory_bandwidth
        return self.memory_ops_per_iteration / (self.ii * bandwidth)


def evaluate_loop(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    max_rounds: int = 200,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
) -> LoopEvaluation:
    """Run the full schedule/allocate/spill pipeline for one loop.

    ``register_budget`` is the size of the register file: of the single file
    for Unified, and of *each subfile* for Partitioned/Swapped (the paper
    compares a 32-register unified file against a dual file of two
    32-register subfiles -- same specifier width, roughly the same area as
    the consistent dual implementation).  ``None`` (or the Ideal model)
    disables spilling.

    ``pressure_strategy`` selects among the Section 5.4 alternatives:
    ``"spill"`` is the paper's choice (naive spiller, II fallback);
    ``"increase_ii"`` is the paper's first alternative -- never spill, just
    reschedule at II + 1 until the requirement fits ("this option would
    produce an extremely inefficient code"; the A3 ablation quantifies it).
    """
    if pressure_strategy not in ("spill", "increase_ii"):
        raise ValueError(f"unknown pressure strategy {pressure_strategy!r}")
    graph = loop.graph
    mii = minimum_ii(graph, machine).mii
    budget = None if model is Model.IDEAL else register_budget
    min_ii = 1
    spilled = 0
    ii_increases = 0
    fits = True
    # Plateau detection: when only II increases remain and the requirement
    # stops shrinking, the pressure is issue-burst-bound (the scheduler
    # packs producers densely whatever the II) and no amount of rescheduling
    # helps -- give up honestly instead of spinning to max_rounds.
    stale_increases = 0
    best_requirement: int | None = None

    for _ in range(max_rounds):
        schedule = modulo_schedule(graph, machine, min_ii=min_ii)
        requirement = required_registers(
            schedule, model, swap_estimator=swap_estimator
        )
        if budget is None or requirement.registers <= budget:
            break
        victim = (
            pick_victim(schedule, policy=victim_policy)
            if pressure_strategy == "spill"
            else None
        )
        if victim is None:
            if best_requirement is None or requirement.registers < best_requirement:
                best_requirement = requirement.registers
                stale_increases = 0
            else:
                stale_increases += 1
                if stale_increases >= 8:
                    fits = False
                    break
            min_ii = schedule.ii + 1
            ii_increases += 1
            continue
        graph = spill_value(graph, victim)
        spilled += 1
    else:
        fits = budget is None or requirement.registers <= budget

    return LoopEvaluation(
        loop=loop,
        machine=machine,
        model=model,
        register_budget=register_budget,
        schedule=schedule,
        requirement=requirement,
        mii=mii,
        spilled_values=spilled,
        ii_increases=ii_increases,
        fits=fits,
    )


__all__ = [
    "LoopEvaluation",
    "SpillError",
    "VICTIM_POLICIES",
    "evaluate_loop",
    "pick_victim",
    "spill_value",
    "spillable_values",
]
