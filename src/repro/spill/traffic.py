"""Memory-traffic metrics (paper, Section 5.4 and Figure 9).

The paper distinguishes *memory traffic* (total accesses) from the *density
of memory traffic*: "the fraction of the bus bandwidth used on average each
cycle".  Spill code raises both; density is the metric reported because it
(1) can raise the II and (2) loads a real memory system even when the II is
unchanged.

Aggregate density over a workload weights each loop by its execution time,
like every dynamic number in the paper.

The aggregates accept anything exposing ``trip_count``, ``cycles``,
``memory_ops_per_iteration`` and ``memory_bandwidth`` -- both the full
:class:`~repro.spill.spiller.LoopEvaluation` and the engine's summary
records (:class:`repro.engine.jobs.EvalResult`).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.ir.ddg import DependenceGraph
from repro.spill.spiller import LoopEvaluation


def memory_ops(graph: DependenceGraph) -> int:
    """Memory accesses per iteration of the loop body."""
    return len(graph.memory_operations())


def spill_memory_ops(graph: DependenceGraph) -> int:
    """Spill-introduced accesses per iteration."""
    return sum(1 for op in graph.memory_operations() if op.is_spill)


def loop_density(evaluation: LoopEvaluation) -> float:
    """Bus-bandwidth fraction one loop uses on average per cycle."""
    return evaluation.traffic_density


def aggregate_density(evaluations: Sequence[LoopEvaluation]) -> float:
    """Execution-time-weighted average density over a workload.

    Total accesses divided by total bus slot capacity over all executed
    cycles: ``sum(trips * mem_ops) / sum(trips * II * bandwidth)``.
    """
    accesses = 0
    capacity = 0
    for ev in evaluations:
        accesses += ev.trip_count * ev.memory_ops_per_iteration
        capacity += ev.cycles * ev.memory_bandwidth
    return accesses / capacity if capacity else 0.0


def aggregate_traffic(evaluations: Iterable[LoopEvaluation]) -> int:
    """Total dynamic memory accesses over a workload."""
    return sum(
        ev.trip_count * ev.memory_ops_per_iteration for ev in evaluations
    )


__all__ = [
    "aggregate_density",
    "aggregate_traffic",
    "loop_density",
    "memory_ops",
    "spill_memory_ops",
]
