"""The four register-file models evaluated in the paper (Section 5.2).

* **Ideal** -- infinitely many registers; upper bound on performance.
* **Unified** -- a traditional unified file *and* the consistent dual file
  (both subfiles duplicate every value, so capacity equals a single file).
* **Partitioned** -- the non-consistent dual file with the scheduler's own
  cluster assignment and no swapping.
* **Swapped** -- Partitioned plus the greedy swapping post-pass.

:func:`required_registers` maps a schedule to the register requirement under
each model; the spiller (:mod:`repro.spill`) drives it in a loop when a
finite register file forces spill code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.clustering import ClusterAssignment, scheduler_assignment
from repro.core.dualfile import DualAllocation, allocate_dual
from repro.core.swapping import SwapEstimator, SwapResult, greedy_swap
from repro.regalloc.allocation import UnifiedAllocation, allocate_unified
from repro.regalloc.lifetimes import Lifetime
from repro.sched.schedule import Schedule


class Model(enum.Enum):
    """Register-file organization under evaluation."""

    IDEAL = "ideal"
    UNIFIED = "unified"
    PARTITIONED = "partitioned"
    SWAPPED = "swapped"

    @property
    def is_dual(self) -> bool:
        return self in (Model.PARTITIONED, Model.SWAPPED)


@dataclass(frozen=True)
class Requirement:
    """Register requirement of one schedule under one model."""

    model: Model
    registers: int
    #: Unified allocation (Ideal/Unified models).
    unified: UnifiedAllocation | None = None
    #: Dual allocation (Partitioned/Swapped models).
    dual: DualAllocation | None = None
    #: Swapping outcome (Swapped model only).
    swap: SwapResult | None = None

    @property
    def assignment(self) -> ClusterAssignment | None:
        if self.dual is not None:
            return self.dual.assignment
        return None


def unified_requirement(
    schedule: Schedule,
    model: Model = Model.UNIFIED,
    lts: dict[int, Lifetime] | None = None,
    unified: UnifiedAllocation | None = None,
) -> Requirement:
    """Requirement of the single-file models (Ideal reports it too)."""
    if unified is None:
        unified = allocate_unified(schedule, lts=lts)
    return Requirement(
        model=model, registers=unified.registers_required, unified=unified
    )


def partitioned_requirement(
    schedule: Schedule,
    assignment: ClusterAssignment | None = None,
    lts: dict[int, Lifetime] | None = None,
) -> Requirement:
    """Requirement of the dual file under the scheduler's own assignment."""
    if assignment is None:
        assignment = scheduler_assignment(schedule)
    dual = allocate_dual(schedule, assignment, lts=lts)
    return Requirement(
        model=Model.PARTITIONED, registers=dual.registers_required, dual=dual
    )


def swapped_requirement(
    schedule: Schedule,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    lts: dict[int, Lifetime] | None = None,
) -> Requirement:
    """Requirement of the dual file after the greedy swapping post-pass.

    Swapping and moving preserve issue times, so a precomputed ``lts``
    stays valid for the swapped schedule's allocation too.
    """
    swap = greedy_swap(schedule, estimator=swap_estimator, lts=lts)
    dual = allocate_dual(swap.schedule, swap.assignment, lts=lts)
    return Requirement(
        model=Model.SWAPPED,
        registers=dual.registers_required,
        dual=dual,
        swap=swap,
    )


def required_registers(
    schedule: Schedule,
    model: Model,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    lts: dict[int, Lifetime] | None = None,
    assignment: ClusterAssignment | None = None,
) -> Requirement:
    """Compute the register requirement of ``schedule`` under ``model``.

    The Ideal model reports the unified requirement (useful for statistics)
    but callers must not apply a budget to it.

    ``lts`` (a precomputed ``lifetimes(schedule)``) and ``assignment`` (a
    precomputed ``scheduler_assignment(schedule)``) let the pass pipeline
    share analysis across models.  The pipeline's memoizing
    ``ArtifactStore.requirement`` dispatches to the same per-model helpers
    above, so the two paths cannot drift.
    """
    if model in (Model.IDEAL, Model.UNIFIED):
        return unified_requirement(schedule, model, lts=lts)
    if model is Model.PARTITIONED:
        return partitioned_requirement(schedule, assignment, lts=lts)
    if model is Model.SWAPPED:
        return swapped_requirement(schedule, swap_estimator, lts=lts)
    raise ValueError(f"unknown model {model!r}")  # pragma: no cover


__all__ = [
    "Model",
    "Requirement",
    "partitioned_requirement",
    "required_registers",
    "swapped_requirement",
    "unified_requirement",
]
