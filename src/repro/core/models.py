"""The four register-file models evaluated in the paper (Section 5.2).

* **Ideal** -- infinitely many registers; upper bound on performance.
* **Unified** -- a traditional unified file *and* the consistent dual file
  (both subfiles duplicate every value, so capacity equals a single file).
* **Partitioned** -- the non-consistent dual file with the scheduler's own
  cluster assignment and no swapping.
* **Swapped** -- Partitioned plus the greedy swapping post-pass.

:func:`required_registers` maps a schedule to the register requirement under
each model; the spiller (:mod:`repro.spill`) drives it in a loop when a
finite register file forces spill code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.clustering import ClusterAssignment, scheduler_assignment
from repro.core.dualfile import DualAllocation, allocate_dual
from repro.core.swapping import SwapEstimator, SwapResult, greedy_swap
from repro.regalloc.allocation import UnifiedAllocation, allocate_unified
from repro.sched.schedule import Schedule


class Model(enum.Enum):
    """Register-file organization under evaluation."""

    IDEAL = "ideal"
    UNIFIED = "unified"
    PARTITIONED = "partitioned"
    SWAPPED = "swapped"

    @property
    def is_dual(self) -> bool:
        return self in (Model.PARTITIONED, Model.SWAPPED)


@dataclass(frozen=True)
class Requirement:
    """Register requirement of one schedule under one model."""

    model: Model
    registers: int
    #: Unified allocation (Ideal/Unified models).
    unified: UnifiedAllocation | None = None
    #: Dual allocation (Partitioned/Swapped models).
    dual: DualAllocation | None = None
    #: Swapping outcome (Swapped model only).
    swap: SwapResult | None = None

    @property
    def assignment(self) -> ClusterAssignment | None:
        if self.dual is not None:
            return self.dual.assignment
        return None


def required_registers(
    schedule: Schedule,
    model: Model,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> Requirement:
    """Compute the register requirement of ``schedule`` under ``model``.

    The Ideal model reports the unified requirement (useful for statistics)
    but callers must not apply a budget to it.
    """
    if model in (Model.IDEAL, Model.UNIFIED):
        unified = allocate_unified(schedule)
        return Requirement(
            model=model,
            registers=unified.registers_required,
            unified=unified,
        )
    if model is Model.PARTITIONED:
        dual = allocate_dual(schedule, scheduler_assignment(schedule))
        return Requirement(
            model=model, registers=dual.registers_required, dual=dual
        )
    if model is Model.SWAPPED:
        swap = greedy_swap(schedule, estimator=swap_estimator)
        dual = allocate_dual(swap.schedule, swap.assignment)
        return Requirement(
            model=model,
            registers=dual.registers_required,
            dual=dual,
            swap=swap,
        )
    raise ValueError(f"unknown model {model!r}")  # pragma: no cover


__all__ = ["Model", "Requirement", "required_registers"]
