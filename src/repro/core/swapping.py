"""Greedy swapping of operations between clusters (paper, Section 5.2).

After scheduling, the *Swapped* model runs a post-pass that exchanges pairs
of operations to reduce the dual-file register requirement.  Two operations
can swap iff they

* occupy the same kernel cycle (same ``time mod II``),
* execute on the same kind of functional unit, and
* currently sit in different clusters.

Each greedy step evaluates every candidate, applies the one with the largest
reduction of the estimator, and repeats until nothing improves.  The paper's
estimator is the per-cluster MaxLive lower bound ("due to the cost involved
to allocate registers, the registers required ... is estimated by a lower
bound"); an exact first-fit estimator is available for the ablation study.

Swapping serves the two goals of Section 4.1: balancing left-only against
right-only registers, and turning globals into locals by co-locating a
value's consumers.

Extension (``allow_moves=True``): in addition to pairwise swaps, a single
operation may *move* to an idle unit of the same kind in another cluster at
the same kernel cycle.  This approximates the paper's rejected first option
("scheduling operations in the proper cluster") without touching the
scheduler, and is evaluated in the A4 ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import kernel
from repro.core.clustering import ClusterAssignment, scheduler_assignment
from repro.core.dualfile import allocate_dual, dual_max_live
from repro.kernel.swap import greedy_swap_search
from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.sched.schedule import Schedule


class SwapEstimator(enum.Enum):
    """How a candidate assignment's register requirement is estimated."""

    MAXLIVE = "maxlive"  # the paper's lower-bound estimator
    FIRSTFIT = "firstfit"  # exact allocation (expensive; ablation only)


@dataclass(frozen=True)
class SwapResult:
    """Outcome of the greedy swapping pass."""

    schedule: Schedule
    assignment: ClusterAssignment
    swaps: tuple[tuple[int, int], ...]
    estimate_before: int
    estimate_after: int
    #: (op_id, new_instance) relocations applied when moves are enabled.
    moves: tuple[tuple[int, int], ...] = field(default=())

    @property
    def n_swaps(self) -> int:
        return len(self.swaps)

    @property
    def n_moves(self) -> int:
        return len(self.moves)


def _candidate_pairs(
    schedule: Schedule, assignment: ClusterAssignment
) -> list[tuple[int, int]]:
    """Swappable pairs under the current assignment."""
    by_slot: dict[tuple[int, str], list[int]] = {}
    for op in schedule.graph.operations:
        placement = schedule.placement(op.op_id)
        key = (placement.row(schedule.ii), placement.pool)
        by_slot.setdefault(key, []).append(op.op_id)
    pairs = []
    for ops in by_slot.values():
        for i, a in enumerate(ops):
            for b in ops[i + 1 :]:
                if assignment[a] != assignment[b]:
                    pairs.append((a, b))
    return pairs


def _candidate_moves(
    schedule: Schedule,
    instances: dict[int, int],
) -> list[tuple[int, int]]:
    """(op_id, free_instance) relocations to an idle unit elsewhere."""
    machine = schedule.machine
    occupied: dict[tuple[int, str], set[int]] = {}
    for op in schedule.graph.operations:
        placement = schedule.placement(op.op_id)
        key = (placement.row(schedule.ii), placement.pool)
        occupied.setdefault(key, set()).add(instances[op.op_id])
    moves = []
    for op in schedule.graph.operations:
        placement = schedule.placement(op.op_id)
        key = (placement.row(schedule.ii), placement.pool)
        current_cluster = machine.cluster_of_instance(
            placement.pool, instances[op.op_id]
        )
        for instance in range(machine.units(placement.pool)):
            if instance in occupied[key]:
                continue
            if (
                machine.cluster_of_instance(placement.pool, instance)
                != current_cluster
            ):
                moves.append((op.op_id, instance))
    return moves


def greedy_swap(
    schedule: Schedule,
    assignment: ClusterAssignment | None = None,
    estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    max_steps: int = 1000,
    allow_moves: bool = False,
    lts: dict[int, Lifetime] | None = None,
) -> SwapResult:
    """Run the paper's greedy swapping algorithm.

    Returns a :class:`SwapResult` whose ``assignment`` maps every operation
    to its final cluster and whose ``schedule`` has unit instances exchanged
    accordingly (so downstream consumers may keep using unit binding).

    ``lts`` is an optional precomputed ``lifetimes(schedule)`` (the pass
    pipeline memoizes it); swapping and moving never change issue times,
    only unit instances, so the lifetimes stay valid throughout.

    Candidates are evaluated through assignment/instance *overlays* on both
    paths -- no ``Schedule`` (and no placement dict) is ever copied per
    candidate; the single :meth:`Schedule.with_instances` copy happens once,
    on acceptance of the final assignment.  With kernels enabled the search
    runs on :func:`repro.kernel.swap.greedy_swap_search`, which additionally
    maintains the MAXLIVE estimator incrementally per candidate.
    """
    if assignment is None:
        assignment = scheduler_assignment(schedule)
    assignment = dict(assignment)
    if lts is None:
        lts = lifetimes(schedule)
    if kernel.kernels_enabled():
        return _greedy_swap_arrays(
            schedule, assignment, estimator, max_steps, allow_moves, lts
        )
    return _greedy_swap_dicts(
        schedule, assignment, estimator, max_steps, allow_moves, lts
    )


def _greedy_swap_arrays(
    schedule: Schedule,
    assignment: ClusterAssignment,
    estimator: SwapEstimator,
    max_steps: int,
    allow_moves: bool,
    lts: dict[int, Lifetime],
) -> SwapResult:
    """Kernel-backed search; identical trace and estimates to the legacy."""
    la = kernel.lower_loop(schedule.graph, schedule.machine)
    ii = schedule.ii
    placements = schedule.placements
    rows = [placements[op_id].time % ii for op_id in la.ids]
    insts = [placements[op_id].instance for op_id in la.ids]
    asg = [assignment[op_id] for op_id in la.ids]
    starts = [lts[la.ids[v]].start for v in la.values]
    ends = [lts[la.ids[v]].end for v in la.values]
    swaps, moves, before, after = greedy_swap_search(
        la,
        ii,
        rows,
        insts,
        asg,
        starts,
        ends,
        estimator is SwapEstimator.FIRSTFIT,
        max_steps,
        allow_moves,
    )
    for i, op_id in enumerate(la.ids):
        assignment[op_id] = asg[i]
    changed = {
        op_id: insts[i]
        for i, op_id in enumerate(la.ids)
        if insts[i] != placements[op_id].instance
    }
    final_schedule = (
        schedule.with_instances(changed) if changed else schedule
    )
    return SwapResult(
        schedule=final_schedule,
        assignment=assignment,
        swaps=tuple(swaps),
        estimate_before=before,
        estimate_after=after,
        moves=tuple(moves),
    )


def _greedy_swap_dicts(
    schedule: Schedule,
    assignment: ClusterAssignment,
    estimator: SwapEstimator,
    max_steps: int,
    allow_moves: bool,
    lts: dict[int, Lifetime],
) -> SwapResult:
    """The dict-based reference search (differential tests)."""
    instances = {
        op.op_id: schedule.placement(op.op_id).instance
        for op in schedule.graph.operations
    }
    machine = schedule.machine

    if estimator is SwapEstimator.MAXLIVE:

        def estimate(asg: ClusterAssignment) -> int:
            return dual_max_live(schedule, asg, lts)

    else:

        def estimate(asg: ClusterAssignment) -> int:
            return allocate_dual(schedule, asg).registers_required

    before = estimate(assignment)
    current = before
    swaps: list[tuple[int, int]] = []
    moves: list[tuple[int, int]] = []

    for _ in range(max_steps):
        best_action: tuple | None = None
        best_value = current

        def consider(action: tuple, value: int) -> None:
            nonlocal best_action, best_value
            if value >= current:
                return  # only strictly improving actions are applied
            if (
                best_action is None
                or value < best_value
                or (value == best_value and action < best_action)
            ):
                best_action = action
                best_value = value

        for a, b in _candidate_pairs(schedule, assignment):
            assignment[a], assignment[b] = assignment[b], assignment[a]
            consider(("swap", a, b), estimate(assignment))
            assignment[a], assignment[b] = assignment[b], assignment[a]

        if allow_moves:
            for op_id, instance in _candidate_moves(schedule, instances):
                placement = schedule.placement(op_id)
                new_cluster = machine.cluster_of_instance(
                    placement.pool, instance
                )
                old_cluster = assignment[op_id]
                assignment[op_id] = new_cluster
                consider(("move", op_id, instance), estimate(assignment))
                assignment[op_id] = old_cluster

        if best_action is None:
            break
        if best_action[0] == "swap":
            _, a, b = best_action
            assignment[a], assignment[b] = assignment[b], assignment[a]
            instances[a], instances[b] = instances[b], instances[a]
            swaps.append((a, b))
        else:
            _, op_id, instance = best_action
            placement = schedule.placement(op_id)
            instances[op_id] = instance
            assignment[op_id] = machine.cluster_of_instance(
                placement.pool, instance
            )
            moves.append((op_id, instance))
        current = best_value

    changed = {
        op_id: inst
        for op_id, inst in instances.items()
        if inst != schedule.placement(op_id).instance
    }
    final_schedule = (
        schedule.with_instances(changed) if changed else schedule
    )
    return SwapResult(
        schedule=final_schedule,
        assignment=assignment,
        swaps=tuple(swaps),
        estimate_before=before,
        estimate_after=current,
        moves=tuple(moves),
    )


__all__ = ["SwapEstimator", "SwapResult", "greedy_swap"]
