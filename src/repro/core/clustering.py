"""Cluster assignment of operations and GL/LO/RO classification of values.

In the non-consistent dual register file organization (paper, Section 4)
each cluster of functional units reads only its own register subfile, while
any unit can *write* either subfile (both subfiles keep the full complement
of write ports, as in the POWER2's consistent dual file).  Consequently a
value's storage is dictated purely by **where its consumers execute**:

* consumers in both clusters  -> **global** (GL): duplicated, consistent copy
  in both subfiles at the same register index;
* consumers in one cluster    -> **local** (LO/RO): stored only in that
  cluster's subfile -- even if the producer runs in the other cluster (the
  paper's example: A4 executes in the left cluster but its value is
  right-only because its single consumer M5 is on the right).

A value with no consumers is kept local to its producer's cluster.

The classification generalizes beyond two clusters (the paper's discussion
of other processor implementations): a value is stored in exactly the
subfiles of the clusters that consume it, with one consistent copy per such
subfile.  ``global_ids`` then means "values in more than one subfile".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sched.schedule import Schedule

#: op_id -> cluster index.
ClusterAssignment = dict[int, int]


def scheduler_assignment(schedule: Schedule) -> ClusterAssignment:
    """Initial cluster of every operation, from its bound unit instance.

    This is the *Partitioned* model's assignment: the scheduler places
    operations for maximum performance and the partition simply falls out of
    which concrete unit each operation landed on (paper, Section 5.2).
    """
    return {
        op.op_id: schedule.cluster_of(op.op_id)
        for op in schedule.graph.operations
    }


@dataclass(frozen=True)
class ValueClasses:
    """Which subfiles store each loop variant.

    ``value_clusters`` maps every value to the (non-empty) set of clusters
    whose subfile holds a copy.  ``global_ids`` and ``local_ids`` are the
    two-cluster paper vocabulary derived from it (GL vs LO/RO).
    """

    value_clusters: dict[int, frozenset[int]] = field(hash=False)
    n_clusters: int = 2

    @property
    def global_ids(self) -> frozenset[int]:
        """Values duplicated in more than one subfile."""
        return frozenset(
            op_id
            for op_id, clusters in self.value_clusters.items()
            if len(clusters) > 1
        )

    @property
    def local_ids(self) -> dict[int, frozenset[int]]:
        """cluster -> values stored in that subfile alone."""
        result: dict[int, frozenset[int]] = {}
        for cluster in range(self.n_clusters):
            result[cluster] = frozenset(
                op_id
                for op_id, clusters in self.value_clusters.items()
                if clusters == frozenset({cluster})
            )
        return result

    def cluster_value_ids(self, cluster: int) -> frozenset[int]:
        """All values stored in ``cluster``'s subfile."""
        return frozenset(
            op_id
            for op_id, clusters in self.value_clusters.items()
            if cluster in clusters
        )

    @property
    def clusters(self) -> list[int]:
        return list(range(self.n_clusters))


def consumer_clusters(
    schedule: Schedule, assignment: ClusterAssignment, op_id: int
) -> frozenset[int]:
    """Clusters that read the value defined by ``op_id``."""
    clusters = frozenset(
        assignment[consumer.op_id]
        for consumer, _distance in schedule.graph.consumers(op_id)
    )
    if not clusters:
        clusters = frozenset({assignment[op_id]})
    return clusters


def classify_values(
    schedule: Schedule, assignment: ClusterAssignment
) -> ValueClasses:
    """Map every loop variant to the subfiles that must hold it.

    One pass over the consumer adjacency (``repro.kernel.consumer_map``)
    instead of an O(ops x operands) rescan per value; the per-value helper
    :func:`consumer_clusters` remains for point queries.
    """
    from repro.kernel import consumer_map

    consumers = consumer_map(schedule.graph)
    value_clusters = {}
    for op_id, uses in consumers.items():
        clusters = frozenset(assignment[c] for c, _distance in uses)
        if not clusters:
            clusters = frozenset({assignment[op_id]})
        value_clusters[op_id] = clusters
    return ValueClasses(
        value_clusters=value_clusters,
        n_clusters=schedule.machine.n_clusters,
    )


__all__ = [
    "ClusterAssignment",
    "ValueClasses",
    "classify_values",
    "consumer_clusters",
    "scheduler_assignment",
]
