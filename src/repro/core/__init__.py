"""The paper's contribution: non-consistent dual register file management."""

from repro.core.clustering import (
    ClusterAssignment,
    ValueClasses,
    classify_values,
    consumer_clusters,
    scheduler_assignment,
)
from repro.core.dualfile import DualAllocation, allocate_dual, dual_max_live
from repro.core.models import Model, Requirement, required_registers
from repro.core.pressure import PressureReport, pressure_report
from repro.core.swapping import SwapEstimator, SwapResult, greedy_swap

__all__ = [
    "ClusterAssignment",
    "DualAllocation",
    "Model",
    "PressureReport",
    "Requirement",
    "SwapEstimator",
    "SwapResult",
    "ValueClasses",
    "allocate_dual",
    "classify_values",
    "consumer_clusters",
    "dual_max_live",
    "greedy_swap",
    "pressure_report",
    "required_registers",
    "scheduler_assignment",
]
