"""Register-pressure reports: all models on one schedule, no spilling.

Figures 6 and 7 of the paper measure register requirements with *unlimited*
registers ("registers have been allocated trying to minimize the number of
registers used, but with no restrictions in the number of registers
available", Section 5.3).  :func:`pressure_report` produces exactly that
triple (Unified / Partitioned / Swapped) for one loop on one machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model, required_registers
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.regalloc.lifetimes import lifetimes
from repro.regalloc.maxlive import max_live
from repro.sched.mii import minimum_ii
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class PressureReport:
    """Register requirements of one loop under the three finite models."""

    loop: Loop
    machine: MachineConfig
    schedule: Schedule
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count

    def requirement(self, model: Model) -> int:
        if model in (Model.IDEAL, Model.UNIFIED):
            return self.unified
        if model is Model.PARTITIONED:
            return self.partitioned
        return self.swapped


def pressure_report(loop: Loop, machine: MachineConfig) -> PressureReport:
    """Schedule ``loop`` once and measure all models' register needs."""
    schedule = modulo_schedule(loop.graph, machine)
    unified = required_registers(schedule, Model.UNIFIED)
    partitioned = required_registers(schedule, Model.PARTITIONED)
    swapped = required_registers(schedule, Model.SWAPPED)
    lts = lifetimes(schedule)
    return PressureReport(
        loop=loop,
        machine=machine,
        schedule=schedule,
        mii=minimum_ii(loop.graph, machine).mii,
        unified=unified.registers,
        partitioned=partitioned.registers,
        swapped=swapped.registers,
        max_live=max_live(lts.values(), schedule.ii),
    )


__all__ = ["PressureReport", "pressure_report"]
