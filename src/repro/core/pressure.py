"""Register-pressure reports: all models on one schedule, no spilling.

Figures 6 and 7 of the paper measure register requirements with *unlimited*
registers ("registers have been allocated trying to minimize the number of
registers used, but with no restrictions in the number of registers
available", Section 5.3).  :func:`pressure_report` produces exactly that
triple (Unified / Partitioned / Swapped) for one loop on one machine.

The measurement itself runs through the pass pipeline
(:func:`repro.pipeline.pipelines.run_pressure`): this module only defines
the report shape and keeps the historical entry point.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class PressureReport:
    """Register requirements of one loop under the three finite models."""

    loop: Loop
    machine: MachineConfig
    schedule: Schedule
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def trip_count(self) -> int:
        return self.loop.trip_count

    def requirement(self, model: Model) -> int:
        if model in (Model.IDEAL, Model.UNIFIED):
            return self.unified
        if model is Model.PARTITIONED:
            return self.partitioned
        return self.swapped


def pressure_report(
    loop: Loop,
    machine: MachineConfig,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> PressureReport:
    """Schedule ``loop`` once and measure all models' register needs."""
    # Imported here: the pipeline package imports this module for the
    # report dataclass, so the dependency must stay one-way at import time.
    from repro.pipeline.pipelines import run_pressure

    return run_pressure(loop, machine, swap_estimator=swap_estimator)


__all__ = ["PressureReport", "pressure_report"]
