"""Register allocation for the non-consistent dual register file.

A value stored in several subfiles (a *global* in the two-cluster paper
vocabulary) must occupy the *same* register index in all of them -- they are
consistent copies, written together.  The allocator therefore places values
in decreasing order of how many subfiles they touch: multi-subfile values
first (choosing the smallest shift free in *every* subfile involved), then
the locals of each subfile around them.  For two clusters this reproduces
the paper's numbers exactly: 13 global + 16 right-only = 29 registers in the
example (Table 3), dropping to 23 after swapping (Table 4).

The same code handles any number of clusters (`machine.n_clusters`): with
four clusters a value consumed by clusters {0, 3} is duplicated into exactly
those two subfiles, not all four -- the natural generalization the paper's
Section 4 sketches for other processor organizations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import kernel
from repro.core.clustering import (
    ClusterAssignment,
    ValueClasses,
    classify_values,
    scheduler_assignment,
)
from repro.kernel import dual as kdual
from repro.regalloc.firstfit import (
    AllocationResult,
    IntervalSet,
    PlacedLifetime,
    first_fit_shift,
    registers_required,
    verify_disjoint,
)
from repro.regalloc.lifetimes import Lifetime, lifetimes
from repro.regalloc.maxlive import max_live
from repro.sched.schedule import Schedule


@dataclass(frozen=True)
class DualAllocation:
    """Allocation of one schedule into a non-consistent clustered file."""

    schedule: Schedule
    assignment: ClusterAssignment
    classes: ValueClasses
    lifetimes: dict[int, Lifetime]
    #: One placement per value; it applies in every subfile holding the value.
    placements: dict[int, PlacedLifetime]

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def n_clusters(self) -> int:
        return self.schedule.machine.n_clusters

    def file_value_ids(self, cluster: int) -> frozenset[int]:
        """Values stored in ``cluster``'s subfile."""
        return self.classes.cluster_value_ids(cluster)

    def file_allocation(self, cluster: int) -> AllocationResult:
        """The complete allocation of one subfile."""
        return AllocationResult(
            self.ii,
            {
                op_id: self.placements[op_id]
                for op_id in self.file_value_ids(cluster)
            },
        )

    @property
    def global_registers(self) -> int:
        """Registers occupied by values duplicated across subfiles."""
        placed = [
            self.placements[op_id] for op_id in self.classes.global_ids
        ]
        return registers_required(placed, self.ii)

    def cluster_registers(self, cluster: int) -> int:
        """Registers required by ``cluster``'s subfile."""
        return self.file_allocation(cluster).registers_required

    def local_registers(self, cluster: int) -> int:
        """Registers the locals add on top of the globals in one subfile."""
        return self.cluster_registers(cluster) - self.global_registers

    @property
    def registers_required(self) -> int:
        """Loop requirement: the most loaded subfile decides."""
        return max(
            self.cluster_registers(c) for c in range(self.n_clusters)
        )

    @property
    def per_cluster(self) -> dict[int, int]:
        return {
            c: self.cluster_registers(c) for c in range(self.n_clusters)
        }


def allocate_dual(
    schedule: Schedule,
    assignment: ClusterAssignment | None = None,
    lts: dict[int, Lifetime] | None = None,
) -> DualAllocation:
    """Allocate a schedule's values into the non-consistent clustered file.

    Args:
        assignment: Cluster of each operation; defaults to the scheduler's
            unit binding (the *Partitioned* model).  The swapping pass calls
            this with its improved assignment.
        lts: Precomputed ``lifetimes(schedule)``, for callers (the pass
            pipeline) that already analyzed the schedule.
    """
    if assignment is None:
        assignment = scheduler_assignment(schedule)
    if lts is None:
        lts = lifetimes(schedule)
    if kernel.kernels_enabled():
        classes, placements = _allocate_arrays(schedule, assignment, lts)
    else:
        classes, placements = _allocate_intervals(schedule, assignment, lts)

    allocation = DualAllocation(
        schedule=schedule,
        assignment=dict(assignment),
        classes=classes,
        lifetimes=lts,
        placements=placements,
    )
    for cluster in range(schedule.machine.n_clusters):
        verify_disjoint(allocation.file_allocation(cluster).placements.values())
    return allocation


def _allocate_intervals(
    schedule: Schedule,
    assignment: ClusterAssignment,
    lts: dict[int, Lifetime],
) -> tuple[ValueClasses, dict[int, PlacedLifetime]]:
    """The interval-set reference allocation (differential tests)."""
    classes = classify_values(schedule, assignment)
    n_clusters = schedule.machine.n_clusters
    occupied = {c: IntervalSet() for c in range(n_clusters)}
    placements: dict[int, PlacedLifetime] = {}
    # Multi-subfile values first (they are the most constrained), then by
    # start time -- the deterministic wands-only convention.
    order = sorted(
        classes.value_clusters,
        key=lambda op_id: (
            -len(classes.value_clusters[op_id]),
            lts[op_id].start,
            op_id,
        ),
    )
    for op_id in order:
        clusters = classes.value_clusters[op_id]
        shift = first_fit_shift(
            lts[op_id],
            schedule.ii,
            tuple(occupied[c] for c in sorted(clusters)),
        )
        placed = PlacedLifetime(lts[op_id], shift, schedule.ii)
        placements[op_id] = placed
        for cluster in clusters:
            occupied[cluster].add(placed.start, placed.end)
    return classes, placements


def _allocate_arrays(
    schedule: Schedule,
    assignment: ClusterAssignment,
    lts: dict[int, Lifetime],
) -> tuple[ValueClasses, dict[int, PlacedLifetime]]:
    """The bitmask kernel allocation; identical shifts and orders."""
    la = kernel.lower_loop(schedule.graph, schedule.machine)
    asg = [assignment[op_id] for op_id in la.ids]
    starts = [lts[la.ids[v]].start for v in la.values]
    ends = [lts[la.ids[v]].end for v in la.values]
    masks = kdual.membership_masks(la, asg)
    shifts = kdual.dual_shifts(la, masks, starts, ends, schedule.ii)
    n_clusters = schedule.machine.n_clusters
    value_clusters = {
        la.ids[v]: frozenset(
            c for c in range(n_clusters) if masks[k] >> c & 1
        )
        for k, v in enumerate(la.values)
    }
    classes = ValueClasses(
        value_clusters=value_clusters, n_clusters=n_clusters
    )
    # Materialize in the legacy insertion order (most subfiles, start, id).
    order = sorted(
        range(len(masks)),
        key=lambda k: (-masks[k].bit_count(), starts[k], la.ids[la.values[k]]),
    )
    placements = {
        la.ids[la.values[k]]: PlacedLifetime(
            lts[la.ids[la.values[k]]], shifts[k], schedule.ii
        )
        for k in order
    }
    return classes, placements


def dual_max_live(
    schedule: Schedule,
    assignment: ClusterAssignment,
    lts: dict[int, Lifetime] | None = None,
) -> int:
    """Per-cluster MaxLive lower bound on the dual-file requirement.

    This is the estimator the greedy swapping algorithm uses (paper,
    Section 5.2): cheap, and within one register of the first-fit result on
    almost every loop.
    """
    if lts is None:
        lts = lifetimes(schedule)
    if kernel.kernels_enabled():
        la = kernel.lower_loop(schedule.graph, schedule.machine)
        return kdual.dual_max_live(
            la,
            [assignment[op_id] for op_id in la.ids],
            [lts[la.ids[v]].start for v in la.values],
            [lts[la.ids[v]].end for v in la.values],
            schedule.ii,
        )
    classes = classify_values(schedule, assignment)
    worst = 0
    for cluster in range(schedule.machine.n_clusters):
        ids = classes.cluster_value_ids(cluster)
        worst = max(worst, max_live([lts[i] for i in ids], schedule.ii))
    return worst


__all__ = ["DualAllocation", "allocate_dual", "dual_max_live"]
