"""AST lint rules pinning the repo's own invariants (``repro lint``).

The static verifier proves properties of *schedules*; this module proves
properties of the *codebase* the same way -- by analysis, not convention.
Each rule guards an invariant some subsystem silently depends on:

``determinism-imports``
    The engine cache keys every result by content (loop + machine +
    source fingerprint), so the computation layers (``ir``, ``sched``,
    ``regalloc``, ``core``, ``spill``, ``kernel``, ``machine``,
    ``pipeline``) must be bit-deterministic: importing ``time``,
    ``random``, ``uuid``, ``secrets``, or ``datetime`` there makes a
    cached result depend on when/where it ran.

``set-iteration``
    Same scope: iterating a set (or ``vars()``/``globals()``) has a
    PYTHONHASHSEED-dependent order, which breaks cross-process result
    identity the moment order leaks into output.  Iterate sorted
    collections or dicts (insertion-ordered) instead.

``frozen-wire-types``
    Every dataclass in ``api/types.py`` is a wire message shared across
    threads and serialized by content; all must be ``frozen=True``.

``cache-locking``
    Disk-cache file removal races the sharded serve workers; multi-file
    maintenance must run under the flock seam (``_maintenance_lock``).
    Only the single-file-safe operations (corrupt-entry removal in
    ``_read_disk``, tmp cleanup in ``put``/``clean_stale_tmp``) may
    unlink without it.

``experiment-keywords``
    Registry entries drive CLI flags, serve discovery, and the report;
    every ``Experiment(...)`` must be constructed with keyword arguments
    and carry name/kind/title/runner so no surface gets a half-described
    entry.

``typing-completeness``
    Every function in ``src/repro`` is fully annotated (parameters and
    return) -- the locally enforceable core of ``mypy --strict``, which
    CI runs in full.

Pure stdlib ``ast``; no third-party linter is available in the image.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

#: Package-relative path prefixes whose results are content-cached and
#: must therefore be bit-deterministic across processes and runs.
DETERMINISTIC_PATHS: tuple[str, ...] = (
    "ir/",
    "sched/",
    "regalloc/",
    "core/",
    "spill/",
    "kernel/",
    "machine/",
    "pipeline/",
)

#: Modules whose import makes output time- or host-dependent.
NONDETERMINISTIC_MODULES: frozenset[str] = frozenset(
    {"time", "random", "uuid", "secrets", "datetime"}
)

#: engine/cache.py functions allowed to unlink without the flock seam
#: (single-file-safe: corrupt-entry removal and own-tmp cleanup).
UNLOCKED_UNLINK_FUNCTIONS: frozenset[str] = frozenset(
    {"_read_disk", "put", "clean_stale_tmp"}
)

#: Keywords every Experiment(...) construction must pass.
EXPERIMENT_REQUIRED_KEYWORDS: tuple[str, ...] = (
    "name",
    "kind",
    "title",
    "runner",
)


@dataclass(frozen=True)
class LintViolation:
    """One disproved codebase invariant, with file/line coordinates."""

    rule: str
    path: str
    line: int
    message: str

    def describe(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class LintReport:
    """Outcome of one lint run."""

    root: str
    files_checked: int
    rules: tuple[str, ...]
    violations: tuple[LintViolation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations


RuleFn = Callable[[str, ast.Module], "list[LintViolation]"]

#: name -> (one-line doc, rule function); populated by @_rule below.
RULES: dict[str, tuple[str, RuleFn]] = {}


def _rule(name: str, doc: str) -> Callable[[RuleFn], RuleFn]:
    def register(fn: RuleFn) -> RuleFn:
        RULES[name] = (doc, fn)
        return fn

    return register


def _in_deterministic_scope(path: str) -> bool:
    return path.startswith(DETERMINISTIC_PATHS)


def _walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
@_rule(
    "determinism-imports",
    "no time/random/uuid/secrets/datetime imports in content-cached code",
)
def _check_determinism_imports(
    path: str, tree: ast.Module
) -> list[LintViolation]:
    if not _in_deterministic_scope(path):
        return []
    out: list[LintViolation] = []
    for node in ast.walk(tree):
        names: list[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name.split(".")[0] for alias in node.names]
        elif isinstance(node, ast.ImportFrom) and node.module:
            names = [node.module.split(".")[0]]
        for name in names:
            if name in NONDETERMINISTIC_MODULES:
                out.append(
                    LintViolation(
                        rule="determinism-imports",
                        path=path,
                        line=node.lineno,
                        message=(
                            f"import of {name!r} in a content-cached "
                            "path; results keyed by content must not "
                            "depend on time, host, or RNG state"
                        ),
                    )
                )
    return out


def _is_unordered_iterable(node: ast.expr) -> str | None:
    """Name the hash-order-dependent iterable, or None."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
        if node.func.id in ("vars", "globals", "locals"):
            return f"{node.func.id}()"
    return None


@_rule(
    "set-iteration",
    "no iteration over sets/vars()/globals() in content-cached code",
)
def _check_set_iteration(path: str, tree: ast.Module) -> list[LintViolation]:
    if not _in_deterministic_scope(path):
        return []
    out: list[LintViolation] = []
    iterables: list[tuple[int, ast.expr]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iterables.append((node.lineno, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                iterables.append((node.lineno, gen.iter))
        elif isinstance(node, ast.DictComp):
            for gen in node.generators:
                iterables.append((node.lineno, gen.iter))
    for line, iterable in iterables:
        what = _is_unordered_iterable(iterable)
        if what is not None:
            out.append(
                LintViolation(
                    rule="set-iteration",
                    path=path,
                    line=line,
                    message=(
                        f"iteration over {what} has hash-seed-dependent "
                        "order; sort it (or iterate a dict) so "
                        "content-cached results replay identically"
                    ),
                )
            )
    return out


@_rule("frozen-wire-types", "every dataclass in api/types.py is frozen")
def _check_frozen_wire_types(
    path: str, tree: ast.Module
) -> list[LintViolation]:
    if path != "api/types.py":
        return []
    out: list[LintViolation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for decorator in node.decorator_list:
            is_dataclass = (
                isinstance(decorator, ast.Name)
                and decorator.id == "dataclass"
            ) or (
                isinstance(decorator, ast.Call)
                and isinstance(decorator.func, ast.Name)
                and decorator.func.id == "dataclass"
            )
            if not is_dataclass:
                continue
            frozen = isinstance(decorator, ast.Call) and any(
                kw.arg == "frozen"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in decorator.keywords
            )
            if not frozen:
                out.append(
                    LintViolation(
                        rule="frozen-wire-types",
                        path=path,
                        line=node.lineno,
                        message=(
                            f"wire dataclass {node.name} must be "
                            "@dataclass(frozen=True): messages are "
                            "shared across threads and hashed by content"
                        ),
                    )
                )
    return out


def _with_calls_maintenance_lock(node: ast.With) -> bool:
    for item in node.items:
        expr = item.context_expr
        if isinstance(expr, ast.Call):
            func = expr.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name == "_maintenance_lock":
                return True
    return False


def _is_file_removal(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in (
        "unlink",
        "rmtree",
        "remove",
    ):
        return func.attr
    return None


@_rule(
    "cache-locking",
    "engine/cache.py multi-file removal runs under _maintenance_lock",
)
def _check_cache_locking(path: str, tree: ast.Module) -> list[LintViolation]:
    if path != "engine/cache.py":
        return []
    out: list[LintViolation] = []
    for fn in _walk_functions(tree):
        if fn.name in UNLOCKED_UNLINK_FUNCTIONS:
            continue
        locked_spans: list[tuple[int, int]] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.With) and _with_calls_maintenance_lock(
                node
            ):
                locked_spans.append(
                    (node.lineno, node.end_lineno or node.lineno)
                )
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            removal = _is_file_removal(node)
            if removal is None:
                continue
            line = node.lineno
            if not any(lo <= line <= hi for lo, hi in locked_spans):
                out.append(
                    LintViolation(
                        rule="cache-locking",
                        path=path,
                        line=line,
                        message=(
                            f"{fn.name}() calls .{removal}() outside "
                            "'with _maintenance_lock(...)'; concurrent "
                            "serve shards race unlocked removal (or add "
                            "the function to the single-file-safe "
                            "allowlist with a justification)"
                        ),
                    )
                )
    return out


@_rule(
    "experiment-keywords",
    "Experiment(...) uses keywords and carries name/kind/title/runner",
)
def _check_experiment_keywords(
    path: str, tree: ast.Module
) -> list[LintViolation]:
    out: list[LintViolation] = []
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "Experiment"
        ):
            continue
        if node.args:
            out.append(
                LintViolation(
                    rule="experiment-keywords",
                    path=path,
                    line=node.lineno,
                    message=(
                        "Experiment(...) must be constructed with "
                        "keyword arguments only"
                    ),
                )
            )
            continue
        passed = {kw.arg for kw in node.keywords if kw.arg}
        has_splat = any(kw.arg is None for kw in node.keywords)
        missing = [
            key
            for key in EXPERIMENT_REQUIRED_KEYWORDS
            if key not in passed
        ]
        if missing and not has_splat:
            out.append(
                LintViolation(
                    rule="experiment-keywords",
                    path=path,
                    line=node.lineno,
                    message=(
                        "Experiment(...) missing required keyword(s) "
                        f"{missing}; registry entries drive CLI, serve "
                        "discovery, and the report"
                    ),
                )
            )
    return out


def _unannotated_args(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    args = fn.args
    named = args.posonlyargs + args.args + args.kwonlyargs
    missing = [
        arg.arg
        for arg in named
        if arg.annotation is None and arg.arg not in ("self", "cls")
    ]
    for star in (args.vararg, args.kwarg):
        if star is not None and star.annotation is None:
            missing.append(star.arg)
    return missing


@_rule(
    "typing-completeness",
    "every function is fully annotated (params and return)",
)
def _check_typing_completeness(
    path: str, tree: ast.Module
) -> list[LintViolation]:
    out: list[LintViolation] = []
    for fn in _walk_functions(tree):
        missing = _unannotated_args(fn)
        needs_return = fn.returns is None and fn.name != "__init_subclass__"
        if not missing and not needs_return:
            continue
        parts = []
        if missing:
            parts.append(f"parameter(s) {missing}")
        if needs_return:
            parts.append("the return type")
        out.append(
            LintViolation(
                rule="typing-completeness",
                path=path,
                line=fn.lineno,
                message=(
                    f"{fn.name}() is missing annotations for "
                    + " and ".join(parts)
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
def default_root() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def _python_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.py")
        if "__pycache__" not in path.parts
    )


def run_lint(
    root: str | Path | None = None,
    rules: Sequence[str] | None = None,
) -> LintReport:
    """Parse every source file under ``root`` and apply the rule set."""
    base = Path(root) if root is not None else default_root()
    if rules is None:
        selected = list(RULES)
    else:
        unknown = [name for name in rules if name not in RULES]
        if unknown:
            raise ValueError(
                f"unknown lint rule(s) {unknown}; "
                f"available: {sorted(RULES)}"
            )
        selected = list(rules)
    violations: list[LintViolation] = []
    files = _python_files(base)
    for file_path in files:
        relative = file_path.relative_to(base).as_posix()
        try:
            tree = ast.parse(
                file_path.read_text(encoding="utf-8"), filename=relative
            )
        except SyntaxError as exc:
            violations.append(
                LintViolation(
                    rule="parse",
                    path=relative,
                    line=exc.lineno or 0,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        for name in selected:
            _doc, fn = RULES[name]
            violations.extend(fn(relative, tree))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return LintReport(
        root=str(base),
        files_checked=len(files),
        rules=tuple(selected),
        violations=tuple(violations),
    )


def list_rules() -> list[tuple[str, str]]:
    """(name, one-line doc) pairs of the rule catalog."""
    return [(name, doc) for name, (doc, _fn) in sorted(RULES.items())]


def format_report(report: LintReport) -> str:
    lines = [violation.describe() for violation in report.violations]
    verdict = (
        "clean" if report.ok else f"{len(report.violations)} violation(s)"
    )
    lines.append(
        f"repro lint: {report.files_checked} files, "
        f"{len(report.rules)} rules, {verdict}"
    )
    return "\n".join(lines)


__all__ = [
    "DETERMINISTIC_PATHS",
    "EXPERIMENT_REQUIRED_KEYWORDS",
    "LintReport",
    "LintViolation",
    "NONDETERMINISTIC_MODULES",
    "RULES",
    "UNLOCKED_UNLINK_FUNCTIONS",
    "default_root",
    "format_report",
    "list_rules",
    "run_lint",
]
