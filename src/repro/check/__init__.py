"""Static verification: prove schedules and allocations without executing.

Two halves, one idea -- replace "trust the pipeline" with machine-checked
proofs:

* :mod:`repro.check.invariants` proves a single evaluated point's
  dependence legality, resource consistency, allocation soundness, and
  spill/traffic accounting analytically, in O(ops + edges);
* :mod:`repro.check.coverage` runs that proof over 100% of the suite
  grid (the dynamic simulator gate stays sampled);
* :mod:`repro.check.lint` turns the same discipline on the codebase
  itself: AST rules pinning the determinism, immutability, and
  concurrency invariants the engine cache and fingerprints rely on.

Layering: ``check`` imports only core/ir/sched/regalloc/spill/pipeline.
It must never import :mod:`repro.validate` -- validate imports check.
"""

from repro.check.coverage import (
    CHECK_MODELS,
    StaticValidation,
    check_grid_point,
    run_static_validation,
)
from repro.check.invariants import (
    Finding,
    StaticCheck,
    StaticCheckError,
    allocation_of,
    check_evaluation,
)

__all__ = [
    "CHECK_MODELS",
    "Finding",
    "StaticCheck",
    "StaticCheckError",
    "StaticValidation",
    "allocation_of",
    "check_evaluation",
    "check_grid_point",
    "run_static_validation",
]
