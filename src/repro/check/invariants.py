"""Static proofs over one evaluated point: no execution, O(ops) per claim.

The simulator-grounded gate (:mod:`repro.validate`) proves a point by
*running* it, which is exact but costs cycles x iterations per point --
hence it samples.  Everything the paper claims about a point is, however,
provable *analytically* from the final (swapped/spilled) schedule and its
allocation alone:

* **dependence legality** -- every DDG edge (flow, memory, and the spill
  store/reload chains) satisfies
  ``sigma(cons) - sigma(prod) + II * distance >= delay``;
* **resource consistency** -- the modulo reservation table rebuilt from
  the schedule assigns every (row, pool, instance) slot at most once,
  every instance is in range and on the right pool, and the recomputed
  ``MII`` of the final graph does not exceed the II (a legal schedule at
  II is itself the witness that ``RecMII <= II``; the reservation table
  is the witness for ``ResMII``);
* **allocation soundness** -- lifetimes rebuilt from the schedule match
  the allocation's, every value owns exactly one placement, no two
  lifetimes sharing a (sub)file overlap after their wands-only shifts
  (the sheared-line geometry of :mod:`repro.regalloc.firstfit` makes
  register wraparound across II an interval-disjointness question), the
  dual-file classification stores each value in exactly its consumers'
  subfiles (the paper's cross-file read/write rules), swapping preserved
  issue times and pools, and every claimed register count equals the
  interference-derived minimum of the actual assignment
  (``ceil(span / II)``, never below MaxLive);
* **spill/traffic accounting** -- every reload has exactly one dominating
  spill store of the same symbol, the store saves a real value, the
  number of spill stores equals the claimed ``spilled_values``, the
  claimed ``memory_ops_per_iteration`` equals the count in the schedule,
  and no kernel row issues more memory operations than the bus allows.

Every verifier here re-derives its facts with straight-line dict/list
code -- deliberately *not* through :mod:`repro.kernel` -- so the proof is
independent of the optimized paths it certifies.  Failures are
:class:`Finding` records with the same actionable coordinates and
wire-shaped reproducers the dynamic gate emits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.core.dualfile import DualAllocation
from repro.core.models import Model
from repro.ir.ddg import DependenceGraph, Edge
from repro.ir.operation import Operation, OpType, ValueRef
from repro.machine.config import MachineConfig
from repro.regalloc.allocation import UnifiedAllocation
from repro.regalloc.firstfit import PlacedLifetime
from repro.regalloc.lifetimes import Lifetime
from repro.sched.mii import edge_delay, minimum_ii
from repro.sched.schedule import Schedule
from repro.spill.spiller import LoopEvaluation


@dataclass(frozen=True)
class Finding:
    """One disproved invariant, with actionable coordinates.

    Field-compatible with :class:`repro.validate.differential.Mismatch`
    so the dynamic gate can fold static findings into its reports.
    """

    kind: str  # "dependence" | "resource" | "mii" | "allocation" |
    #           "lifetime" | "classification" | "swap" | "requirement" |
    #           "spill" | "traffic" | "bus"
    message: str
    op: str | None = None
    cycle: int | None = None
    file: str | None = None
    register: int | None = None
    expected: object = None
    observed: object = None

    def describe(self) -> str:
        parts = [f"[static:{self.kind}] {self.message}"]
        where = []
        if self.op is not None:
            where.append(f"op={self.op}")
        if self.cycle is not None:
            where.append(f"cycle={self.cycle}")
        if self.file is not None:
            where.append(f"file={self.file}")
        if self.register is not None:
            where.append(f"register=r{self.register}")
        if self.expected is not None or self.observed is not None:
            where.append(
                f"expected={self.expected!r} observed={self.observed!r}"
            )
        if where:
            parts.append("  " + " ".join(where))
        return "\n".join(parts)


@dataclass(frozen=True)
class StaticCheck:
    """Outcome of statically verifying one evaluated point."""

    reproducer: dict
    model: str
    register_budget: int | None
    ii: int
    edges_checked: int
    values_checked: int
    findings: tuple[Finding, ...]

    @property
    def ok(self) -> bool:
        return not self.findings

    def describe(self) -> str:
        head = (
            f"{self.model} budget={self.register_budget} static: "
            f"II {self.ii}, {self.edges_checked} edges, "
            f"{self.values_checked} values -- "
            + ("PROVED" if self.ok else f"{len(self.findings)} finding(s)")
        )
        lines = [head]
        for finding in self.findings:
            lines.append(finding.describe())
        if self.findings:
            lines.append(f"  reproduce: {self.reproducer}")
        return "\n".join(lines)


class StaticCheckError(RuntimeError):
    """An evaluated point carries no allocation to verify."""


# ----------------------------------------------------------------------
# Independent re-derivations (dict/list scans, no repro.kernel dispatch)
# ----------------------------------------------------------------------
def rebuild_lifetimes(schedule: Schedule) -> dict[int, Lifetime]:
    """Recompute every value's lifetime straight from the definition.

    ``start = t(producer)``, ``end = max(t(producer) + latency(producer),
    max over uses of t(consumer) + distance * II + latency(consumer))`` --
    the paper's interruptible-code rule, re-derived by a direct operand
    scan so it cannot share a bug with :mod:`repro.kernel.lifetimes`.
    """
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    ends: dict[int, int] = {}
    for op in graph.operations:
        issue = schedule.time_of(op.op_id)
        finish = issue + machine.latency_of(op)
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                use_end = finish + operand.distance * ii
                if use_end > ends.get(operand.producer, 0):
                    ends[operand.producer] = use_end
    result: dict[int, Lifetime] = {}
    for op in graph.operations:
        if not op.defines_value:
            continue
        start = schedule.time_of(op.op_id)
        end = max(
            start + machine.latency_of(op), ends.get(op.op_id, 0)
        )
        result[op.op_id] = Lifetime(op.op_id, start, end)
    return result


def rebuild_value_clusters(
    graph: DependenceGraph, assignment: Mapping[int, int]
) -> dict[int, frozenset[int]]:
    """Which subfiles must store each value, from its consumers alone."""
    readers: dict[int, set[int]] = {}
    for op in graph.operations:
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                readers.setdefault(operand.producer, set()).add(
                    assignment[op.op_id]
                )
    clusters: dict[int, frozenset[int]] = {}
    for op in graph.operations:
        if not op.defines_value:
            continue
        read_by = readers.get(op.op_id)
        if read_by:
            clusters[op.op_id] = frozenset(read_by)
        else:
            clusters[op.op_id] = frozenset({assignment[op.op_id]})
    return clusters


def span_registers(placements: Iterable[PlacedLifetime], ii: int) -> int:
    """Interference-derived minimum register count of placed lifetimes."""
    starts_ends = [(p.start, p.end) for p in placements]
    if not starts_ends:
        return 0
    span = max(e for _s, e in starts_ends) - min(s for s, _e in starts_ends)
    return math.ceil(span / ii)


def interference_bound(lts: Iterable[Lifetime], ii: int) -> int:
    """MaxLive recomputed by folding lifetimes onto the kernel rows.

    In steady state a new instance of every variant starts each II, so a
    lifetime of span ``end - start`` keeps ``span // ii`` instances live
    at *every* kernel row plus one more on the ``span % ii`` rows after
    ``start % ii`` -- counted here by direct row bumping, independent of
    both :mod:`repro.regalloc.maxlive` and the kernel difference arrays.
    """
    profile = [0] * max(ii, 1)
    for lt in lts:
        full, rem = divmod(lt.end - lt.start, ii)
        for row in range(ii):
            profile[row] += full
        for offset in range(rem):
            profile[(lt.start + offset) % ii] += 1
    return max(profile, default=0)


def _op_label(graph: DependenceGraph, op_id: int) -> str:
    try:
        return graph.op(op_id).name
    except KeyError:
        return f"op{op_id}"


# ----------------------------------------------------------------------
# Invariant 1: dependence legality
# ----------------------------------------------------------------------
def check_dependences(schedule: Schedule) -> tuple[list[Finding], int]:
    """Prove every edge: sigma(dst) - sigma(src) + II * distance >= delay."""
    findings: list[Finding] = []
    graph = schedule.graph
    edges = graph.edges()
    for edge in edges:
        delay = edge_delay(edge, graph, schedule.machine)
        slack = (
            schedule.time_of(edge.dst)
            - schedule.time_of(edge.src)
            + schedule.ii * edge.distance
            - delay
        )
        if slack < 0:
            findings.append(
                Finding(
                    kind="dependence",
                    message=(
                        f"{edge.kind.value} edge "
                        f"{_op_label(graph, edge.src)} -> "
                        f"{_op_label(graph, edge.dst)} "
                        f"(distance {edge.distance}) violated by "
                        f"{-slack} cycle(s)"
                    ),
                    op=_op_label(graph, edge.dst),
                    cycle=schedule.time_of(edge.dst),
                    expected=(
                        schedule.time_of(edge.src)
                        + delay
                        - schedule.ii * edge.distance
                    ),
                    observed=schedule.time_of(edge.dst),
                )
            )
    return findings, len(edges)


# ----------------------------------------------------------------------
# Invariant 2: resource consistency (modulo reservation table + MII)
# ----------------------------------------------------------------------
def check_resources(schedule: Schedule) -> list[Finding]:
    """Rebuild the reservation table; prove no slot is oversubscribed."""
    findings: list[Finding] = []
    graph = schedule.graph
    machine = schedule.machine
    ii = schedule.ii
    if ii < 1:
        return [
            Finding(
                kind="resource",
                message="II must be >= 1",
                observed=ii,
            )
        ]
    table: dict[tuple[int, str, int], int] = {}
    placed = set(schedule.placements)
    expected_ids = {op.op_id for op in graph.operations}
    for op_id in sorted(expected_ids - placed):
        findings.append(
            Finding(
                kind="resource",
                message="operation has no placement",
                op=_op_label(graph, op_id),
            )
        )
    for op_id in sorted(placed - expected_ids):
        findings.append(
            Finding(
                kind="resource",
                message="placement names an operation outside the graph",
                op=f"op{op_id}",
            )
        )
    for op_id in sorted(placed & expected_ids):
        placement = schedule.placements[op_id]
        name = _op_label(graph, op_id)
        if placement.time < 0:
            findings.append(
                Finding(
                    kind="resource",
                    message="operation scheduled at negative time",
                    op=name,
                    cycle=placement.time,
                )
            )
            continue
        pool = machine.pool_for(graph.op(op_id))
        if placement.pool != pool:
            findings.append(
                Finding(
                    kind="resource",
                    message="operation placed on the wrong pool",
                    op=name,
                    cycle=placement.time % ii,
                    expected=pool,
                    observed=placement.pool,
                )
            )
            continue
        if not 0 <= placement.instance < machine.units(pool):
            findings.append(
                Finding(
                    kind="resource",
                    message="unit instance out of range",
                    op=name,
                    cycle=placement.time % ii,
                    file=pool,
                    observed=placement.instance,
                    expected=machine.units(pool) - 1,
                )
            )
            continue
        slot = (placement.time % ii, placement.pool, placement.instance)
        if slot in table:
            findings.append(
                Finding(
                    kind="resource",
                    message=(
                        f"reservation row oversubscribed: "
                        f"{_op_label(graph, table[slot])} and {name} "
                        f"share {slot[1]}[{slot[2]}]"
                    ),
                    op=name,
                    cycle=slot[0],
                    file=f"{slot[1]}[{slot[2]}]",
                )
            )
        else:
            table[slot] = op_id
    return findings


def check_mii(evaluation: LoopEvaluation, schedule: Schedule) -> list[Finding]:
    """Recompute both MII bounds; prove MII <= II and the original claim."""
    findings: list[Finding] = []
    final_mii = minimum_ii(schedule.graph, schedule.machine).mii
    if final_mii > schedule.ii:
        findings.append(
            Finding(
                kind="mii",
                message=(
                    "II below the recomputed MII of the final graph"
                ),
                expected=final_mii,
                observed=schedule.ii,
            )
        )
    claimed = evaluation.mii
    original = minimum_ii(
        evaluation.loop.graph, evaluation.machine
    ).mii
    if claimed != original:
        findings.append(
            Finding(
                kind="mii",
                message="claimed MII differs from recomputation",
                expected=original,
                observed=claimed,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Invariant 3: allocation soundness
# ----------------------------------------------------------------------
def _file_overlaps(
    graph: DependenceGraph,
    file_name: str,
    placements: list[PlacedLifetime],
    ii: int,
) -> list[Finding]:
    """Disjointness of one (sub)file on the sheared line.

    Two placed intervals overlap iff their values collide in a physical
    register cell of the rotating file (wraparound across II included:
    the shear already folds the torus onto the line).
    """
    findings: list[Finding] = []
    ordered = sorted(placements, key=lambda p: (p.start, p.op_id))
    for prev, cur in zip(ordered, ordered[1:]):
        if cur.start < prev.end:
            findings.append(
                Finding(
                    kind="allocation",
                    message=(
                        f"values {_op_label(graph, prev.op_id)} and "
                        f"{_op_label(graph, cur.op_id)} overlap in the "
                        f"same register cell: [{prev.start},{prev.end}) "
                        f"vs [{cur.start},{cur.end})"
                    ),
                    op=_op_label(graph, cur.op_id),
                    cycle=cur.lifetime.start,
                    file=file_name,
                    register=cur.start // ii,
                )
            )
    return findings


def _check_placement_table(
    graph: DependenceGraph,
    file_name: str,
    placements: Mapping[int, PlacedLifetime],
    expected_values: set[int],
    rebuilt: Mapping[int, Lifetime],
    ii: int,
) -> list[Finding]:
    """Coverage + lifetime fidelity of one placement table."""
    findings: list[Finding] = []
    for op_id in sorted(expected_values - set(placements)):
        findings.append(
            Finding(
                kind="allocation",
                message="value has no register placement",
                op=_op_label(graph, op_id),
                cycle=rebuilt[op_id].start if op_id in rebuilt else None,
                file=file_name,
            )
        )
    for op_id in sorted(set(placements) - expected_values):
        findings.append(
            Finding(
                kind="allocation",
                message="placement for a value the schedule does not define",
                op=_op_label(graph, op_id),
                file=file_name,
            )
        )
    for op_id in sorted(set(placements) & expected_values):
        placed = placements[op_id]
        truth = rebuilt[op_id]
        if placed.ii != ii:
            findings.append(
                Finding(
                    kind="allocation",
                    message="placement uses a different II",
                    op=_op_label(graph, op_id),
                    file=file_name,
                    expected=ii,
                    observed=placed.ii,
                )
            )
        if placed.shift < 0:
            findings.append(
                Finding(
                    kind="allocation",
                    message="negative register shift",
                    op=_op_label(graph, op_id),
                    file=file_name,
                    observed=placed.shift,
                )
            )
        if (placed.lifetime.start, placed.lifetime.end) != (
            truth.start,
            truth.end,
        ):
            findings.append(
                Finding(
                    kind="lifetime",
                    message=(
                        "allocated lifetime differs from the schedule's"
                    ),
                    op=_op_label(graph, op_id),
                    cycle=truth.start,
                    file=file_name,
                    expected=(truth.start, truth.end),
                    observed=(placed.lifetime.start, placed.lifetime.end),
                )
            )
    return findings


def _check_unified(
    evaluation: LoopEvaluation,
    allocation: UnifiedAllocation,
    rebuilt: dict[int, Lifetime],
) -> list[Finding]:
    findings: list[Finding] = []
    schedule = allocation.schedule
    graph = schedule.graph
    ii = schedule.ii
    values = set(rebuilt)
    placements = allocation.result.placements
    findings.extend(
        _check_placement_table(
            graph, "unified", placements, values, rebuilt, ii
        )
    )
    valid = [
        placements[op_id]
        for op_id in sorted(values & set(placements))
    ]
    findings.extend(_file_overlaps(graph, "unified", valid, ii))
    claimed = evaluation.requirement.registers
    minimum = span_registers(valid, ii)
    if not findings and claimed != minimum:
        findings.append(
            Finding(
                kind="requirement",
                message=(
                    "claimed register count differs from the "
                    "interference-derived minimum of the assignment"
                ),
                file="unified",
                expected=minimum,
                observed=claimed,
            )
        )
    bound = interference_bound(rebuilt.values(), ii)
    if not findings and claimed < bound:
        findings.append(
            Finding(
                kind="requirement",
                message="claimed register count below MaxLive",
                file="unified",
                expected=bound,
                observed=claimed,
            )
        )
    if allocation.max_live != bound:
        findings.append(
            Finding(
                kind="requirement",
                message="claimed MaxLive differs from recomputation",
                file="unified",
                expected=bound,
                observed=allocation.max_live,
            )
        )
    return findings


def _check_dual(
    evaluation: LoopEvaluation,
    allocation: DualAllocation,
    rebuilt: dict[int, Lifetime],
) -> list[Finding]:
    findings: list[Finding] = []
    schedule = allocation.schedule
    graph = schedule.graph
    ii = schedule.ii
    machine = schedule.machine
    values = set(rebuilt)

    # Swap legality: the allocation's schedule may only differ from the
    # scheduler's in unit instances -- same times, same pools.
    base = evaluation.schedule
    if base is not schedule:
        for op_id in sorted(values | set(base.placements)):
            before = base.placements.get(op_id)
            after = schedule.placements.get(op_id)
            if before is None or after is None:
                continue  # coverage findings come from check_resources
            if (before.time, before.pool) != (after.time, after.pool):
                findings.append(
                    Finding(
                        kind="swap",
                        message=(
                            "swapping changed more than the unit instance"
                        ),
                        op=_op_label(graph, op_id),
                        cycle=after.time,
                        expected=(before.time, before.pool),
                        observed=(after.time, after.pool),
                    )
                )

    # The assignment must be the allocation schedule's own unit binding.
    for op_id in sorted(values | set(allocation.assignment)):
        claimed_cluster = allocation.assignment.get(op_id)
        if op_id not in schedule.placements or claimed_cluster is None:
            findings.append(
                Finding(
                    kind="classification",
                    message="assignment and schedule disagree on coverage",
                    op=_op_label(graph, op_id),
                )
            )
            continue
        placement = schedule.placements[op_id]
        actual = machine.cluster_of_instance(
            placement.pool, placement.instance
        )
        if claimed_cluster != actual:
            findings.append(
                Finding(
                    kind="classification",
                    message=(
                        "assignment disagrees with the scheduled unit's "
                        "cluster"
                    ),
                    op=_op_label(graph, op_id),
                    cycle=placement.time,
                    expected=actual,
                    observed=claimed_cluster,
                )
            )

    # Classification: each value lives in exactly its consumers' subfiles.
    truth_clusters = rebuild_value_clusters(graph, allocation.assignment)
    claimed_clusters = allocation.classes.value_clusters
    for op_id in sorted(set(truth_clusters) | set(claimed_clusters)):
        truth = truth_clusters.get(op_id)
        claimed = claimed_clusters.get(op_id)
        if truth != claimed:
            findings.append(
                Finding(
                    kind="classification",
                    message=(
                        "value stored in the wrong subfiles for its "
                        "consumers"
                    ),
                    op=_op_label(graph, op_id),
                    expected=sorted(truth) if truth else None,
                    observed=sorted(claimed) if claimed else None,
                )
            )
    if findings:
        return findings

    # Per-subfile placement tables share one placement per value (which
    # is exactly the paper's "globals take the same index in every
    # subfile" rule); prove coverage, fidelity, and disjointness per file.
    placements = allocation.placements
    findings.extend(
        _check_placement_table(
            graph, "placements", placements, values, rebuilt, ii
        )
    )
    if findings:
        return findings
    per_file_claim: dict[str, int] = {}
    for cluster in range(allocation.n_clusters):
        file_name = f"subfile{cluster}"
        members = sorted(
            op_id
            for op_id, clusters in truth_clusters.items()
            if cluster in clusters
        )
        file_placements = [placements[op_id] for op_id in members]
        findings.extend(
            _file_overlaps(graph, file_name, file_placements, ii)
        )
        minimum = span_registers(file_placements, ii)
        claimed = allocation.cluster_registers(cluster)
        per_file_claim[file_name] = claimed
        if claimed != minimum:
            findings.append(
                Finding(
                    kind="requirement",
                    message=(
                        "claimed subfile register count differs from the "
                        "interference-derived minimum of the assignment"
                    ),
                    file=file_name,
                    expected=minimum,
                    observed=claimed,
                )
            )
        bound = interference_bound(
            (rebuilt[op_id] for op_id in members), ii
        )
        if not findings and claimed < bound:
            findings.append(
                Finding(
                    kind="requirement",
                    message="claimed subfile count below MaxLive",
                    file=file_name,
                    expected=bound,
                    observed=claimed,
                )
            )
    claimed_total = evaluation.requirement.registers
    recomputed_total = max(per_file_claim.values(), default=0)
    if not findings and claimed_total != recomputed_total:
        findings.append(
            Finding(
                kind="requirement",
                message=(
                    "reported requirement differs from the most loaded "
                    "subfile"
                ),
                expected=recomputed_total,
                observed=claimed_total,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Invariant 4: spill chains and traffic accounting
# ----------------------------------------------------------------------
def check_spills(
    evaluation: LoopEvaluation, schedule: Schedule
) -> list[Finding]:
    findings: list[Finding] = []
    graph = schedule.graph
    stores = [
        op
        for op in graph.operations
        if op.is_spill and op.optype is OpType.STORE
    ]
    reloads = [
        op
        for op in graph.operations
        if op.is_spill and op.optype is OpType.LOAD
    ]
    store_by_id = {op.op_id: op for op in stores}
    incoming: dict[int, list[Edge]] = {op.op_id: [] for op in reloads}
    for edge in graph.extra_edges():
        if edge.dst in incoming and edge.src in store_by_id:
            incoming[edge.dst].append(edge)

    for store in stores:
        refs = [
            operand
            for operand in store.operands
            if isinstance(operand, ValueRef)
        ]
        if len(refs) != 1 or not graph.op(refs[0].producer).defines_value:
            findings.append(
                Finding(
                    kind="spill",
                    message="spill store does not save exactly one value",
                    op=store.name,
                    cycle=schedule.time_of(store.op_id),
                    observed=len(refs),
                    expected=1,
                )
            )

    for reload in reloads:
        edges = incoming[reload.op_id]
        matching = [
            e
            for e in edges
            if store_by_id[e.src].symbol == reload.symbol
        ]
        if len(matching) != 1:
            findings.append(
                Finding(
                    kind="spill",
                    message=(
                        "reload lacks exactly one dominating spill store "
                        "of its symbol"
                    ),
                    op=reload.name,
                    cycle=schedule.time_of(reload.op_id),
                    file=reload.symbol,
                    expected=1,
                    observed=len(matching),
                )
            )
            continue
        edge = matching[0]
        store_time = schedule.time_of(edge.src)
        reload_time = schedule.time_of(reload.op_id)
        delay = edge_delay(edge, graph, schedule.machine)
        if reload_time + schedule.ii * edge.distance < store_time + delay:
            findings.append(
                Finding(
                    kind="spill",
                    message="reload issues before its store's value exists",
                    op=reload.name,
                    cycle=reload_time,
                    expected=store_time + delay
                    - schedule.ii * edge.distance,
                    observed=reload_time,
                )
            )

    # ``spilled_values`` counts spills the pipeline itself performed
    # (one per spill round), so spill stores already present in the
    # input graph -- a loop whose source was pre-spilled -- must not be
    # charged to the claim.
    preexisting = sum(
        1
        for op in evaluation.loop.graph.operations
        if op.is_spill and op.optype is OpType.STORE
    )
    if evaluation.spilled_values != len(stores) - preexisting:
        findings.append(
            Finding(
                kind="spill",
                message=(
                    "claimed spilled_values differs from the spill "
                    "stores the pipeline added to the schedule"
                ),
                expected=len(stores) - preexisting,
                observed=evaluation.spilled_values,
            )
        )
    return findings


def check_traffic(
    evaluation: LoopEvaluation, schedule: Schedule
) -> list[Finding]:
    findings: list[Finding] = []
    graph = schedule.graph
    ii = schedule.ii
    memory_ops = [
        op for op in graph.operations if op.optype.is_memory
    ]
    claimed = evaluation.memory_ops_per_iteration
    if claimed != len(memory_ops):
        findings.append(
            Finding(
                kind="traffic",
                message=(
                    "claimed memory_ops_per_iteration differs from the "
                    "memory operations in the schedule"
                ),
                expected=len(memory_ops),
                observed=claimed,
            )
        )
    bandwidth = evaluation.machine.memory_bandwidth
    per_row: dict[int, int] = {}
    for op in memory_ops:
        if op.op_id not in schedule.placements:
            continue  # resource findings cover missing placements
        row = schedule.placements[op.op_id].time % ii
        per_row[row] = per_row.get(row, 0) + 1
    for row in sorted(per_row):
        if per_row[row] > bandwidth:
            findings.append(
                Finding(
                    kind="bus",
                    message=(
                        "kernel row issues more memory operations than "
                        "the bus allows"
                    ),
                    cycle=row,
                    expected=bandwidth,
                    observed=per_row[row],
                )
            )
    return findings


def check_budget(evaluation: LoopEvaluation) -> list[Finding]:
    findings: list[Finding] = []
    budget = evaluation.register_budget
    if (
        evaluation.fits
        and budget is not None
        and evaluation.model is not Model.IDEAL
        and evaluation.requirement.registers > budget
    ):
        findings.append(
            Finding(
                kind="requirement",
                message="point claims to fit but exceeds its budget",
                expected=budget,
                observed=evaluation.requirement.registers,
            )
        )
    return findings


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def allocation_of(
    evaluation: LoopEvaluation,
) -> tuple[Schedule, UnifiedAllocation | DualAllocation]:
    """The schedule/allocation pair a point is proved against.

    A module-level seam exactly like
    :func:`repro.validate.differential.allocation_for`: mutation tests
    monkeypatch it to inject corrupted allocations.
    """
    requirement = evaluation.requirement
    if requirement.dual is not None:
        return requirement.dual.schedule, requirement.dual
    if requirement.unified is not None:
        return requirement.unified.schedule, requirement.unified
    raise StaticCheckError(
        f"evaluation of {evaluation.loop.name} under "
        f"{evaluation.model.value} carries no allocation to verify"
    )


def check_evaluation(
    evaluation: LoopEvaluation, reproducer: dict | None = None
) -> StaticCheck:
    """Prove one evaluated point's claims without executing it."""
    if reproducer is None:
        reproducer = {
            "loop": {"name": evaluation.loop.name},
            "machine": {"name": evaluation.machine.name},
            "model": evaluation.model.value,
            "register_budget": evaluation.register_budget,
        }
    reproducer = dict(reproducer, static=True)
    findings: list[Finding] = []
    schedule, allocation = allocation_of(evaluation)

    if schedule.ii != evaluation.ii:
        findings.append(
            Finding(
                kind="requirement",
                message="allocation's schedule disagrees with the claimed II",
                expected=evaluation.ii,
                observed=schedule.ii,
            )
        )

    dependence, edges_checked = check_dependences(schedule)
    findings.extend(dependence)
    findings.extend(check_resources(schedule))
    findings.extend(check_mii(evaluation, schedule))

    rebuilt = rebuild_lifetimes(schedule)
    if isinstance(allocation, DualAllocation):
        findings.extend(_check_dual(evaluation, allocation, rebuilt))
    else:
        findings.extend(_check_unified(evaluation, allocation, rebuilt))

    findings.extend(check_spills(evaluation, schedule))
    findings.extend(check_traffic(evaluation, schedule))
    findings.extend(check_budget(evaluation))

    return StaticCheck(
        reproducer=reproducer,
        model=evaluation.model.value,
        register_budget=evaluation.register_budget,
        ii=evaluation.ii,
        edges_checked=edges_checked,
        values_checked=len(rebuilt),
        findings=tuple(findings),
    )


__all__ = [
    "Finding",
    "StaticCheck",
    "StaticCheckError",
    "allocation_of",
    "check_budget",
    "check_dependences",
    "check_evaluation",
    "check_mii",
    "check_resources",
    "check_spills",
    "check_traffic",
    "interference_bound",
    "rebuild_lifetimes",
    "rebuild_value_clusters",
    "span_registers",
]
