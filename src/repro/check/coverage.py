"""Full-grid static verification: prove 100% of points, not a sample.

The dynamic gate (:mod:`repro.validate.sampling`) executes a seeded
sample because cycle-accurate simulation costs ``cycles x iterations``
per point.  The static proof is O(ops + edges) per point, so this module
simply walks the *entire* suite grid -- every loop under every register
file model -- and proves each evaluated point with
:func:`repro.check.invariants.check_evaluation`.  ``repro validate
--static`` and the report's check gate call this; the bench ``check``
scenario times it to document that 100% coverage is affordable.

Layering: ``check`` sits below ``validate`` (validate imports check and
folds findings into its reports), so the model grid and suite defaults
are defined here rather than imported from the sampling module.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.check.invariants import StaticCheck, check_evaluation
from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig, paper_config
from repro.pipeline.context import ArtifactStore
from repro.pipeline.pipelines import run_evaluation
from repro.workloads.suite import DEFAULT_SEED, perfect_club_like

DEFAULT_LATENCY = 6

# Same grid the sampled dynamic gate draws from: the unconstrained
# baseline plus the paper's three register-file organizations.
CHECK_MODELS: tuple[tuple[Model, int | None], ...] = (
    (Model.IDEAL, None),
    (Model.UNIFIED, 32),
    (Model.PARTITIONED, 16),
    (Model.SWAPPED, 16),
)

ProgressFn = Callable[[int, int], None]


@dataclass(frozen=True)
class StaticValidation:
    """Outcome of statically proving a whole suite grid."""

    n_loops: int
    suite_seed: int
    latency: int
    models: tuple[tuple[Model, int | None], ...]
    points: tuple[StaticCheck, ...]
    wall_seconds: float

    @property
    def ok(self) -> bool:
        return all(point.ok for point in self.points)

    @property
    def failures(self) -> tuple[StaticCheck, ...]:
        return tuple(point for point in self.points if not point.ok)

    @property
    def findings_count(self) -> int:
        return sum(len(point.findings) for point in self.points)

    @property
    def points_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.points) / self.wall_seconds

    def describe(self) -> str:
        """One footer-sized line: what was proved and at what rate."""
        verdict = (
            "all proved"
            if self.ok
            else f"{len(self.failures)} point(s) disproved "
            f"({self.findings_count} finding(s))"
        )
        return (
            f"{self.n_loops} loops x {len(self.models)} models = "
            f"{len(self.points)} points statically verified, {verdict} "
            f"({self.points_per_second:.0f} points/sec)"
        )

    def format(self) -> str:
        """Full text form (the ``repro validate --static`` output)."""
        lines = [
            f"static check: {self.describe()}",
            f"suite: {self.n_loops} loops (seed {self.suite_seed}), "
            f"paper machine L{self.latency}",
            f"wall time: {self.wall_seconds:.1f}s",
        ]
        for point in self.failures:
            lines.append(point.describe())
        if self.ok:
            lines.append(
                "every point's schedule and allocation is proved legal"
            )
        return "\n".join(lines)


def check_grid_point(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None,
    reproducer: dict | None = None,
    store: ArtifactStore | None = None,
    **knobs: object,
) -> StaticCheck:
    """Evaluate one point and statically prove it."""
    evaluation = run_evaluation(
        loop, machine, model, register_budget, store=store, **knobs
    )
    return check_evaluation(evaluation, reproducer=reproducer)


def run_static_validation(
    n_loops: int = 200,
    suite_seed: int = DEFAULT_SEED,
    latency: int = DEFAULT_LATENCY,
    models: Sequence[tuple[Model, int | None]] = CHECK_MODELS,
    loops: Iterable[Loop] | None = None,
    progress: ProgressFn | None = None,
) -> StaticValidation:
    """Statically verify every point of the suite grid.

    Unlike the sampled simulator gate this covers 100% of points; one
    shared :class:`ArtifactStore` keeps the evaluation side warm so the
    cost is dominated by the proofs themselves.
    """
    start = time.perf_counter()
    suite = (
        list(loops)
        if loops is not None
        else list(perfect_club_like(n_loops, seed=suite_seed))
    )
    machine = paper_config(latency)
    store = ArtifactStore()
    grid = tuple(models)
    total = len(suite) * len(grid)
    points: list[StaticCheck] = []
    for index, loop in enumerate(suite):
        for model, budget in grid:
            reproducer = {
                "loop": {
                    "type": "loop",
                    "kind": "suite",
                    "index": index,
                    "n_loops": len(suite),
                    "seed": suite_seed,
                },
                "machine": {
                    "type": "machine",
                    "kind": "paper",
                    "latency": latency,
                },
                "model": model.value,
                "register_budget": budget,
            }
            points.append(
                check_grid_point(
                    loop,
                    machine,
                    model,
                    budget,
                    reproducer=reproducer,
                    store=store,
                )
            )
            if progress is not None:
                progress(len(points), total)
    return StaticValidation(
        n_loops=len(suite),
        suite_seed=suite_seed,
        latency=latency,
        models=grid,
        points=tuple(points),
        wall_seconds=time.perf_counter() - start,
    )


__all__ = [
    "CHECK_MODELS",
    "DEFAULT_LATENCY",
    "StaticValidation",
    "check_grid_point",
    "run_static_validation",
]
