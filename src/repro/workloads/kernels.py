"""Hand-written floating-point loop kernels.

The paper's workload is ~800 innermost loops of the Perfect Club.  Those
dependence graphs are not available, so this module provides the classic
floating-point kernel shapes that dominate such suites -- BLAS level-1
operations, Livermore-style kernels, stencils, reductions, recurrences,
Horner chains -- written with the :class:`~repro.ir.builder.LoopBuilder` DSL.
They anchor the synthetic generator (:mod:`repro.workloads.synthetic`) with
realistic graphs and serve as integration-test subjects.

:func:`example_loop` is the worked example of the paper's Section 4.1 and is
pinned by golden tests (Tables 2, 3 and 4).
"""

from __future__ import annotations

from typing import Callable

from repro.ir.builder import LoopBuilder
from repro.ir.loop import Loop

KernelFactory = Callable[[], Loop]

_REGISTRY: dict[str, KernelFactory] = {}


def kernel(factory: KernelFactory) -> KernelFactory:
    """Register a kernel factory under its function name."""
    _REGISTRY[factory.__name__] = factory
    return factory


def kernel_names() -> list[str]:
    return sorted(_REGISTRY)


def make_kernel(name: str) -> Loop:
    return _REGISTRY[name]()


def all_kernels() -> list[Loop]:
    """Instantiate every registered kernel."""
    return [make_kernel(name) for name in kernel_names()]


# ----------------------------------------------------------------------
# The paper's example (Section 4.1)
# ----------------------------------------------------------------------
def example_loop(trip_count: int = 1000) -> Loop:
    """The worked example of the paper.

    ``z(i) = x(i) + t * (r * x(i) + y(i))`` -- two loads, one multiply by the
    invariant ``r``, an add, a multiply by the invariant ``t``, an add with
    ``x(i)`` again, and a store: exactly the dependence structure of
    Figure 2b (L1 feeds M3 and A6; M3 feeds A4; A4 feeds M5; M5 feeds A6;
    A6 feeds S7; L2 feeds A4).
    """
    b = LoopBuilder("example-4.1")
    l1 = b.load("x", name="L1")
    l2 = b.load("y", name="L2")
    m3 = b.mul(l1, b.inv("r"), name="M3")
    a4 = b.add(m3, l2, name="A4")
    m5 = b.mul(a4, b.inv("t"), name="M5")
    a6 = b.add(l1, m5, name="A6")
    b.store(a6, "z", name="S7")
    return b.build(
        trip_count=trip_count,
        source="z(i) = x(i) + t*(r*x(i) + y(i))",
    )


# ----------------------------------------------------------------------
# BLAS level 1 and friends
# ----------------------------------------------------------------------
@kernel
def daxpy() -> Loop:
    b = LoopBuilder("daxpy")
    x = b.load("x")
    y = b.load("y")
    b.store(b.add(b.mul(b.inv("a"), x), y), "y")
    return b.build(trip_count=2000, source="y(i) = y(i) + a*x(i)")


@kernel
def dot_product() -> Loop:
    b = LoopBuilder("dot_product")
    acc = b.placeholder()
    s = b.add(acc, b.mul(b.load("x"), b.load("y")), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=2000, source="s = s + x(i)*y(i)")


@kernel
def vector_scale() -> Loop:
    b = LoopBuilder("vector_scale")
    b.store(b.mul(b.inv("a"), b.load("x")), "y")
    return b.build(trip_count=1500, source="y(i) = a*x(i)")


@kernel
def vector_add() -> Loop:
    b = LoopBuilder("vector_add")
    b.store(b.add(b.load("x"), b.load("y")), "z")
    return b.build(trip_count=1500, source="z(i) = x(i) + y(i)")


@kernel
def triad() -> Loop:
    b = LoopBuilder("triad")
    b.store(b.add(b.load("b"), b.mul(b.inv("q"), b.load("c"))), "a")
    return b.build(trip_count=1800, source="a(i) = b(i) + q*c(i)")


@kernel
def sum_reduction() -> Loop:
    b = LoopBuilder("sum_reduction")
    acc = b.placeholder()
    s = b.add(acc, b.load("x"), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=2500, source="s = s + x(i)")


@kernel
def sxpy_norm() -> Loop:
    b = LoopBuilder("sxpy_norm")
    acc = b.placeholder()
    x = b.load("x")
    s = b.add(acc, b.mul(x, x), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=1200, source="s = s + x(i)**2")


@kernel
def rsqrt_newton() -> Loop:
    """One Newton step of 1/sqrt on each element (mul/add heavy)."""
    b = LoopBuilder("rsqrt_newton")
    x = b.load("x")
    y = b.load("y")  # current estimate
    yy = b.mul(y, y)
    xyy = b.mul(x, yy)
    half = b.mul(b.inv("half"), y)
    corr = b.sub(b.inv("three"), xyy)
    b.store(b.mul(half, corr), "y")
    return b.build(trip_count=800, source="y = 0.5*y*(3 - x*y*y)")


# ----------------------------------------------------------------------
# Livermore-style kernels
# ----------------------------------------------------------------------
@kernel
def hydro_fragment() -> Loop:
    """Livermore kernel 1: x(i) = q + y(i)*(r*z(i+10) + t*z(i+11))."""
    b = LoopBuilder("hydro_fragment")
    z10 = b.load("z10")
    z11 = b.load("z11")
    rz = b.mul(b.inv("r"), z10)
    tz = b.mul(b.inv("t"), z11)
    inner = b.add(rz, tz)
    y = b.load("y")
    prod = b.mul(y, inner)
    b.store(b.add(b.inv("q"), prod), "x")
    return b.build(
        trip_count=990, source="x(i) = q + y(i)*(r*z(i+10) + t*z(i+11))"
    )


@kernel
def iccg() -> Loop:
    """Livermore kernel 2 (simplified ICCG excerpt)."""
    b = LoopBuilder("iccg")
    x0 = b.load("x0")
    x1 = b.load("x1")
    v = b.load("v")
    t = b.sub(x0, b.mul(v, x1))
    b.store(t, "xout")
    acc = b.placeholder()
    s = b.add(acc, b.mul(t, t), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=500, source="x(ii)=x(i)-v(i)*x(i+1); s+=x*x")


@kernel
def inner_product_5pt() -> Loop:
    """Livermore kernel 6-style: banded linear equations row."""
    b = LoopBuilder("inner_product_5pt")
    acc = b.placeholder()
    t0 = b.mul(b.load("a0"), b.load("x0"))
    t1 = b.mul(b.load("a1"), b.load("x1"))
    partial = b.add(t0, t1)
    s = b.add(acc, partial, name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=400, source="s += a0*x0 + a1*x1")


@kernel
def state_equation() -> Loop:
    """Livermore kernel 7: equation-of-state fragment (wide, no recurrence)."""
    b = LoopBuilder("state_equation")
    u = b.load("u")
    z = b.load("z")
    y = b.load("y")
    r = b.inv("r")
    t = b.inv("t")
    uz = b.mul(u, z)
    ry = b.mul(r, y)
    inner = b.add(uz, ry)
    ti = b.mul(t, inner)
    uzr = b.mul(uz, r)
    deep = b.add(ti, uzr)
    term = b.mul(u, deep)
    total = b.add(u, term)
    b.store(total, "x")
    return b.build(
        trip_count=995,
        source="x(i) = u(i) + u(i)*(t*(u*z + r*y) + u*z*r)",
    )


@kernel
def adi_fragment() -> Loop:
    """Livermore kernel 8 excerpt: ADI integration (division)."""
    b = LoopBuilder("adi_fragment")
    du1 = b.load("du1")
    du2 = b.load("du2")
    u1 = b.load("u1")
    a = b.mul(b.inv("a11"), du1)
    c = b.mul(b.inv("a12"), du2)
    num = b.add(u1, b.add(a, c))
    b.store(b.div(num, b.inv("sig")), "u1out")
    return b.build(trip_count=300, source="u1out = (u1 + a11*du1 + a12*du2)/sig")


@kernel
def tridiag_elimination() -> Loop:
    """Livermore kernel 5: x(i) = z(i) * (y(i) - x(i-1)) -- a recurrence."""
    b = LoopBuilder("tridiag_elimination")
    prev = b.placeholder()
    y = b.load("y")
    z = b.load("z")
    diff = b.sub(y, prev)
    x = b.mul(z, diff, name="x")
    b.bind(prev, x, distance=1)
    b.store(x, "x")
    return b.build(trip_count=995, source="x(i) = z(i)*(y(i) - x(i-1))")


@kernel
def first_difference() -> Loop:
    b = LoopBuilder("first_difference")
    x1 = b.load("x1")
    x0 = b.load("x0")
    b.store(b.sub(x1, x0), "y")
    return b.build(trip_count=995, source="y(i) = x(i+1) - x(i)")


@kernel
def first_sum() -> Loop:
    """Livermore kernel 11: partial sums, x(i) = x(i-1) + y(i)."""
    b = LoopBuilder("first_sum")
    prev = b.placeholder()
    x = b.add(prev, b.load("y"), name="x")
    b.bind(prev, x, distance=1)
    b.store(x, "x")
    return b.build(trip_count=995, source="x(i) = x(i-1) + y(i)")


@kernel
def general_linear_recurrence() -> Loop:
    """Livermore kernel 19-style: coupled recurrence."""
    b = LoopBuilder("general_linear_recurrence")
    prev = b.placeholder()
    sa = b.load("sa")
    sb = b.load("sb")
    t = b.add(sa, b.mul(sb, prev), name="stb")
    b.bind(prev, t, distance=1)
    b.store(t, "stb")
    return b.build(trip_count=101, source="stb(i) = sa(i) + sb(i)*stb(i-1)")


@kernel
def planckian() -> Loop:
    """Livermore kernel 15 flavor: y/u ratio and products (uses division)."""
    b = LoopBuilder("planckian")
    y = b.load("y")
    u = b.load("u")
    v = b.div(y, u)
    w = b.mul(v, b.load("x"))
    b.store(w, "w")
    return b.build(trip_count=600, source="w(i) = x(i) * y(i)/u(i)")


# ----------------------------------------------------------------------
# Stencils
# ----------------------------------------------------------------------
@kernel
def stencil3() -> Loop:
    b = LoopBuilder("stencil3")
    a = b.load("xm1")
    c = b.load("x0")
    d = b.load("xp1")
    s = b.add(b.add(a, c), d)
    b.store(b.mul(b.inv("third"), s), "y")
    return b.build(trip_count=998, source="y(i) = (x(i-1)+x(i)+x(i+1))/3")


@kernel
def stencil5_weighted() -> Loop:
    b = LoopBuilder("stencil5_weighted")
    xm2 = b.load("xm2")
    xm1 = b.load("xm1")
    x0 = b.load("x0")
    xp1 = b.load("xp1")
    xp2 = b.load("xp2")
    t0 = b.mul(b.inv("w2"), b.add(xm2, xp2))
    t1 = b.mul(b.inv("w1"), b.add(xm1, xp1))
    t2 = b.mul(b.inv("w0"), x0)
    b.store(b.add(t0, b.add(t1, t2)), "y")
    return b.build(
        trip_count=996,
        source="y(i) = w2*(x(i-2)+x(i+2)) + w1*(x(i-1)+x(i+1)) + w0*x(i)",
    )


@kernel
def heat_explicit() -> Loop:
    """1-D explicit heat step: u' = u + k*(u(i-1) - 2u(i) + u(i+1))."""
    b = LoopBuilder("heat_explicit")
    um = b.load("um1")
    u0 = b.load("u0")
    up = b.load("up1")
    lap = b.add(b.sub(um, b.add(u0, u0)), up)
    b.store(b.add(u0, b.mul(b.inv("k"), lap)), "unew")
    return b.build(
        trip_count=998, source="u'(i) = u(i) + k*(u(i-1)-2u(i)+u(i+1))"
    )


@kernel
def wave_leapfrog() -> Loop:
    b = LoopBuilder("wave_leapfrog")
    um = b.load("um1")
    u0 = b.load("u0")
    up = b.load("up1")
    uprev = b.load("uprev")
    lap = b.add(b.sub(um, b.add(u0, u0)), up)
    unew = b.sub(b.add(b.add(u0, u0), b.mul(b.inv("c2"), lap)), uprev)
    b.store(unew, "unew")
    return b.build(
        trip_count=700,
        source="u'(i) = 2u(i) - uprev(i) + c2*lap(u)",
    )


# ----------------------------------------------------------------------
# Polynomials, interpolation, complex arithmetic
# ----------------------------------------------------------------------
@kernel
def horner4() -> Loop:
    b = LoopBuilder("horner4")
    x = b.load("x")
    p = b.inv("c4")
    for coeff in ("c3", "c2", "c1", "c0"):
        p = b.add(b.mul(p, x), b.inv(coeff))
    b.store(p, "y")
    return b.build(trip_count=900, source="y(i) = poly4(x(i)) via Horner")


@kernel
def horner8() -> Loop:
    b = LoopBuilder("horner8")
    x = b.load("x")
    p = b.inv("c8")
    for k in range(7, -1, -1):
        p = b.add(b.mul(p, x), b.inv(f"c{k}"))
    b.store(p, "y")
    return b.build(trip_count=450, source="y(i) = poly8(x(i)) via Horner")


@kernel
def complex_multiply() -> Loop:
    b = LoopBuilder("complex_multiply")
    ar = b.load("ar")
    ai = b.load("ai")
    br = b.load("br")
    bi = b.load("bi")
    cr = b.sub(b.mul(ar, br), b.mul(ai, bi))
    ci = b.add(b.mul(ar, bi), b.mul(ai, br))
    b.store(cr, "cr")
    b.store(ci, "ci")
    return b.build(trip_count=512, source="c(i) = a(i) * b(i) (complex)")


@kernel
def fft_butterfly() -> Loop:
    b = LoopBuilder("fft_butterfly")
    xr = b.load("xr")
    xi = b.load("xi")
    yr = b.load("yr")
    yi = b.load("yi")
    wr = b.inv("wr")
    wi = b.inv("wi")
    tr = b.sub(b.mul(yr, wr), b.mul(yi, wi))
    ti = b.add(b.mul(yr, wi), b.mul(yi, wr))
    b.store(b.add(xr, tr), "xr")
    b.store(b.add(xi, ti), "xi")
    b.store(b.sub(xr, tr), "yr")
    b.store(b.sub(xi, ti), "yi")
    return b.build(trip_count=256, source="radix-2 FFT butterfly")


@kernel
def linear_interpolation() -> Loop:
    b = LoopBuilder("linear_interpolation")
    x0 = b.load("x0")
    x1 = b.load("x1")
    t = b.load("t")
    b.store(b.add(x0, b.mul(t, b.sub(x1, x0))), "y")
    return b.build(trip_count=850, source="y = x0 + t*(x1-x0)")


@kernel
def cubic_spline_eval() -> Loop:
    b = LoopBuilder("cubic_spline_eval")
    t = b.load("t")
    a = b.load("a")
    bb = b.load("b")
    c = b.load("c")
    d = b.load("d")
    p = b.add(b.mul(b.add(b.mul(b.add(b.mul(d, t), c), t), bb), t), a)
    b.store(p, "y")
    return b.build(trip_count=640, source="y = a + t*(b + t*(c + t*d))")


# ----------------------------------------------------------------------
# ODE / physics style bodies
# ----------------------------------------------------------------------
@kernel
def euler_step() -> Loop:
    b = LoopBuilder("euler_step")
    x = b.load("x")
    v = b.load("v")
    f = b.load("f")
    h = b.inv("h")
    b.store(b.add(x, b.mul(h, v)), "x")
    b.store(b.add(v, b.mul(h, f)), "v")
    return b.build(trip_count=1024, source="x += h*v; v += h*f")


@kernel
def velocity_verlet() -> Loop:
    b = LoopBuilder("velocity_verlet")
    x = b.load("x")
    v = b.load("v")
    a0 = b.load("a0")
    a1 = b.load("a1")
    h = b.inv("h")
    h2 = b.inv("h2")
    xn = b.add(x, b.add(b.mul(h, v), b.mul(h2, a0)))
    vn = b.add(v, b.mul(h, b.mul(b.inv("half"), b.add(a0, a1))))
    b.store(xn, "x")
    b.store(vn, "v")
    return b.build(trip_count=512, source="velocity Verlet update")


@kernel
def pressure_gradient() -> Loop:
    b = LoopBuilder("pressure_gradient")
    p0 = b.load("p0")
    p1 = b.load("p1")
    rho = b.load("rho")
    grad = b.sub(p1, p0)
    b.store(b.div(b.mul(b.inv("scale"), grad), rho), "g")
    return b.build(trip_count=480, source="g(i) = scale*(p(i+1)-p(i))/rho(i)")


@kernel
def lorentz_force() -> Loop:
    b = LoopBuilder("lorentz_force")
    vx = b.load("vx")
    vy = b.load("vy")
    bz = b.load("bz")
    q = b.inv("q")
    fx = b.mul(q, b.mul(vy, bz))
    fy = b.neg(b.mul(q, b.mul(vx, bz)))
    b.store(fx, "fx")
    b.store(fy, "fy")
    return b.build(trip_count=600, source="f = q * v x B (z-field)")


@kernel
def gather_scale_accumulate() -> Loop:
    b = LoopBuilder("gather_scale_accumulate")
    acc = b.placeholder()
    g = b.load("g")
    w = b.load("w")
    contrib = b.mul(g, w)
    s = b.add(acc, contrib, name="s")
    b.bind(acc, s, distance=1)
    b.store(contrib, "c")
    return b.build(trip_count=750, source="c(i)=g*w; s += c(i)")


@kernel
def average_chain() -> Loop:
    """Deep dependent chain of averages -- long lifetimes, no ILP."""
    b = LoopBuilder("average_chain")
    v = b.load("x")
    half = b.inv("half")
    for k in range(6):
        v = b.mul(half, b.add(v, b.inv(f"m{k}")))
    b.store(v, "y")
    return b.build(trip_count=350, source="6 chained average steps")


@kernel
def butterfly_wide() -> Loop:
    """Wide independent dataflow -- high ILP, high register pressure."""
    b = LoopBuilder("butterfly_wide")
    a0 = b.load("a0")
    a1 = b.load("a1")
    a2 = b.load("a2")
    a3 = b.load("a3")
    s0 = b.add(a0, a1)
    d0 = b.sub(a0, a1)
    s1 = b.add(a2, a3)
    d1 = b.sub(a2, a3)
    b.store(b.add(s0, s1), "b0")
    b.store(b.sub(s0, s1), "b1")
    b.store(b.add(d0, d1), "b2")
    b.store(b.sub(d0, d1), "b3")
    return b.build(trip_count=256, source="4-point Hadamard butterfly")


@kernel
def second_order_recurrence() -> Loop:
    """x(i) = a*x(i-1) + b*x(i-2) + u(i) -- distance-2 recurrence."""
    b = LoopBuilder("second_order_recurrence")
    p1 = b.placeholder()
    p2 = b.placeholder()
    u = b.load("u")
    t = b.add(b.mul(b.inv("a"), p1), b.mul(b.inv("b"), p2))
    x = b.add(t, u, name="x")
    b.bind(p1, x, distance=1)
    b.bind(p2, x, distance=2)
    b.store(x, "x")
    return b.build(trip_count=800, source="x(i) = a*x(i-1) + b*x(i-2) + u(i)")


@kernel
def normalized_difference() -> Loop:
    b = LoopBuilder("normalized_difference")
    a = b.load("a")
    c = b.load("b")
    num = b.sub(a, c)
    den = b.add(a, c)
    b.store(b.div(num, den), "ndvi")
    return b.build(trip_count=900, source="y = (a-b)/(a+b)")


__all__ = [
    "all_kernels",
    "example_loop",
    "kernel_names",
    "make_kernel",
]


# ----------------------------------------------------------------------
# Additional Livermore/BLAS-style kernels (workload breadth)
# ----------------------------------------------------------------------
@kernel
def banded_matrix_multiply() -> Loop:
    """Livermore kernel 3-style band product row."""
    b = LoopBuilder("banded_matrix_multiply")
    acc = b.placeholder()
    lm = b.mul(b.load("am1"), b.load("xm1"))
    l0 = b.mul(b.load("a0"), b.load("x0"))
    lp = b.mul(b.load("ap1"), b.load("xp1"))
    s = b.add(acc, b.add(lm, b.add(l0, lp)), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=460, source="s += a(-1)x(-1)+a(0)x(0)+a(+1)x(+1)")


@kernel
def matrix_vector_row() -> Loop:
    """One row of y = A*x, four-way unrolled inner product."""
    b = LoopBuilder("matrix_vector_row")
    acc = b.placeholder()
    t0 = b.mul(b.load("a0"), b.load("x0"))
    t1 = b.mul(b.load("a1"), b.load("x1"))
    t2 = b.mul(b.load("a2"), b.load("x2"))
    t3 = b.mul(b.load("a3"), b.load("x3"))
    s = b.add(acc, b.add(b.add(t0, t1), b.add(t2, t3)), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=250, source="s += sum_{u=0..3} a_u * x_u")


@kernel
def saxpy_fused_pair() -> Loop:
    """Two interleaved saxpy updates sharing a loaded scale vector."""
    b = LoopBuilder("saxpy_fused_pair")
    s = b.load("s")
    x1 = b.load("x1")
    x2 = b.load("x2")
    b.store(b.add(x1, b.mul(s, b.inv("a1"))), "x1")
    b.store(b.add(x2, b.mul(s, b.inv("a2"))), "x2")
    return b.build(trip_count=640, source="x1 += a1*s; x2 += a2*s")


@kernel
def predictor_corrector() -> Loop:
    """Two-term recurrence with a correction step (Livermore 20 flavor)."""
    b = LoopBuilder("predictor_corrector")
    prev = b.placeholder()
    g = b.load("g")
    predicted = b.add(prev, b.mul(b.inv("h"), g), name="pred")
    corrected = b.mul(b.inv("w"), b.add(predicted, b.load("u")))
    b.bind(prev, corrected, distance=1)
    b.store(corrected, "x")
    return b.build(trip_count=380, source="x = w*(x' + h*g + u)")


@kernel
def monte_carlo_step() -> Loop:
    """Weighted accumulation of two independent products."""
    b = LoopBuilder("monte_carlo_step")
    acc1 = b.placeholder()
    acc2 = b.placeholder()
    v = b.load("v")
    w = b.load("w")
    e1 = b.add(acc1, b.mul(v, w), name="e1")
    e2 = b.add(acc2, b.mul(v, v), name="e2")
    b.bind(acc1, e1, distance=1)
    b.bind(acc2, e2, distance=1)
    return b.build(trip_count=1300, source="e1 += v*w; e2 += v*v")


@kernel
def implicit_residual() -> Loop:
    """Residual of an implicit update: r = b - (d*x + o*xm1 + o*xp1)."""
    b = LoopBuilder("implicit_residual")
    x0 = b.load("x0")
    xm = b.load("xm1")
    xp = b.load("xp1")
    rhs = b.load("rhs")
    ax = b.add(
        b.mul(b.inv("diag"), x0),
        b.mul(b.inv("off"), b.add(xm, xp)),
    )
    b.store(b.sub(rhs, ax), "r")
    return b.build(trip_count=720, source="r = rhs - (d*x + o*(x(-1)+x(+1)))")


@kernel
def min_max_scale() -> Loop:
    """Normalize with a reciprocal range (division-heavy)."""
    b = LoopBuilder("min_max_scale")
    x = b.load("x")
    num = b.sub(x, b.inv("lo"))
    b.store(b.div(num, b.inv("range")), "y")
    return b.build(trip_count=980, source="y = (x - lo)/range")


@kernel
def three_term_recurrence() -> Loop:
    """Chebyshev-style: t(i) = 2*x*t(i-1) - t(i-2)."""
    b = LoopBuilder("three_term_recurrence")
    p1 = b.placeholder()
    p2 = b.placeholder()
    t = b.sub(b.mul(b.inv("twox"), p1), p2, name="t")
    b.bind(p1, t, distance=1)
    b.bind(p2, t, distance=2)
    b.store(t, "t")
    return b.build(trip_count=510, source="t(i) = 2x*t(i-1) - t(i-2)")


@kernel
def harmonic_series() -> Loop:
    """Division inside a reduction."""
    b = LoopBuilder("harmonic_series")
    acc = b.placeholder()
    d = b.load("d")
    s = b.add(acc, b.div(b.inv("one"), d), name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=870, source="s += 1/d(i)")


@kernel
def cross_product_2d() -> Loop:
    b = LoopBuilder("cross_product_2d")
    ax = b.load("ax")
    ay = b.load("ay")
    bx = b.load("bx")
    by = b.load("by")
    b.store(b.sub(b.mul(ax, by), b.mul(ay, bx)), "cz")
    return b.build(trip_count=540, source="cz = ax*by - ay*bx")


@kernel
def damped_oscillator() -> Loop:
    """Coupled position/velocity recurrences."""
    b = LoopBuilder("damped_oscillator")
    xp = b.placeholder()
    vp = b.placeholder()
    f = b.load("f")
    v = b.sub(b.mul(b.inv("damp"), vp), b.mul(b.inv("k"), xp), name="v")
    v2 = b.add(v, b.mul(b.inv("h"), f))
    x = b.add(xp, b.mul(b.inv("h"), v2), name="x")
    b.bind(vp, v2, distance=1)
    b.bind(xp, x, distance=1)
    b.store(x, "x")
    return b.build(trip_count=420, source="v' = damp*v - k*x + h*f; x' = x + h*v'")


@kernel
def log_sum_exp_partial() -> Loop:
    """Shift-and-accumulate pattern (exp approximated by its argument)."""
    b = LoopBuilder("log_sum_exp_partial")
    acc = b.placeholder()
    z = b.sub(b.load("z"), b.inv("zmax"))
    approx = b.add(b.inv("one"), b.add(z, b.mul(b.inv("half"), b.mul(z, z))))
    s = b.add(acc, approx, name="s")
    b.bind(acc, s, distance=1)
    return b.build(trip_count=310, source="s += 1 + z + z^2/2 (exp approx)")
