"""Calibrated synthetic loop generator (Perfect Club substitute).

The paper schedules ~800 floating-point inner loops extracted from the
Perfect Club benchmarks.  Those dependence graphs are unavailable, so this
generator produces seeded, reproducible loops with the structural features
that drive register pressure in such suites:

* a heavy-tailed size distribution (many small loops, few large ones);
* realistic operation mixes (balanced add/mul, occasional divisions,
  load/arithmetic ratios of FP code after scalar optimization);
* dataflow shaped between *chains* (long dependent paths, long lifetimes)
  and *wide* independent trees (high ILP, many concurrent lifetimes);
* optional loop-carried recurrences (accumulators, first/second-order
  filters) with distances 1-2;
* every computed value is eventually consumed (dead code does not survive
  the compilers the paper extracted graphs from);
* lognormal trip counts, positively correlated with loop size so that
  high-pressure loops carry a large share of execution time -- the property
  behind the paper's Figure 7 and the "49.1% of cycles above 64 registers"
  observation for P2L6.

Calibration targets (unified model, see EXPERIMENTS.md): fractions of loops
allocatable with 16/32/64 registers in the neighbourhood of the paper's
Table 1 for P1L3 .. P2L6.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.ir.builder import InvariantRef, LoopBuilder, Value
from repro.ir.loop import Loop


@dataclass(frozen=True)
class SizeClass:
    """One stratum of the loop-size mixture."""

    name: str
    weight: float
    min_arith: int
    max_arith: int


@dataclass(frozen=True)
class SyntheticConfig:
    """Knobs of the synthetic generator (defaults are the calibrated set)."""

    size_classes: tuple[SizeClass, ...] = (
        SizeClass("small", 0.52, 2, 7),
        SizeClass("medium", 0.34, 8, 18),
        SizeClass("large", 0.14, 19, 42),
    )
    #: When set (the calibrated default), arithmetic-op counts are drawn
    #: lognormally instead of from ``size_classes``:
    #: ``round(exp(N(size_mu, size_sigma)))`` clipped to
    #: ``[size_min, size_max]``.  A lognormal matches the shallow cumulative
    #: distributions of the paper's Figures 6/7 better than a mixture.
    size_mu: float | None = 1.35
    size_sigma: float = 1.15
    size_min: int = 2
    size_max: int = 40
    #: Probability that a binary operand is a fresh load instead of a value.
    load_operand_prob: float = 0.28
    #: Probability that a binary operand is a loop invariant.
    invariant_operand_prob: float = 0.26
    #: Operation mix among arithmetic nodes.
    mul_prob: float = 0.42
    sub_prob: float = 0.16
    div_prob: float = 0.06
    #: Chain bias: probability of consuming the *most recent* value
    #: (creates long dependent chains; the complement picks uniformly,
    #: creating width and overlapping lifetimes).
    chain_bias: float = 0.45
    #: Probability a loop carries an accumulator-style recurrence.
    recurrence_prob: float = 0.28
    #: Probability a recurrence has distance 2 instead of 1.
    recurrence_distance2_prob: float = 0.15
    #: Trip-count lognormal parameters.
    trip_mu: float = 4.6
    trip_sigma: float = 1.1
    #: Extra trip weight per arithmetic op (pressure/time correlation).
    trip_size_gain: float = 0.025
    max_trip: int = 50_000


def _pick_size(rng: random.Random, config: SyntheticConfig) -> SizeClass:
    total = sum(c.weight for c in config.size_classes)
    r = rng.random() * total
    acc = 0.0
    for cls in config.size_classes:
        acc += cls.weight
        if r <= acc:
            return cls
    return config.size_classes[-1]


def generate_loop(
    index: int,
    seed: int = 20061995,
    config: SyntheticConfig | None = None,
) -> Loop:
    """Generate the ``index``-th synthetic loop of a seeded family."""
    config = config or SyntheticConfig()
    rng = random.Random(f"{seed}:{index}")
    b = LoopBuilder(f"synthetic-{index:04d}")

    if config.size_mu is not None:
        n_arith = round(math.exp(rng.gauss(config.size_mu, config.size_sigma)))
        n_arith = max(config.size_min, min(config.size_max, n_arith))
        size_name = "lognormal"
    else:
        size = _pick_size(rng, config)
        n_arith = rng.randint(size.min_arith, size.max_arith)
        size_name = size.name

    values: list[Value] = []
    n_invariants = 1 + rng.randint(0, 3)
    invariants = [f"c{k}" for k in range(n_invariants)]
    n_seed_loads = max(1, round(n_arith * rng.uniform(0.25, 0.55)))
    load_count = 0
    for _ in range(n_seed_loads):
        values.append(b.load(f"arr{load_count}"))
        load_count += 1

    # Optional recurrences are threaded through ordinary arithmetic by
    # binding a placeholder to a late value.
    placeholders = []
    if rng.random() < config.recurrence_prob:
        ph = b.placeholder()
        distance = 2 if rng.random() < config.recurrence_distance2_prob else 1
        placeholders.append((ph, distance))

    def pick_value() -> Value:
        if values and (rng.random() < config.chain_bias):
            return values[-1]
        return rng.choice(values)

    def pick_operand() -> Value | InvariantRef:
        r = rng.random()
        if r < config.load_operand_prob:
            nonlocal load_count
            v = b.load(f"arr{load_count}")
            load_count += 1
            values.append(v)
            return v
        if r < config.load_operand_prob + config.invariant_operand_prob:
            return b.inv(rng.choice(invariants))
        return pick_value()

    recurrence_used = False
    for i in range(n_arith):
        r = rng.random()
        a = pick_value()
        # Place the recurrence placeholder as an operand of a middle op.
        if placeholders and not recurrence_used and i >= n_arith // 3:
            second = placeholders[0][0]
            recurrence_used = True
        else:
            second = pick_operand()
        if r < config.mul_prob:
            v = b.mul(a, second)
        elif r < config.mul_prob + config.sub_prob:
            v = b.sub(a, second)
        elif r < config.mul_prob + config.sub_prob + config.div_prob:
            v = b.div(a, second)
        else:
            v = b.add(a, second)
        values.append(v)

    for ph, distance in placeholders:
        if recurrence_used:
            b.bind(ph, values[-1], distance=distance)
        else:  # tiny loop: attach the recurrence to the final value
            combined = b.add(ph, values[-1])
            values.append(combined)
            b.bind(ph, combined, distance=distance)

    _store_sinks(b, values, rng)

    trips = _trip_count(rng, n_arith, config)
    return b.build(
        trip_count=trips,
        source=f"synthetic ({size_name}, {n_arith} arith ops)",
    )


def _store_sinks(b: LoopBuilder, values: list[Value], rng: random.Random) -> None:
    """Store every value that nothing consumes (no dead code).

    Mirrors real loop bodies: results either feed later operations or are
    written back.  A few sinks are merged before storing to keep the
    store count realistic.
    """
    consumed = _consumed_ids(b)
    sinks = [v for v in values if v.op_id not in consumed]
    if not sinks:
        sinks = [values[-1]]
    # Merge surplus sinks pairwise so stores stay a realistic fraction.
    max_stores = max(1, 1 + len(values) // 8)
    while len(sinks) > max_stores:
        a = sinks.pop(rng.randrange(len(sinks)))
        c = sinks.pop(rng.randrange(len(sinks)))
        sinks.append(b.add(a, c))
    for idx, sink in enumerate(sinks):
        b.store(sink, f"out{idx}")


def _consumed_ids(b: LoopBuilder) -> set[int]:
    from repro.ir.operation import ValueRef

    consumed: set[int] = set()
    for op in b._graph.operations:
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                consumed.add(operand.producer)
    return consumed


def _trip_count(
    rng: random.Random, n_arith: int, config: SyntheticConfig
) -> int:
    mu = config.trip_mu + config.trip_size_gain * n_arith
    trips = int(math.exp(rng.gauss(mu, config.trip_sigma)))
    return max(4, min(config.max_trip, trips))


def generate_suite(
    n_loops: int,
    seed: int = 20061995,
    config: SyntheticConfig | None = None,
) -> list[Loop]:
    """A reproducible family of ``n_loops`` synthetic loops."""
    return [generate_loop(i, seed=seed, config=config) for i in range(n_loops)]


__all__ = [
    "SizeClass",
    "SyntheticConfig",
    "generate_loop",
    "generate_suite",
]
