"""Workload suites: the Perfect-Club-like collection used by experiments.

A :class:`Suite` is a named, ordered list of loops with trip-count weights.
The default experimental suite mixes the hand-written kernels of
:mod:`repro.workloads.kernels` with the calibrated synthetic family of
:mod:`repro.workloads.synthetic`, matching the scale of the paper's ~800
Perfect Club inner loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.ir.loop import Loop
from repro.workloads.kernels import all_kernels
from repro.workloads.synthetic import SyntheticConfig, generate_suite

#: Default size of the full experimental suite ("almost 800 loops").
DEFAULT_SUITE_SIZE = 800
DEFAULT_SEED = 20061995


@dataclass(frozen=True)
class Suite:
    """A named workload.

    ``seed`` records the synthetic-generation seed the suite was built
    from (``None`` for hand-assembled suites), so sweep jobs can name
    their workload reproducibly.
    """

    name: str
    loops: tuple[Loop, ...]
    seed: int | None = None

    def __len__(self) -> int:
        return len(self.loops)

    def __iter__(self) -> Iterator[Loop]:
        return iter(self.loops)

    @property
    def total_trips(self) -> int:
        return sum(loop.trip_count for loop in self.loops)

    def subset(self, n: int, name: str | None = None) -> "Suite":
        """Deterministic stratified subset: every ceil(len/n)-th loop."""
        if n >= len(self.loops):
            return self
        step = len(self.loops) / n
        picked = tuple(
            self.loops[int(i * step)] for i in range(n)
        )
        return Suite(name or f"{self.name}-sub{n}", picked, seed=self.seed)


def perfect_club_like(
    n_loops: int = DEFAULT_SUITE_SIZE,
    seed: int = DEFAULT_SEED,
    include_kernels: bool = True,
    config: SyntheticConfig | None = None,
) -> Suite:
    """The Perfect-Club substitute suite.

    ``n_loops`` is the total size; the ~30 hand-written kernels are included
    first (when requested) and the remainder is synthetic, generated
    deterministically from ``seed`` -- same seed, same loops, in any
    process, which is what makes engine sweep jobs reproducible and
    cacheable across runs.
    """
    loops: list[Loop] = []
    if include_kernels:
        loops.extend(all_kernels())
    remaining = max(0, n_loops - len(loops))
    loops.extend(generate_suite(remaining, seed=seed, config=config))
    name = f"perfect-club-like-{n_loops}"
    if seed != DEFAULT_SEED:
        name += f"-s{seed}"
    return Suite(name, tuple(loops[:n_loops]), seed=seed)


def quick_suite(n_loops: int = 80, seed: int = DEFAULT_SEED) -> Suite:
    """A small but representative suite for tests and fast benchmarks."""
    return perfect_club_like(n_loops=n_loops, seed=seed)


__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_SUITE_SIZE",
    "Suite",
    "perfect_club_like",
    "quick_suite",
]
