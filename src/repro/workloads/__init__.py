"""Workloads: the loops every experiment measures (paper Section 5.1).

The paper evaluates 1258 innermost DO loops from the Perfect Club; this
package provides the stand-ins: ~50 hand-written numerical kernels
(:mod:`~repro.workloads.kernels`, including the Section 4.1
``example_loop``), a seeded synthetic loop generator shaped like them
(:mod:`~repro.workloads.synthetic`), and :class:`~repro.workloads.suite.Suite`
-- the deterministic Perfect-Club-like mix the figures run on.

Key entry points: :func:`~repro.workloads.suite.perfect_club_like` (the
default suite, ``DEFAULT_SEED``-reproducible), ``quick_suite`` (small,
for tests), :func:`~repro.workloads.kernels.example_loop`, and
:func:`~repro.workloads.synthetic.generate_suite` for custom mixes.
"""

from repro.workloads.kernels import (
    all_kernels,
    example_loop,
    kernel_names,
    make_kernel,
)
from repro.workloads.suite import (
    DEFAULT_SEED,
    DEFAULT_SUITE_SIZE,
    Suite,
    perfect_club_like,
    quick_suite,
)
from repro.workloads.synthetic import (
    SizeClass,
    SyntheticConfig,
    generate_loop,
    generate_suite,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_SUITE_SIZE",
    "SizeClass",
    "Suite",
    "SyntheticConfig",
    "all_kernels",
    "example_loop",
    "generate_loop",
    "generate_suite",
    "kernel_names",
    "make_kernel",
    "perfect_club_like",
    "quick_suite",
]
