"""Workloads: hand-written kernels, synthetic generator, suites."""

from repro.workloads.kernels import (
    all_kernels,
    example_loop,
    kernel_names,
    make_kernel,
)
from repro.workloads.suite import (
    DEFAULT_SEED,
    DEFAULT_SUITE_SIZE,
    Suite,
    perfect_club_like,
    quick_suite,
)
from repro.workloads.synthetic import (
    SizeClass,
    SyntheticConfig,
    generate_loop,
    generate_suite,
)

__all__ = [
    "DEFAULT_SEED",
    "DEFAULT_SUITE_SIZE",
    "SizeClass",
    "Suite",
    "SyntheticConfig",
    "all_kernels",
    "example_loop",
    "generate_loop",
    "generate_suite",
    "kernel_names",
    "make_kernel",
    "perfect_club_like",
    "quick_suite",
]
