"""``python -m repro`` -- experiments, sweeps, reports, cache management.

Subcommands::

    python -m repro run --loops 200 --workers 8   # the full paper suite
    python -m repro sweep --name rf-size --loops 64
    python -m repro sweep --loops 8 --workers 2   # default grid, smoke scale
    python -m repro report --loops 200 --format html --out report
    python -m repro report --check   # exit non-zero unless paper reproduced
    python -m repro bench --json BENCH.json --loops 200
    python -m repro bench --baseline benchmarks/baseline-ci.json --loops 8
    python -m repro cache show
    python -m repro cache prune   # drop entries orphaned by code edits
    python -m repro cache clear

``run`` is the default: ``python -m repro --loops 200`` still works exactly
as it always has, now evaluated through the parallel engine.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import SCENARIOS as BENCH_SCENARIOS
from repro.bench import main as _bench_main
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.sweep import (
    NAMED_SWEEPS,
    format_outcome,
    named_sweep,
    run_sweep,
)
from repro.experiments.runner import (
    add_engine_arguments,
    add_run_arguments,
    engine_from_args,
    positive_int,
    run_all,
)
from repro.pipeline.policies import II_ESCALATIONS, SPILL_POLICIES



def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the full experiment suite")
    add_run_arguments(run_p)
    add_engine_arguments(run_p)

    sweep_p = sub.add_parser("sweep", help="run a scenario sweep")
    sweep_p.add_argument(
        "--name",
        default="performance",
        choices=sorted(NAMED_SWEEPS),
        help="named sweep grid (default: performance)",
    )
    sweep_p.add_argument(
        "--loops", type=positive_int, default=None, help="suite size override"
    )
    sweep_p.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        help="suite seed(s); repeat the flag to sweep several",
    )
    sweep_p.add_argument(
        "--policy",
        action="append",
        default=None,
        choices=sorted(SPILL_POLICIES),
        help=(
            "spill victim policy; repeat the flag to sweep several "
            "(default: the sweep's own, usually 'longest')"
        ),
    )
    sweep_p.add_argument(
        "--escalation",
        default=None,
        choices=sorted(II_ESCALATIONS),
        help="II escalation strategy when nothing is spillable",
    )
    add_engine_arguments(sweep_p)

    report_p = sub.add_parser(
        "report",
        help="generate the self-contained reproduction artifact",
    )
    add_run_arguments(report_p)
    report_p.add_argument(
        "--format",
        dest="fmt",
        default="md",
        choices=("md", "html"),
        help="artifact format (default: md)",
    )
    report_p.add_argument(
        "--out",
        default=None,
        help=(
            "output directory (default: ./report; with --check and no "
            "--out, nothing is written)"
        ),
    )
    report_p.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero when any gated paper expectation falls "
            "outside its tolerance"
        ),
    )
    add_engine_arguments(report_p)

    bench_p = sub.add_parser(
        "bench",
        help="run the perf scenarios and write a machine-readable snapshot",
    )
    bench_p.add_argument(
        "--loops",
        type=positive_int,
        default=32,
        help="suite size of the benchmark grid (default: 32)",
    )
    bench_p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the snapshot as JSON to FILE",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the dispatch scenario (default: serial)",
    )
    bench_p.add_argument(
        "--repeats",
        type=positive_int,
        default=1,
        help=(
            "run each scenario N times and keep the fastest (use >= 3 on "
            "noisy/shared hosts; default: 1)"
        ),
    )
    bench_p.add_argument(
        "--scenario",
        action="append",
        default=None,
        choices=BENCH_SCENARIOS,
        help="run only the named scenario(s); repeat the flag for several",
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="fail when a ratio regresses against this snapshot",
    )
    bench_p.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional ratio regression (default: 0.25)",
    )

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=("show", "clear", "prune"))
    cache_p.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    print(run_all(args.loops, args.spill_loops, engine=engine_from_args(args)))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    overrides = {}
    if args.loops is not None:
        overrides["n_loops"] = args.loops
    if args.seed:
        overrides["seeds"] = tuple(args.seed)
    if args.policy:
        overrides["victim_policies"] = tuple(args.policy)
    if args.escalation:
        overrides["ii_escalation"] = args.escalation
    spec = named_sweep(args.name, **overrides)
    if spec.kind == "pressure" and (args.policy or args.escalation):
        # Pressure sweeps never spill; silently ignoring the flags would
        # make a "policy comparison" of identical numbers look meaningful.
        print(
            f"repro sweep: error: --policy/--escalation have no effect on "
            f"the pressure-kind sweep {spec.name!r} (it never spills)",
            file=sys.stderr,
        )
        return 2
    outcome = run_sweep(
        spec, engine=engine_from_args(args), echo_progress=True
    )
    print(format_outcome(outcome))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.report import generate_report

    out_dir = args.out
    if out_dir is None:
        out_dir = None if args.check else "report"
    result = generate_report(
        n_loops=args.loops,
        spill_loops=args.spill_loops,
        engine=engine_from_args(args),
        fmt=args.fmt,
        out_dir=out_dir,
    )
    print(result.summary())
    if args.check and not result.ok:
        return 1
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(directory=args.cache_dir or default_cache_dir())
    if args.action == "show":
        print(cache.describe())
    elif args.action == "prune":
        removed = cache.prune()
        print(f"pruned {removed} orphaned result(s)")
    else:
        removed = cache.clear()
        print(f"removed {removed} cached result(s)")
    return 0


#: Single source of truth for dispatch and the backward-compat shim.
HANDLERS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "bench": _bench_main,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: ``python -m repro --loops 200`` runs the suite.
    if not argv or (argv[0] not in HANDLERS and argv[0] not in ("-h", "--help")):
        argv.insert(0, "run")
    args = _build_parser().parse_args(argv)
    return HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
