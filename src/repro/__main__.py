"""``python -m repro`` -- experiments, sweeps, reports, serving, cache.

Subcommands::

    python -m repro run --loops 200 --workers 8   # the full paper suite
    python -m repro sweep --name rf-size --loops 64
    python -m repro sweep --loops 8 --workers 2   # default grid, smoke scale
    python -m repro report --loops 200 --format html --out report
    python -m repro report --check   # exit non-zero unless paper reproduced
    python -m repro validate --loops 200 --samples 6   # sim cross-check
    python -m repro validate --kernel daxpy --budget 16
    python -m repro validate --static --loops 200   # prove ALL points, no sim
    python -m repro lint                            # repo invariant lints
    python -m repro serve --port 8357             # the HTTP/JSON API
    python -m repro serve --workers 4             # scale-out: 4 shard processes
    python -m repro bench --json BENCH.json --loops 200
    python -m repro bench --baseline benchmarks/baseline-ci.json --loops 8
    python -m repro cache show
    python -m repro cache stats   # entry count and bytes on disk
    python -m repro cache prune   # drop entries orphaned by code edits
    python -m repro cache prune --max-bytes 50000000   # ...and evict to size
    python -m repro cache clear

``run`` is the default: ``python -m repro --loops 200`` still works exactly
as it always has.  Every experiment subcommand routes through the typed
facade (:mod:`repro.api`): one :class:`~repro.api.session.Session` per
invocation, wrapping the cached parallel engine, and the grid/policy
choices below are derived live from the same registries the API serves.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    ApiError,
    ExperimentRequest,
    ReportRequest,
    Session,
    SweepRequest,
    capabilities,
)
from repro.api.serve import DEFAULT_MAX_INFLIGHT
from repro.bench import SCENARIOS as BENCH_SCENARIOS
from repro.bench import main as _bench_main
from repro.engine.cache import ResultCache, default_cache_dir
from repro.experiments.runner import (
    add_engine_arguments,
    add_run_arguments,
    engine_from_args,
    non_negative_int,
    positive_int,
)

#: Default port of ``repro serve`` (no registered meaning; override with
#: ``--port``, or pass 0 for an ephemeral one).
DEFAULT_SERVE_PORT = 8357


def _build_parser() -> argparse.ArgumentParser:
    # One live snapshot of everything a request may name: the CLI's
    # choice lists and the API's discovery endpoints share one source.
    caps = capabilities()

    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run the full experiment suite")
    add_run_arguments(run_p)
    add_engine_arguments(run_p)

    sweep_p = sub.add_parser("sweep", help="run a scenario sweep")
    sweep_p.add_argument(
        "--name",
        default="performance",
        choices=caps["sweeps"],
        help="named sweep grid (default: performance)",
    )
    sweep_p.add_argument(
        "--loops", type=positive_int, default=None, help="suite size override"
    )
    sweep_p.add_argument(
        "--seed",
        type=int,
        action="append",
        default=None,
        help="suite seed(s); repeat the flag to sweep several",
    )
    sweep_p.add_argument(
        "--policy",
        action="append",
        default=None,
        choices=caps["spill_policies"],
        help=(
            "spill victim policy; repeat the flag to sweep several "
            "(default: the sweep's own, usually 'longest')"
        ),
    )
    sweep_p.add_argument(
        "--escalation",
        default=None,
        choices=caps["ii_escalations"],
        help="II escalation strategy when nothing is spillable",
    )
    add_engine_arguments(sweep_p)

    serve_p = sub.add_parser(
        "serve",
        help="serve the typed JSON API over HTTP (shared cache + workers)",
    )
    serve_p.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: 127.0.0.1)",
    )
    serve_p.add_argument(
        "--port",
        type=non_negative_int,
        default=DEFAULT_SERVE_PORT,
        help=f"TCP port; 0 binds ephemeral (default: {DEFAULT_SERVE_PORT})",
    )
    serve_p.add_argument(
        "--port-file",
        default=None,
        metavar="FILE",
        help="write the bound port to FILE (for scripts; removed on exit)",
    )
    serve_p.add_argument(
        "--verbose",
        action="store_true",
        help="log each HTTP request to stderr",
    )
    serve_p.add_argument(
        "--workers",
        type=non_negative_int,
        default=0,
        metavar="N",
        help=(
            "worker *processes* sharing the port and the on-disk result "
            "cache; 0 serves single-process (default: 0)"
        ),
    )
    serve_p.add_argument(
        "--engine-workers",
        type=non_negative_int,
        default=0,
        metavar="N",
        help=(
            "compute worker processes per serving process (default: 0, "
            "i.e. in-process evaluation; serve shards usually are the "
            "parallelism)"
        ),
    )
    serve_p.add_argument(
        "--max-inflight",
        type=non_negative_int,
        default=DEFAULT_MAX_INFLIGHT,
        metavar="N",
        help=(
            "per-process bound on concurrently admitted requests; over "
            f"it the server answers 429 + Retry-After; 0 disables "
            f"(default: {DEFAULT_MAX_INFLIGHT})"
        ),
    )
    serve_p.add_argument(
        "--rate-limit",
        type=float,
        default=0.0,
        metavar="R",
        help=(
            "per-process token-bucket rate limit, requests/second "
            "sustained; 0 disables (default: 0)"
        ),
    )
    serve_p.add_argument(
        "--burst",
        type=float,
        default=None,
        metavar="B",
        help=(
            "token-bucket burst size (default: max(rate, 1)); only "
            "meaningful with --rate-limit"
        ),
    )
    serve_p.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the on-disk result cache (in scale-out mode this "
            "also forfeits cross-process result sharing)"
        ),
    )
    serve_p.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )

    report_p = sub.add_parser(
        "report",
        help="generate the self-contained reproduction artifact",
    )
    add_run_arguments(report_p)
    report_p.add_argument(
        "--format",
        dest="fmt",
        default="md",
        choices=("md", "html"),
        help="artifact format (default: md)",
    )
    report_p.add_argument(
        "--out",
        default=None,
        help=(
            "output directory (default: ./report; with --check and no "
            "--out, nothing is written)"
        ),
    )
    report_p.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit non-zero when any gated paper expectation falls "
            "outside its tolerance, or when the sampled simulator "
            "cross-check observes a mismatch"
        ),
    )
    report_p.add_argument(
        "--sim-samples",
        type=non_negative_int,
        default=None,
        metavar="N",
        help=(
            "suite loops the simulator cross-check executes (default: 6 "
            "with --check, 0 otherwise; 0 disables it)"
        ),
    )
    report_p.add_argument(
        "--sim-seed",
        type=int,
        default=None,
        metavar="SEED",
        help=(
            "sample-selection seed of the simulator cross-check; a fixed "
            "seed validates the same points on every run (default: the "
            "suite seed)"
        ),
    )
    add_engine_arguments(report_p)

    validate_p = sub.add_parser(
        "validate",
        help=(
            "prove schedules/allocations by execution: run sampled suite "
            "points (or one kernel) through the cycle-level simulator and "
            "cross-check II, occupancy, and traffic against the analytics"
        ),
    )
    validate_p.add_argument(
        "--kernel",
        default=None,
        choices=caps["kernels"],
        metavar="NAME",
        help="validate one hand-written kernel under every model",
    )
    validate_p.add_argument(
        "--budget",
        type=positive_int,
        default=None,
        help="register budget for the finite models (default: unlimited)",
    )
    validate_p.add_argument(
        "--loops",
        type=positive_int,
        default=200,
        help="suite size the sample is drawn from (default: 200)",
    )
    validate_p.add_argument(
        "--samples",
        type=positive_int,
        default=6,
        help="sampled suite loops to execute (default: 6)",
    )
    validate_p.add_argument(
        "--seed",
        type=int,
        default=None,
        help="sample-selection seed (default: the suite seed)",
    )
    validate_p.add_argument(
        "--latency",
        type=positive_int,
        default=6,
        help="paper-machine FP latency to validate under (default: 6)",
    )
    validate_p.add_argument(
        "--iterations",
        type=positive_int,
        default=None,
        help="simulated iterations per point (default: auto from stages)",
    )
    validate_p.add_argument(
        "--static",
        action="store_true",
        help=(
            "statically prove every point of the suite grid (100%% "
            "coverage, no simulation): dependences, reservation table, "
            "allocation, and spill accounting checked analytically"
        ),
    )

    lint_p = sub.add_parser(
        "lint",
        help=(
            "run the repo's AST lint rules (determinism, frozen wire "
            "types, cache-locking, registry completeness, typing)"
        ),
    )
    lint_p.add_argument(
        "--root",
        default=None,
        metavar="DIR",
        help="source root to lint (default: the installed repro package)",
    )
    lint_p.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named rule(s); repeat the flag for several",
    )
    lint_p.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the rule catalog and exit",
    )

    bench_p = sub.add_parser(
        "bench",
        help="run the perf scenarios and write a machine-readable snapshot",
    )
    bench_p.add_argument(
        "--loops",
        type=positive_int,
        default=32,
        help="suite size of the benchmark grid (default: 32)",
    )
    bench_p.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="write the snapshot as JSON to FILE",
    )
    bench_p.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes for the dispatch scenario (default: serial)",
    )
    bench_p.add_argument(
        "--repeats",
        type=positive_int,
        default=1,
        help=(
            "run each scenario N times and keep the fastest (use >= 3 on "
            "noisy/shared hosts; default: 1)"
        ),
    )
    bench_p.add_argument(
        "--scenario",
        action="append",
        default=None,
        choices=BENCH_SCENARIOS,
        help="run only the named scenario(s); repeat the flag for several",
    )
    bench_p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="fail when a ratio regresses against this snapshot",
    )
    bench_p.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional ratio regression (default: 0.25)",
    )

    cache_p = sub.add_parser("cache", help="inspect or clear the result cache")
    cache_p.add_argument("action", choices=("show", "stats", "clear", "prune"))
    cache_p.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )
    cache_p.add_argument(
        "--max-bytes",
        type=non_negative_int,
        default=None,
        metavar="N",
        help=(
            "with prune: after dropping orphans, evict oldest entries "
            "until the cache fits in N bytes"
        ),
    )
    return parser


def _cmd_run(args: argparse.Namespace) -> int:
    request = ExperimentRequest(
        name="suite",
        params={"loops": args.loops, "spill_loops": args.spill_loops},
    )
    with Session(engine=engine_from_args(args)) as session:
        response = session.experiment(request)
    print(response.text)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    try:
        request = SweepRequest(
            name=args.name,
            n_loops=args.loops,
            seeds=tuple(args.seed) if args.seed else None,
            victim_policies=tuple(args.policy) if args.policy else None,
            ii_escalation=args.escalation,
        )
    except ApiError as exc:
        # e.g. --policy/--escalation on a pressure-kind sweep: the facade
        # rejects knobs that cannot change the numbers.  Its message names
        # the wire fields; the user typed flags, so translate.
        message = str(exc).replace(
            "victim_policies/ii_escalation", "--policy/--escalation"
        )
        print(f"repro sweep: error: {message}", file=sys.stderr)
        return 2
    with Session(engine=engine_from_args(args)) as session:
        response = session.sweep(request, echo_progress=True)
    print(response.text)
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.workloads.suite import DEFAULT_SEED

    out_dir = args.out
    if out_dir is None:
        out_dir = None if args.check else "report"
    request = ReportRequest(
        n_loops=args.loops,
        spill_loops=args.spill_loops,
        fmt=args.fmt,
        out_dir=out_dir,
        check=args.check,
        sim_samples=args.sim_samples,
        sim_seed=(
            args.sim_seed if args.sim_seed is not None else DEFAULT_SEED
        ),
    )
    with Session(engine=engine_from_args(args)) as session:
        response = session.report(request)
    print(response.summary)
    if args.check and not response.ok:
        return 1
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.core.models import Model
    from repro.api import LoopSpec, ValidateRequest
    from repro.validate import run_sampled_validation
    from repro.workloads.suite import DEFAULT_SEED

    if args.static:
        # Full-coverage analytical proof: every suite point, no sampling
        # and no simulation (O(ops) per point -- see repro.check).
        from repro.check import run_static_validation

        result = run_static_validation(
            n_loops=args.loops, latency=args.latency
        )
        print(result.format())
        return 0 if result.ok else 1

    if args.kernel is not None:
        # Single-kernel mode rides the typed facade: one ValidateRequest
        # per model, the same wire shape a serve client would POST.
        failures = 0
        with Session() as session:
            for model in Model:
                budget = None if model is Model.IDEAL else args.budget
                response = session.validate(
                    ValidateRequest(
                        loop=LoopSpec(kind="kernel", name=args.kernel),
                        model=model.value,
                        register_budget=budget,
                        iterations=args.iterations,
                    )
                )
                verdict = "ok" if response.ok else "MISMATCH"
                print(
                    f"{args.kernel} {model.value:<12} "
                    f"budget={budget}: {verdict} "
                    f"({response.points} executions)"
                )
                if not response.ok:
                    print(response.text)
                    failures += 1
        return 1 if failures else 0

    result = run_sampled_validation(
        n_loops=args.loops,
        samples=args.samples,
        seed=args.seed if args.seed is not None else DEFAULT_SEED,
        latency=args.latency,
        iterations=args.iterations,
    )
    print(result.format())
    return 0 if result.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.check.lint import format_report, list_rules, run_lint

    if args.list_rules:
        for name, doc in list_rules():
            print(f"{name}: {doc}")
        return 0
    report = run_lint(root=args.root, rules=args.rule)
    print(format_report(report))
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.api.serve import ServeConfig, serve

    cache_dir = None
    if not args.no_cache:
        cache_dir = str(args.cache_dir or default_cache_dir())
    return serve(
        ServeConfig(
            host=args.host,
            port=args.port,
            workers=args.workers,
            engine_workers=args.engine_workers,
            cache_dir=cache_dir,
            max_inflight=args.max_inflight,
            rate_limit=args.rate_limit,
            burst=args.burst,
            port_file=args.port_file,
            quiet=not args.verbose,
        )
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(directory=args.cache_dir or default_cache_dir())
    if args.action == "show":
        print(cache.describe())
    elif args.action == "stats":
        usage = cache.disk_usage()
        print(f"directory: {usage['directory']}")
        print(f"entries:   {usage['entries']}")
        print(f"bytes:     {usage['bytes']}")
    elif args.action == "prune":
        removed = cache.prune()
        print(f"pruned {removed} orphaned result(s)")
        if args.max_bytes is not None:
            evicted = cache.evict_over_size(args.max_bytes)
            print(
                f"evicted {evicted} result(s) to fit {args.max_bytes} bytes"
            )
    else:
        removed = cache.clear()
        print(f"removed {removed} cached result(s)")
    return 0


#: Single source of truth for dispatch and the backward-compat shim.
HANDLERS = {
    "run": _cmd_run,
    "sweep": _cmd_sweep,
    "report": _cmd_report,
    "validate": _cmd_validate,
    "lint": _cmd_lint,
    "serve": _cmd_serve,
    "bench": _bench_main,
    "cache": _cmd_cache,
}


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backward compatibility: ``python -m repro --loops 200`` runs the suite.
    if not argv or (argv[0] not in HANDLERS and argv[0] not in ("-h", "--help")):
        argv.insert(0, "run")
    args = _build_parser().parse_args(argv)
    return HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
