"""``python -m repro`` — run the full experiment suite.

Delegates to :mod:`repro.experiments.runner`; see ``--help`` for options.
"""

from repro.experiments.runner import main

if __name__ == "__main__":
    main()
