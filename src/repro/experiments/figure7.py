"""Figure 7: dynamic cumulative distribution (cycle-weighted Figure 6).

Loops are weighted by estimated execution time, ``trip_count * II``
(Section 5.3).  The paper's observations to reproduce: loops with high
register requirements carry a disproportionate share of execution time, the
Partitioned model improves much more dynamically than statically, and the
Partitioned-to-Swapped difference stays small.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.swapping import SwapEstimator
from repro.engine.pool import Engine
from repro.experiments.figure6 import (
    DistributionSet,
    format_report as _format6,
    run_figure6,
)
from repro.ir.loop import Loop


def run_figure7(
    loops: Sequence[Loop],
    latencies: Sequence[int] = (3, 6),
    engine: Engine | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> list[DistributionSet]:
    """Figure 6 weighted by execution time.

    With a shared (caching) engine the underlying pressure jobs are the
    same as Figure 6's, so this figure costs nothing beyond re-weighting.
    """
    return run_figure6(
        loops,
        latencies=latencies,
        weighted=True,
        engine=engine,
        swap_estimator=swap_estimator,
    )


def format_report(sets: Sequence[DistributionSet]) -> str:
    return _format6(sets, figure_name="Figure 7")


def main() -> None:  # pragma: no cover - CLI entry
    from repro.workloads.suite import quick_suite

    print(format_report(run_figure7(list(quick_suite(120)))))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = ["format_report", "run_figure7"]
