"""Figure 6: static cumulative distribution of loops vs registers required.

For each latency (3 and 6, on the 2-cluster machine of Section 5.2) and each
model (Unified, Partitioned, Swapped) the figure shows the fraction of loops
whose register requirement fits within x registers, for x from 16 to 128.
The expected shape: Partitioned shifts the curve left of Unified markedly,
Swapped adds a smaller additional shift, and both dual models gain more at
latency 6 (higher pressure) than at latency 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.distributions import (
    DEFAULT_GRID,
    CumulativeDistribution,
    cumulative_distribution,
)
from repro.analysis.reporting import LineChart, Table, bar
from repro.core.pressure import PressureReport
from repro.core.swapping import SwapEstimator
from repro.engine.jobs import PressureResult
from repro.engine.pool import Engine, serial_engine
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig, paper_config

MODEL_NAMES = ("unified", "partitioned", "swapped")

#: Either the engine's summary record or the full in-process report; both
#: expose ``trip_count``, ``ii`` and the three per-model requirements.
PressureLike = PressureResult | PressureReport


@dataclass(frozen=True)
class DistributionSet:
    """The three model curves for one machine configuration."""

    machine: str
    latency: int
    curves: dict[str, CumulativeDistribution]
    reports: tuple[PressureLike, ...]

    def curve(self, model: str) -> CumulativeDistribution:
        return self.curves[model]


def collect_reports(
    loops: Sequence[Loop],
    machine: MachineConfig,
    engine: Engine | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> list[PressureResult]:
    """Measure every loop's register pressure through the engine."""
    return (engine or serial_engine()).pressure_reports(
        loops, machine, swap_estimator=swap_estimator
    )


def build_distributions(
    reports: Sequence[PressureLike],
    machine: MachineConfig,
    latency: int,
    weighted: bool = False,
    grid: Sequence[int] = DEFAULT_GRID,
) -> DistributionSet:
    """Assemble the per-model cumulative curves from pressure reports."""
    weights = (
        [float(r.trip_count * r.ii) for r in reports] if weighted else None
    )
    curves = {}
    for model in MODEL_NAMES:
        requirements = [getattr(r, model) for r in reports]
        curves[model] = cumulative_distribution(
            requirements, weights=weights, grid=grid, label=model
        )
    return DistributionSet(
        machine=machine.name,
        latency=latency,
        curves=curves,
        reports=tuple(reports),
    )


def run_figure6(
    loops: Sequence[Loop],
    latencies: Sequence[int] = (3, 6),
    weighted: bool = False,
    grid: Sequence[int] = DEFAULT_GRID,
    engine: Engine | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> list[DistributionSet]:
    """Compute the Figure 6 (or, with ``weighted=True``, Figure 7) data.

    ``swap_estimator`` is the pipeline knob for the Swapped curve: the
    paper's MaxLive lower bound, or exact first-fit for the ablation.
    """
    engine = engine or serial_engine()
    sets = []
    for latency in latencies:
        machine = paper_config(latency)
        reports = collect_reports(
            loops, machine, engine=engine, swap_estimator=swap_estimator
        )
        sets.append(
            build_distributions(reports, machine, latency, weighted, grid)
        )
    return sets


#: Palette slots for the models, shared by every chart in the report so a
#: model keeps its colour across figures (slot 0 is reserved for Ideal).
MODEL_SLOTS = {"ideal": 0, "unified": 1, "partitioned": 2, "swapped": 3}


def distribution_table(
    dist: DistributionSet, figure_name: str = "Figure 6"
) -> Table:
    """One latency's cumulative curves as a shared :class:`Table`."""
    rows = []
    grid = [p.registers for p in dist.curves["unified"].points]
    for registers in grid:
        rows.append(
            (
                registers,
                *(
                    f"{dist.curves[m].at(registers) * 100:.1f}"
                    for m in MODEL_NAMES
                ),
                bar(dist.curves["partitioned"].at(registers), width=24),
            )
        )
    return Table.build(
        ["registers", *MODEL_NAMES, "partitioned-curve"],
        rows,
        title=(
            f"{figure_name} -- cumulative % of "
            f"{'cycles' if figure_name == 'Figure 7' else 'loops'}, "
            f"latency {dist.latency}"
        ),
    )


def distribution_chart(
    dist: DistributionSet, figure_name: str = "Figure 6"
) -> LineChart:
    """One latency's cumulative curves as a line chart."""
    grid = tuple(
        float(p.registers) for p in dist.curves["unified"].points
    )
    unit_noun = "cycles" if figure_name == "Figure 7" else "loops"
    return LineChart(
        title=(
            f"{figure_name} -- cumulative % of {unit_noun}, "
            f"latency {dist.latency}"
        ),
        x_values=grid,
        series=tuple(MODEL_NAMES),
        values=tuple(
            tuple(dist.curves[m].at(int(x)) * 100 for x in grid)
            for m in MODEL_NAMES
        ),
        slots=tuple(MODEL_SLOTS[m] for m in MODEL_NAMES),
        max_value=100.0,
        unit="%",
        x_label="registers",
    )


def format_report(
    sets: Sequence[DistributionSet], figure_name: str = "Figure 6"
) -> str:
    return "\n\n".join(
        distribution_table(dist, figure_name).to_text() for dist in sets
    )


def main() -> None:  # pragma: no cover - CLI entry
    from repro.workloads.suite import quick_suite

    print(format_report(run_figure6(list(quick_suite(120)))))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "MODEL_NAMES",
    "MODEL_SLOTS",
    "DistributionSet",
    "build_distributions",
    "collect_reports",
    "distribution_chart",
    "distribution_table",
    "format_report",
    "run_figure6",
]
