"""Table 1: loops allocatable without spilling on the PxLy machines.

For each configuration (x adders + x multipliers of latency y, one store
port, two load ports) the paper reports the percentage of loops -- and the
percentage of execution cycles those loops represent -- that can be
allocated with 16, 32 and 64 registers under a unified register file.
Known anchors from the text: at P1L3 only 0.3 % of loops need more than 64
registers; at P2L6 10.6 % of the loops, carrying 49.1 % of the cycles, do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.distributions import fraction_fitting
from repro.analysis.reporting import BarChart, Table
from repro.core.swapping import SwapEstimator
from repro.engine.pool import Engine, serial_engine
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig, pxly

THRESHOLDS = (16, 32, 64)


@dataclass(frozen=True)
class Table1Row:
    """Static and dynamic fit percentages of one machine configuration."""

    config: str
    static_percent: dict[int, float]  # threshold -> % of loops
    dynamic_percent: dict[int, float]  # threshold -> % of cycles

    def over_64_static(self) -> float:
        return 100.0 - self.static_percent[64]

    def over_64_dynamic(self) -> float:
        return 100.0 - self.dynamic_percent[64]


def default_configs() -> list[MachineConfig]:
    """The PxLy grid the paper's Table 1 spans."""
    return [pxly(1, 3), pxly(1, 6), pxly(2, 3), pxly(2, 6)]


def run_table1(
    loops: Sequence[Loop],
    configs: Sequence[MachineConfig] | None = None,
    thresholds: Sequence[int] = THRESHOLDS,
    engine: Engine | None = None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> list[Table1Row]:
    """Measure unified register requirements on every configuration.

    ``swap_estimator`` rides into the pressure jobs so a shared engine can
    reuse them with the Figure 6/7 drivers run under the same knob (the
    table itself reads only the unified numbers).
    """
    engine = engine or serial_engine()
    configs = list(configs) if configs is not None else default_configs()
    rows = []
    for machine in configs:
        reports = engine.pressure_reports(
            loops, machine, swap_estimator=swap_estimator
        )
        requirements = [report.unified for report in reports]
        weights = [
            float(report.trip_count * report.ii) for report in reports
        ]
        rows.append(
            Table1Row(
                config=machine.name,
                static_percent={
                    t: 100.0 * fraction_fitting(requirements, t)
                    for t in thresholds
                },
                dynamic_percent={
                    t: 100.0 * fraction_fitting(requirements, t, weights)
                    for t in thresholds
                },
            )
        )
    return rows


def table1_table(rows: Sequence[Table1Row]) -> Table:
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row.config,
                *(f"{row.static_percent[t]:.1f}" for t in THRESHOLDS),
                *(f"{row.dynamic_percent[t]:.1f}" for t in THRESHOLDS),
            )
        )
    headers = [
        "config",
        *(f"loops%<= {t}" for t in THRESHOLDS),
        *(f"cycles%<= {t}" for t in THRESHOLDS),
    ]
    return Table.build(
        headers,
        table_rows,
        title=(
            "Table 1 -- loops (and cycles) allocatable without spilling, "
            "unified register file"
        ),
    )


def over64_chart(rows: Sequence[Table1Row]) -> BarChart:
    """Loops/cycles needing more than 64 registers, per configuration."""
    return BarChart(
        title="Table 1 -- % needing more than 64 registers",
        series=("loops", "cycles"),
        groups=tuple(
            (row.config, (row.over_64_static(), row.over_64_dynamic()))
            for row in rows
        ),
        unit="%",
    )


def format_report(rows: Sequence[Table1Row]) -> str:
    return table1_table(rows).to_text()


def main() -> None:  # pragma: no cover - CLI entry
    from repro.workloads.suite import quick_suite

    print(format_report(run_table1(list(quick_suite(120)))))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "THRESHOLDS",
    "Table1Row",
    "default_configs",
    "format_report",
    "over64_chart",
    "run_table1",
    "table1_table",
]
