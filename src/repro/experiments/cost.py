"""Register-file cost analysis (Section 3.2 / conclusions).

Not a numbered figure in the paper, but the argument every figure rests on:
a dual implementation halves each subfile's read ports (log reduction of
access time, quadratic reduction of per-subfile area per port) while the
non-consistent organization keeps the short 5-bit specifiers of a
32-register file yet stores up to twice as many distinct values.  The
conclusions claim the proposal "is cheaper than doubling the number of
registers ... and does not penalize the access time"; this experiment makes
that comparison concrete.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.reporting import BarChart, Table
from repro.machine.config import MachineConfig, paper_config
from repro.machine.costmodel import (
    CostModel,
    OrganizationCost,
    compare_organizations,
)


@dataclass(frozen=True)
class CostStudy:
    """Cost comparison for one machine's port requirements."""

    machine: str
    registers: int
    read_ports: int
    write_ports: int
    organizations: tuple[OrganizationCost, ...]


def read_write_ports(machine: MachineConfig) -> tuple[int, int]:
    """Total FP register data ports the machine's units need.

    Adders and multipliers read two operands and write one result; a
    load writes one result; a store reads one datum.
    """
    reads = 0
    writes = 0
    for pool in machine.pools:
        if pool.name in ("adder", "mult"):
            reads += 2 * pool.count
            writes += pool.count
        elif pool.name in ("mem", "load"):
            reads += pool.count  # stores share combined units' ports
            writes += pool.count
        elif pool.name == "store":
            reads += pool.count
    return reads, max(1, writes)


def run_cost_study(
    registers: int = 32,
    machine: MachineConfig | None = None,
    model: CostModel | None = None,
) -> CostStudy:
    """Compare the four organizations for one machine and register count."""
    machine = machine or paper_config(3)
    reads, writes = read_write_ports(machine)
    return CostStudy(
        machine=machine.name,
        registers=registers,
        read_ports=reads,
        write_ports=writes,
        organizations=tuple(
            compare_organizations(registers, reads, writes, model=model)
        ),
    )


def cost_table(study: CostStudy) -> Table:
    rows = [
        (
            org.name,
            f"{org.total_area:.2f}",
            f"{org.access_time:.3f}",
            org.specifier_bits,
            org.effective_capacity,
        )
        for org in study.organizations
    ]
    return Table.build(
        ["organization", "area", "access time", "spec bits", "capacity"],
        rows,
        title=(
            f"Register-file cost, {study.machine}: R={study.registers}, "
            f"{study.read_ports}R/{study.write_ports}W ports "
            "(normalized units)"
        ),
    )


def area_chart(studies: Sequence[CostStudy]) -> BarChart:
    """Normalized area of the four organizations per register count."""
    organizations = tuple(
        org.name for org in studies[0].organizations
    )
    return BarChart(
        title="Register-file area by organization (normalized)",
        series=organizations,
        groups=tuple(
            (
                f"R={study.registers}",
                tuple(org.total_area for org in study.organizations),
            )
            for study in studies
        ),
    )


def format_report(studies: Sequence[CostStudy]) -> str:
    return "\n\n".join(cost_table(study).to_text() for study in studies)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report([run_cost_study(32), run_cost_study(64)]))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "CostStudy",
    "area_chart",
    "cost_table",
    "format_report",
    "read_write_ports",
    "run_cost_study",
]
