"""Experiment drivers: one module per table/figure of the paper.

The drivers here hold the measurement logic; their discoverable,
schema-validated entries live in the experiment registry
(:mod:`repro.api.registry`), which the suite runner, the CLI, and
``python -m repro serve`` all dispatch through.
"""

from repro.experiments import (  # noqa: F401 (re-exported modules)
    cost,
    example_loop,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)

__all__ = [
    "cost",
    "example_loop",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "table1",
]
