"""Experiment drivers: one module per table/figure of the paper."""

from repro.experiments import (  # noqa: F401 (re-exported modules)
    cost,
    example_loop,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)

__all__ = [
    "cost",
    "example_loop",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "table1",
]
