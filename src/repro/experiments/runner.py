"""Run every experiment and print the paper-shaped reports.

Usage::

    python -m repro.experiments.runner --loops 200                  # quick
    python -m repro.experiments.runner --loops 800 --spill-loops 200  # paper scale

``--spill-loops`` bounds only the spill-pipeline experiments (Figures 8 and
9), which dominate the runtime; the distribution experiments always use the
full requested suite.
"""

from __future__ import annotations

import argparse
import time

from repro.experiments import (
    cost,
    example_loop,
    figure6,
    figure7,
    figure8,
    figure9,
    table1,
)
from repro.workloads.suite import perfect_club_like


def run_all(n_loops: int = 200, spill_loops: int | None = None) -> str:
    """Run every experiment; returns the concatenated report text."""
    suite = perfect_club_like(n_loops)
    loops = list(suite)
    spill_subset = loops if spill_loops is None else list(
        suite.subset(spill_loops)
    )
    sections = []

    def timed(name: str, fn):
        start = time.time()
        text = fn()
        elapsed = time.time() - start
        sections.append(f"=== {name} ({elapsed:.1f}s) ===\n\n{text}")

    timed(
        "Tables 2/3/4 -- example loop",
        lambda: example_loop.format_report(example_loop.run_example()),
    )
    timed(
        "Table 1 -- PxLy allocatable loops",
        lambda: table1.format_report(table1.run_table1(loops)),
    )
    timed(
        "Figure 6 -- static distributions",
        lambda: figure6.format_report(figure6.run_figure6(loops)),
    )
    timed(
        "Figure 7 -- dynamic distributions",
        lambda: figure7.format_report(figure7.run_figure7(loops)),
    )
    timed(
        "Figure 8 -- performance",
        lambda: figure8.format_report(figure8.run_figure8(spill_subset)),
    )
    timed(
        "Figure 9 -- traffic density",
        lambda: figure9.format_report(figure9.run_figure9(spill_subset)),
    )
    timed(
        "Cost model -- Section 3.2",
        lambda: cost.format_report(
            [cost.run_cost_study(32), cost.run_cost_study(64)]
        ),
    )
    return "\n\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loops", type=int, default=200)
    parser.add_argument(
        "--spill-loops",
        type=int,
        default=None,
        help="subset size for the spill-pipeline figures (default: all)",
    )
    args = parser.parse_args()
    print(run_all(args.loops, args.spill_loops))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = ["run_all"]
