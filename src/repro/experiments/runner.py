"""Run every experiment and print the paper-shaped reports.

Usage::

    python -m repro.experiments.runner --loops 200                  # quick
    python -m repro.experiments.runner --loops 800 --spill-loops 200  # paper scale
    python -m repro.experiments.runner --loops 800 --workers 8        # pooled

``--spill-loops`` bounds only the spill-pipeline experiments (Figures 8 and
9), which dominate the runtime; the distribution experiments always use the
full requested suite.

All evaluation flows through one shared :class:`repro.engine.Engine`, so
points repeated across drivers (Figure 7 re-measures Figure 6's grid,
Figure 9 re-runs Figure 8's pipeline) are computed once, misses fan out
over a multiprocess pool, and with the on-disk cache enabled a repeated run
skips the evaluation work entirely.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass

from repro.api.registry import get_experiment, suite_sections
from repro.engine.cache import ResultCache, default_cache_dir
from repro.engine.pool import Engine, serial_engine
from repro.workloads.suite import perfect_club_like


@dataclass(frozen=True)
class SectionRun:
    """One experiment's structured result plus how long it took."""

    key: str  # stable id: "example", "table1", "figure6", ...
    title: str  # the heading the text report prints
    seconds: float
    result: object  # the driver's own result type


@dataclass(frozen=True)
class SuiteResult:
    """Every experiment's structured output from one suite run.

    This is the machine-readable form of ``python -m repro run``: the text
    report renders from it (:func:`format_suite`), and the reproduction
    artifact (:mod:`repro.report`) consumes it directly.
    """

    n_loops: int
    spill_loops: int | None
    sections: tuple[SectionRun, ...]
    engine_jobs: int
    cache_summary: str | None
    wall_seconds: float

    def section(self, key: str) -> SectionRun:
        for section in self.sections:
            if section.key == key:
                return section
        raise KeyError(key)

    def result(self, key: str) -> object:
        return self.section(key).result


#: Section key -> the driver function that renders its result as text.
#: Derived from the experiment registry (:mod:`repro.api.registry`) -- the
#: name is kept as a backward-compatible alias for older call sites.
SECTION_FORMATTERS = {
    name: get_experiment(name).format for name, _, _ in suite_sections()
}


def run_suite(
    n_loops: int = 200,
    spill_loops: int | None = None,
    engine: Engine | None = None,
) -> SuiteResult:
    """Run every experiment through one engine; returns structured results."""
    engine = engine or serial_engine()
    suite = perfect_club_like(n_loops)
    loops = list(suite)
    spill_subset = loops if spill_loops is None else list(
        suite.subset(spill_loops)
    )
    started = time.time()
    sections: list[SectionRun] = []
    # The sections come from the experiment registry, in registration
    # order -- the same drivers and titles the historical hard-coded list
    # carried, so the rendered report is byte-identical.
    for key, title, section_runner in suite_sections():
        start = time.time()
        result = section_runner(loops, spill_subset, engine)
        sections.append(SectionRun(key, title, time.time() - start, result))
    return SuiteResult(
        n_loops=n_loops,
        spill_loops=spill_loops,
        sections=tuple(sections),
        engine_jobs=engine.jobs_run,
        cache_summary=engine.cache_summary(),
        wall_seconds=time.time() - started,
    )


def format_suite(suite: SuiteResult) -> str:
    """The classic concatenated text report, rendered from structured data."""
    sections = [
        f"=== {s.title} ({s.seconds:.1f}s) ===\n\n"
        f"{SECTION_FORMATTERS[s.key](s.result)}"
        for s in suite.sections
    ]
    if suite.cache_summary is not None:
        sections.append(
            f"=== Engine ===\n\n{suite.engine_jobs} evaluation points; "
            f"cache {suite.cache_summary}"
        )
    return "\n\n\n".join(sections)


def run_all(
    n_loops: int = 200,
    spill_loops: int | None = None,
    engine: Engine | None = None,
) -> str:
    """Run every experiment; returns the concatenated report text."""
    return format_suite(run_suite(n_loops, spill_loops, engine=engine))


def positive_int(text: str) -> int:
    """Argparse type for counts that must be >= 1 (suite sizes, subsets).

    Rejecting bad values at the parser keeps the failure a one-line usage
    error instead of an empty report or a crash deep in a worker process.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value})"
        )
    return value


def non_negative_int(text: str) -> int:
    """Argparse type for counts where 0 is meaningful (``--workers 0``)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"must be a non-negative integer (got {value})"
        )
    return value


def add_run_arguments(parser: argparse.ArgumentParser) -> None:
    """The suite-size flags of the experiment runner."""
    parser.add_argument("--loops", type=positive_int, default=200)
    parser.add_argument(
        "--spill-loops",
        type=positive_int,
        default=None,
        help="subset size for the spill-pipeline figures (default: all)",
    )


def add_engine_arguments(parser: argparse.ArgumentParser) -> None:
    """The engine flags shared by the ``run`` and ``sweep`` commands."""
    parser.add_argument(
        "--workers",
        type=non_negative_int,
        default=None,
        help="worker processes (default: one per core; 0 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=f"result cache directory (default: {default_cache_dir()})",
    )


def engine_from_args(args: argparse.Namespace) -> Engine:
    """Build the engine an experiment CLI asked for.

    ``--no-cache`` only disables the *disk* tier; the in-memory cache
    stays, because cross-driver job sharing (Figures 7 and 9 reusing
    Figures 6's and 8's points) depends on it.
    """
    directory = None if args.no_cache else (
        args.cache_dir or default_cache_dir()
    )
    return Engine(workers=args.workers, cache=ResultCache(directory=directory))


def main(argv: list[str] | None = None) -> None:  # pragma: no cover - CLI
    parser = argparse.ArgumentParser(description=__doc__)
    add_run_arguments(parser)
    add_engine_arguments(parser)
    args = parser.parse_args(argv)
    print(run_all(args.loops, args.spill_loops, engine=engine_from_args(args)))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "SECTION_FORMATTERS",
    "SectionRun",
    "SuiteResult",
    "add_engine_arguments",
    "add_run_arguments",
    "engine_from_args",
    "format_suite",
    "non_negative_int",
    "positive_int",
    "run_all",
    "run_suite",
]
