"""Figure 9: density of memory traffic for the four models.

Density is the dynamic average fraction of the memory-bus bandwidth used per
cycle (Section 5.4): spill code adds accesses, so the Unified model's
density rises above the dual models' -- except at L6/R32 where all models
carry heavy spill code and the densities converge.  The Ideal model gives
the workload's intrinsic density floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.performance import ModelRun
from repro.analysis.reporting import BarChart, Table, bar
from repro.core.models import Model
from repro.experiments.figure6 import MODEL_SLOTS
from repro.experiments.figure8 import cells_by_config
from repro.engine.pool import Engine, serial_engine
from repro.ir.loop import Loop
from repro.machine.config import paper_config
from repro.spill.traffic import aggregate_density, aggregate_traffic

DEFAULT_BUDGETS = (32, 64)
DEFAULT_LATENCIES = (3, 6)


@dataclass(frozen=True)
class Figure9Cell:
    """One bar: density of one (latency, budget, model) combination."""

    latency: int
    budget: int
    model: Model
    run: ModelRun
    density: float  # fraction of bus bandwidth, averaged per cycle
    total_accesses: int

    @property
    def label(self) -> str:
        return f"L={self.latency},R={self.budget}"


def run_figure9(
    loops: Sequence[Loop],
    latencies: Sequence[int] = DEFAULT_LATENCIES,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    models: Sequence[Model] = tuple(Model),
    engine: Engine | None = None,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
) -> list[Figure9Cell]:
    """Evaluate traffic density over the (latency x budget x model) grid.

    The jobs are identical to Figure 8's (given the same policy knobs), so
    with a shared engine this figure is free once Figure 8 has run.
    """
    engine = engine or serial_engine()
    cells: list[Figure9Cell] = []
    for latency in latencies:
        machine = paper_config(latency)
        ideal = engine.run_model(loops, machine, Model.IDEAL, None)
        for budget in budgets:
            for model in models:
                run = (
                    ideal
                    if model is Model.IDEAL
                    else engine.run_model(
                        loops,
                        machine,
                        model,
                        budget,
                        victim_policy=victim_policy,
                        pressure_strategy=pressure_strategy,
                        ii_escalation=ii_escalation,
                    )
                )
                cells.append(
                    Figure9Cell(
                        latency=latency,
                        budget=budget,
                        model=model,
                        run=run,
                        density=aggregate_density(run.evaluations),
                        total_accesses=aggregate_traffic(run.evaluations),
                    )
                )
    return cells


def density_table(cells: Sequence[Figure9Cell]) -> Table:
    rows = []
    for cell in cells:
        rows.append(
            (
                cell.label,
                cell.model.value,
                f"{cell.density:.3f}",
                cell.total_accesses,
                bar(cell.density, width=30),
            )
        )
    return Table.build(
        ["config", "model", "density", "accesses", ""],
        rows,
        title="Figure 9 -- density of memory traffic (bus fraction/cycle)",
    )


def density_chart(cells: Sequence[Figure9Cell]) -> BarChart:
    """Grouped bars of bus-bandwidth fraction per (config, model)."""
    grid = cells_by_config(cells)
    models = [m for m in Model if any(m in g for g in grid.values())]
    return BarChart(
        title="Figure 9 -- density of memory traffic (bus fraction/cycle)",
        series=tuple(m.value for m in models),
        groups=tuple(
            (label, tuple(by_model[m].density for m in models))
            for label, by_model in grid.items()
        ),
        slots=tuple(MODEL_SLOTS[m.value] for m in models),
        max_value=1.0,
    )


def format_report(cells: Sequence[Figure9Cell]) -> str:
    return density_table(cells).to_text()


def main() -> None:  # pragma: no cover - CLI entry
    from repro.workloads.suite import quick_suite

    print(format_report(run_figure9(list(quick_suite(60)))))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "DEFAULT_BUDGETS",
    "DEFAULT_LATENCIES",
    "Figure9Cell",
    "density_chart",
    "density_table",
    "format_report",
    "run_figure9",
]
