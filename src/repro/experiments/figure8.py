"""Figure 8: performance of the four models with limited register files.

For latency in {3, 6} and register budget in {32, 64}, every loop runs the
full schedule/allocate/spill pipeline under Ideal, Unified, Partitioned and
Swapped, and the workload performance is reported relative to Ideal
(``sum(trips * II_ideal) / sum(trips * II_model)``).

Shapes the paper reports: with 64 registers the dual models nearly match
Ideal while Unified loses at latency 6; with 32 registers Unified degrades
heavily, the dual models stay near Ideal at latency 3, and Swapped beats
Partitioned exactly where pressure hurts most (L6/R32).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.performance import ModelRun, relative_performance
from repro.analysis.reporting import BarChart, Table, bar
from repro.core.models import Model
from repro.experiments.figure6 import MODEL_SLOTS
from repro.engine.pool import Engine, serial_engine
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig, paper_config

DEFAULT_BUDGETS = (32, 64)
DEFAULT_LATENCIES = (3, 6)


@dataclass(frozen=True)
class Figure8Cell:
    """One bar of the figure: one (latency, budget, model) combination."""

    latency: int
    budget: int
    model: Model
    run: ModelRun
    performance: float  # relative to Ideal, 1.0 = no loss

    @property
    def label(self) -> str:
        return f"L={self.latency},R={self.budget}"


def run_figure8(
    loops: Sequence[Loop],
    latencies: Sequence[int] = DEFAULT_LATENCIES,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    models: Sequence[Model] = tuple(Model),
    engine: Engine | None = None,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
) -> list[Figure8Cell]:
    """Evaluate the full (latency x budget x model) grid.

    The trailing keywords are the spill pipeline's pluggable policies
    (:mod:`repro.pipeline.policies`); the defaults reproduce the paper.
    """
    engine = engine or serial_engine()
    cells: list[Figure8Cell] = []
    for latency in latencies:
        machine = paper_config(latency)
        ideal = engine.run_model(loops, machine, Model.IDEAL, None)
        for budget in budgets:
            for model in models:
                if model is Model.IDEAL:
                    run = ideal
                else:
                    run = engine.run_model(
                        loops,
                        machine,
                        model,
                        budget,
                        victim_policy=victim_policy,
                        pressure_strategy=pressure_strategy,
                        ii_escalation=ii_escalation,
                    )
                cells.append(
                    Figure8Cell(
                        latency=latency,
                        budget=budget,
                        model=model,
                        run=run,
                        performance=relative_performance(
                            run.evaluations, ideal.evaluations
                        ),
                    )
                )
    return cells


def performance_table(cells: Sequence[Figure8Cell]) -> Table:
    rows = []
    for cell in cells:
        rows.append(
            (
                cell.label,
                cell.model.value,
                f"{cell.performance:.3f}",
                cell.run.loops_spilled,
                cell.run.total_spills,
                bar(cell.performance, width=30),
            )
        )
    return Table.build(
        ["config", "model", "perf", "loops spilled", "values spilled", ""],
        rows,
        title="Figure 8 -- performance relative to infinite registers",
    )


def cells_by_config(
    cells: "Sequence[Figure8Cell | object]",
) -> dict[str, dict[Model, object]]:
    """``{config label: {model: cell}}`` for chart/validation lookups."""
    grid: dict[str, dict[Model, object]] = {}
    for cell in cells:
        grid.setdefault(cell.label, {})[cell.model] = cell
    return grid


def performance_chart(cells: Sequence[Figure8Cell]) -> BarChart:
    """The figure's grouped bars: one cluster of model bars per config."""
    grid = cells_by_config(cells)
    models = [m for m in Model if any(m in g for g in grid.values())]
    return BarChart(
        title="Figure 8 -- performance relative to infinite registers",
        series=tuple(m.value for m in models),
        groups=tuple(
            (
                label,
                tuple(by_model[m].performance for m in models),
            )
            for label, by_model in grid.items()
        ),
        slots=tuple(MODEL_SLOTS[m.value] for m in models),
        max_value=1.0,
    )


def format_report(cells: Sequence[Figure8Cell]) -> str:
    return performance_table(cells).to_text()


def main() -> None:  # pragma: no cover - CLI entry
    from repro.workloads.suite import quick_suite

    print(format_report(run_figure8(list(quick_suite(60)))))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "DEFAULT_BUDGETS",
    "DEFAULT_LATENCIES",
    "Figure8Cell",
    "cells_by_config",
    "format_report",
    "performance_chart",
    "performance_table",
    "run_figure8",
]
