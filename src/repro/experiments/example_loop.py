"""Tables 2, 3 and 4: the worked example of Section 4.1.

Reproduces, on the example machine (2 adders, 2 multipliers, 4 load/store
units, FP latency 3):

* **Table 2** -- start, end, and lifetime of every loop variant (sum = 42,
  the unified register requirement at II = 1);
* **Table 3** -- GL/LO/RO classification under the scheduler's clusters:
  13 global + 13 left-only + 16 right-only => 29 registers;
* **Table 4** -- classification after swapping A4 and A6:
  19 left-only + 23 right-only, no globals => 23 registers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import BarChart, Table
from repro.core.clustering import classify_values, scheduler_assignment
from repro.core.dualfile import DualAllocation, allocate_dual
from repro.core.swapping import SwapResult, greedy_swap
from repro.machine.config import MachineConfig, example_config
from repro.regalloc.allocation import UnifiedAllocation, allocate_unified
from repro.regalloc.lifetimes import Lifetime
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import Schedule
from repro.workloads.kernels import example_loop


@dataclass(frozen=True)
class ExampleResult:
    """All artifacts of the Section 4.1 walk-through."""

    machine: MachineConfig
    schedule: Schedule
    lifetimes: dict[str, Lifetime]
    unified: UnifiedAllocation
    partitioned: DualAllocation
    swap: SwapResult
    swapped: DualAllocation

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def unified_registers(self) -> int:
        return self.unified.registers_required

    @property
    def partitioned_registers(self) -> int:
        return self.partitioned.registers_required

    @property
    def swapped_registers(self) -> int:
        return self.swapped.registers_required


def run_example() -> ExampleResult:
    """Schedule, allocate, classify and swap the example loop."""
    loop = example_loop()
    machine = example_config()
    schedule = modulo_schedule(loop.graph, machine)
    unified = allocate_unified(schedule)
    partitioned = allocate_dual(schedule, scheduler_assignment(schedule))
    swap = greedy_swap(schedule)
    swapped = allocate_dual(swap.schedule, swap.assignment)
    named_lifetimes = {
        schedule.graph.op(op_id).name: lt
        for op_id, lt in unified.lifetimes.items()
    }
    return ExampleResult(
        machine=machine,
        schedule=schedule,
        lifetimes=named_lifetimes,
        unified=unified,
        partitioned=partitioned,
        swap=swap,
        swapped=swapped,
    )


def _classification_rows(
    schedule: Schedule, allocation: DualAllocation
) -> list[tuple[str, str]]:
    classes = allocation.classes
    labels = {0: "LO", 1: "RO"}
    rows = []
    for op in schedule.graph.values():
        if op.op_id in classes.global_ids:
            label = "GL"
        else:
            for cluster, ids in classes.local_ids.items():
                if op.op_id in ids:
                    label = labels.get(cluster, f"C{cluster}")
        rows.append((op.name, label))
    return rows


def kernel_listings(result: ExampleResult) -> list[tuple[str, str]]:
    """The two kernel-code figures as (title, preformatted body) pairs."""
    return [
        (
            "Figure 4 -- kernel code after modulo scheduling "
            "(stage numbers in brackets)",
            result.schedule.format_kernel_clustered(),
        ),
        (
            "Figure 5 -- kernel code after swapping",
            result.swap.schedule.format_kernel_clustered(),
        ),
    ]


def example_tables(result: ExampleResult) -> list[Table]:
    """Tables 2-4 plus the register-requirement summary."""
    rows = [
        (name, lt.start, lt.end, lt.length)
        for name, lt in sorted(result.lifetimes.items())
    ]
    total = sum(lt.length for lt in result.lifetimes.values())
    return [
        Table.build(
            ["value", "start", "end", "lifetime"],
            rows,
            title=f"Table 2 -- lifetimes (II={result.ii}, sum={total})",
        ),
        Table.build(
            ["value", "class"],
            _classification_rows(result.schedule, result.partitioned),
            title=(
                "Table 3 -- allocation before swapping "
                f"(GL={result.partitioned.global_registers}, "
                f"left={result.partitioned.cluster_registers(0)}, "
                f"right={result.partitioned.cluster_registers(1)})"
            ),
        ),
        Table.build(
            ["value", "class"],
            _classification_rows(result.swap.schedule, result.swapped),
            title=(
                "Table 4 -- allocation after swapping "
                f"{len(result.swap.swaps)} pair(s) "
                f"(left={result.swapped.cluster_registers(0)}, "
                f"right={result.swapped.cluster_registers(1)})"
            ),
        ),
        Table.build(
            ["model", "registers"],
            [
                ("unified", result.unified_registers),
                ("partitioned", result.partitioned_registers),
                ("swapped", result.swapped_registers),
            ],
            title="Register requirements (paper: 42 / 29 / 23)",
        ),
    ]


def requirement_chart(result: ExampleResult) -> BarChart:
    """The 42 / 29 / 23 progression next to the paper's own numbers."""
    return BarChart(
        title="Section 4.1 example -- registers required vs. paper",
        series=("reproduced", "paper"),
        groups=(
            ("unified", (float(result.unified_registers), 42.0)),
            ("partitioned", (float(result.partitioned_registers), 29.0)),
            ("swapped", (float(result.swapped_registers), 23.0)),
        ),
    )


def format_report(result: ExampleResult) -> str:
    """Render the three tables plus the register totals."""
    sections = [
        f"{title}\n{body}" for title, body in kernel_listings(result)
    ]
    sections.extend(table.to_text() for table in example_tables(result))
    return "\n\n".join(sections)


def main() -> None:  # pragma: no cover - CLI entry
    print(format_report(run_example()))


if __name__ == "__main__":  # pragma: no cover
    main()


__all__ = [
    "ExampleResult",
    "example_tables",
    "format_report",
    "kernel_listings",
    "requirement_chart",
    "run_example",
]
