"""``python -m repro bench`` -- the machine-readable performance snapshot.

Runs the hot-path benchmark scenarios (the same Figure 8/9 evaluation grid
as ``benchmarks/bench_pipeline.py``) and emits one JSON document per run:
wall seconds, grid points, and points/second per scenario, plus the
hardware-independent ratio the CI regression gate checks.

Scenarios:

* ``cold_kernel``  -- the full spill-evaluation grid on a fresh artifact
  store with the per-point array kernels (one pipeline run per point);
* ``cold_batch``   -- the same cold grid through the engine's grid-batched
  path (``REPRO_KERNELS=batch``): jobs grouped per loop, each group walking
  one shared :class:`repro.kernel.batch.LoopChain`;
* ``cold_legacy``  -- the same grid on the dict-based reference
  implementations (``REPRO_KERNELS=0`` semantics);
* ``warm``         -- the grid repeated against a primed store (pure
  memoization path, no scheduler runs);
* ``dispatch``     -- the same points as engine jobs through
  :func:`repro.engine.pool.run_jobs` (chunked IPC dispatch when
  ``--workers`` > 1, the serial engine otherwise);
* ``simulate``     -- every grid point's final schedule/allocation
  executed through the cycle-level simulator (the differential gate's
  hot path, ``benchmarks/bench_simulator.py``'s workload at grid scale).
  Informational only: it has no baseline ratio and is never gated.
* ``serve_single`` -- the mixed serve workload (the bench grid at a
  fixed ``SERVE_LOOPS`` suite size, twice, shuffled) through one
  single-process ``repro serve`` instance: the per-request baseline
  topology;
* ``serve_throughput`` -- the same workload against a scale-out server
  (``--workers`` shard processes, min 2, sharing one disk cache, each
  coalescing concurrent requests into engine batches).  Both serve
  scenarios spawn real subprocess servers on ephemeral ports and drive
  them with persistent-connection clients (:mod:`repro.api.loadtest`).

The regression gate (``--baseline`` / ``--max-regression``) compares the
hardware-independent ratios -- ``kernel_speedup`` (``cold_legacy /
cold_kernel``), ``batch_speedup`` (``cold_kernel / cold_batch``) and
``serve_scaleout`` (``serve_single / serve_throughput`` wall time) -- not
wall seconds: wall time varies with the host, while the speedup of the same
grid on the same interpreter is a property of the code.  Ratios whose
value is known to depend on host facts beyond the interpreter (core
count, scheduler) carry a wider per-ratio tolerance
(:data:`RATIO_TOLERANCES`).  Ratios the baseline file predates are
reported as notes, never spurious failures.  See ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro import kernel
from repro.analysis.reporting import format_table
from repro.core.models import Model
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.engine.jobs import evaluate_job
from repro.engine.pool import run_jobs
from repro.machine.config import paper_config
from repro.pipeline import ArtifactStore
from repro.pipeline.pipelines import run_evaluation
from repro.report.provenance import git_revision
from repro.workloads.suite import perfect_club_like

#: The canonical Figure 8/9 bench grid -- the single definition shared by
#: this driver and the pytest benchmarks (bench_pipeline/bench_kernels),
#: so the CI-gated ratio and the documented workload cannot drift apart.
LATENCY = 6
BUDGETS = (32, 64)
MODELS = (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED)

#: Scenario registry order is the report order.
SCENARIOS = (
    "cold_kernel",
    "cold_batch",
    "cold_legacy",
    "warm",
    "dispatch",
    "simulate",
    "check",
    "serve_single",
    "serve_throughput",
)

#: Clients driving the serve scenarios; enough concurrency for the shard
#: dispatchers to form real batches, small enough for a 1-core CI host.
SERVE_CLIENTS = 32

#: Suite size of the serve workload, fixed regardless of ``--loops``.
#: The serve scenarios measure the *serving stack* -- HTTP dispatch,
#: admission, cross-request coalescing, the shared cache -- under a
#: standardized request mix, so their numbers (and the gated
#: ``serve_scaleout`` ratio) stay comparable between the CI snapshot and
#: the full BENCH.json run.  Scaling grid compute is what the cold/warm
#: scenarios are for; folding it in here would just drown the serving
#: overhead being measured.
SERVE_LOOPS = 24

#: Per-ratio regression tolerance overrides.  ``serve_scaleout`` depends
#: on the host's core count and scheduler as well as the code, so it gets
#: a wide band: the gate catches the ratio collapsing (a broken
#: dispatcher or cache), not host-to-host variance.  A ratio not listed
#: here uses ``--max-regression`` unchanged.
RATIO_TOLERANCES = {"serve_scaleout": 0.5}


def bench_grid(
    loops: Sequence[Loop], machine: MachineConfig
) -> Iterator[tuple[Loop, MachineConfig, Model, int | None]]:
    """One Ideal point plus models x budgets per loop, in driver order."""
    for loop in loops:
        yield loop, machine, Model.IDEAL, None
        for budget in BUDGETS:
            for model in MODELS:
                yield loop, machine, model, budget


_grid = bench_grid  # backward-compatible private alias


def _run_grid(
    loops: Sequence[Loop], machine: MachineConfig, store: ArtifactStore
) -> int:
    points = 0
    for loop, mach, model, budget in bench_grid(loops, machine):
        run_evaluation(loop, mach, model, budget, store=store)
        points += 1
    return points


def _timed(fn: Callable[[], int], repeats: int) -> tuple[float, int]:
    """Best-of-``repeats`` wall time: the minimum is the least noisy
    estimate of the code's cost on a shared host (CI runners included)."""
    best = None
    points = 0
    for _ in range(repeats):
        start = time.perf_counter()
        points = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, points


def run_bench(
    n_loops: int = 32,
    workers: int = 0,
    scenarios: tuple[str, ...] = SCENARIOS,
    repeats: int = 1,
) -> dict:
    """Run the selected scenarios and return the JSON-ready snapshot."""
    unknown = set(scenarios) - set(SCENARIOS)
    if unknown:
        raise ValueError(f"unknown bench scenario(s): {sorted(unknown)}")
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    machine = paper_config(LATENCY)
    loops = list(perfect_club_like(n_loops))
    results: dict[str, dict] = {}

    def record(name: str, seconds: float, points: int) -> None:
        results[name] = {
            "seconds": round(seconds, 4),
            "points": points,
            "points_per_sec": round(points / seconds, 1) if seconds else 0.0,
        }

    if "cold_kernel" in scenarios:
        # Tier "1" pins the per-point measurement: _run_grid evaluates one
        # pipeline run per point either way, but the label must not drift
        # if that ever changes.
        with kernel.use_kernels("1"):
            seconds, points = _timed(
                lambda: _run_grid(loops, machine, ArtifactStore(8192)),
                repeats,
            )
        record("cold_kernel", seconds, points)
    if "cold_batch" in scenarios:
        jobs = [
            evaluate_job(loop, mach, model, budget)
            for loop, mach, model, budget in bench_grid(loops, machine)
        ]
        with kernel.use_kernels("batch"):
            seconds, points = _timed(
                lambda: len(run_jobs(jobs, workers=0, cache=None)),
                repeats,
            )
        record("cold_batch", seconds, points)
    if "cold_legacy" in scenarios:
        with kernel.use_kernels(False):
            seconds, points = _timed(
                lambda: _run_grid(loops, machine, ArtifactStore(8192)),
                repeats,
            )
        record("cold_legacy", seconds, points)
    if "warm" in scenarios:
        store = ArtifactStore(8192)
        _run_grid(loops, machine, store)  # prime
        seconds, points = _timed(
            lambda: _run_grid(loops, machine, store), repeats
        )
        record("warm", seconds, points)
    if "simulate" in scenarios:
        # The differential gate's hot path: execute every grid point's
        # final schedule/allocation cycle-by-cycle.  The store is primed
        # outside the timed region so the measurement is the simulator,
        # not the (already covered) analytic pipeline.  Imported lazily:
        # repro.validate must stay off the bench module's import graph.
        from repro.sim.executor import execute_kernel
        from repro.validate.differential import allocation_for

        store = ArtifactStore(8192)
        _run_grid(loops, machine, store)  # prime

        def _simulate() -> int:
            points = 0
            for loop, mach, model, budget in bench_grid(loops, machine):
                evaluation = run_evaluation(
                    loop, mach, model, budget, store=store
                )
                schedule, allocation = allocation_for(evaluation)
                execute_kernel(schedule, allocation, iterations=8)
                points += 1
            return points

        with kernel.use_kernels("1"):
            seconds, points = _timed(_simulate, repeats)
        record("simulate", seconds, points)
    if "check" in scenarios:
        # The static gate's hot path: prove every suite point's schedule
        # and allocation analytically, cold (fresh store per repeat) --
        # this is the cost of running the prover on 100% of the grid,
        # the number that justifies static-always where sim samples.
        # Imported lazily: repro.check rides the validate layering.
        from repro.check import run_static_validation

        def _check() -> int:
            result = run_static_validation(loops=loops, latency=LATENCY)
            if not result.ok:
                raise RuntimeError(
                    f"check bench disproved points: {result.format()}"
                )
            return len(result.points)

        seconds, points = _timed(_check, repeats)
        record("check", seconds, points)
    if "dispatch" in scenarios:
        jobs = [
            evaluate_job(loop, mach, model, budget)
            for loop, mach, model, budget in bench_grid(loops, machine)
        ]
        seconds, points = _timed(
            lambda: len(run_jobs(jobs, workers=workers, cache=None)),
            repeats,
        )
        results["dispatch"] = {
            "seconds": round(seconds, 4),
            "points": points,
            "points_per_sec": round(points / seconds, 1) if seconds else 0.0,
            "workers": workers,
        }

    serve_wanted = [
        name
        for name in ("serve_single", "serve_throughput")
        if name in scenarios
    ]
    if serve_wanted:
        # Lazy import: the load harness spawns subprocess servers and has
        # no business on the import graph of a plain bench run.
        from repro.api.loadtest import (
            LoadStats,
            ServerProcess,
            build_workload,
            run_load,
        )

        bodies = build_workload("mixed", SERVE_LOOPS)

        def _serve_stats(shards: int) -> LoadStats:
            """Best-of-``repeats`` load run; fresh server+cache each time."""
            best = None
            for _ in range(repeats):
                with ServerProcess(workers=shards) as server:
                    stats = run_load(
                        server.url, bodies, clients=SERVE_CLIENTS
                    )
                    clean = server.shutdown()
                if stats.errors or not clean:
                    raise RuntimeError(
                        f"serve bench (workers={shards}) failed: "
                        f"{stats.errors} error(s), clean_exit={clean}: "
                        f"{stats.error_samples[:3]}"
                    )
                if best is None or stats.elapsed < best.elapsed:
                    best = stats
            return best

        for name in serve_wanted:
            shards = 0 if name == "serve_single" else max(2, workers)
            stats = _serve_stats(shards)
            results[name] = {
                "seconds": round(stats.elapsed, 4),
                "points": stats.requests,
                "points_per_sec": round(stats.points_per_sec, 1),
                "shards": shards,
                "clients": SERVE_CLIENTS,
                "loops": SERVE_LOOPS,
                "p50_ms": round(stats.p50_ms, 2),
                "p99_ms": round(stats.p99_ms, 2),
            }

    snapshot = {
        "meta": {
            "loops": n_loops,
            "repeats": repeats,
            "grid": {
                "machine": machine.name,
                "budgets": list(BUDGETS),
                "models": ["ideal"] + [m.value for m in MODELS],
            },
            "python": platform.python_version(),
            "platform": platform.platform(),
            "git": git_revision(),
        },
        "scenarios": results,
        "ratios": {},
    }
    if "cold_kernel" in results and "cold_legacy" in results:
        cold = results["cold_kernel"]["seconds"]
        snapshot["ratios"]["kernel_speedup"] = (
            round(results["cold_legacy"]["seconds"] / cold, 2) if cold else 0.0
        )
    if "cold_kernel" in results and "cold_batch" in results:
        batch = results["cold_batch"]["seconds"]
        snapshot["ratios"]["batch_speedup"] = (
            round(results["cold_kernel"]["seconds"] / batch, 2)
            if batch
            else 0.0
        )
    if "cold_kernel" in results and "warm" in results:
        warm = results["warm"]["seconds"]
        snapshot["ratios"]["warm_speedup"] = (
            round(results["cold_kernel"]["seconds"] / warm, 2) if warm else 0.0
        )
    if "serve_single" in results and "serve_throughput" in results:
        sharded = results["serve_throughput"]["seconds"]
        snapshot["ratios"]["serve_scaleout"] = (
            round(results["serve_single"]["seconds"] / sharded, 2)
            if sharded
            else 0.0
        )
    return snapshot


def format_snapshot(snapshot: dict) -> str:
    """Human-readable view of one snapshot."""
    rows = []
    for name, data in snapshot["scenarios"].items():
        label = name
        if "workers" in data:
            label = f"{name} (workers={data['workers']})"
        elif "shards" in data:
            label = (
                f"{name} (shards={data['shards']}, "
                f"clients={data['clients']})"
            )
        rows.append(
            (label, data["seconds"], data["points"], data["points_per_sec"])
        )
    meta = snapshot["meta"]
    table = format_table(
        ["scenario", "seconds", "points", "points/s"],
        rows,
        title=f"repro bench --loops {meta['loops']} ({meta['git']})",
    )
    ratios = snapshot.get("ratios") or {}
    lines = [table]
    for name, value in ratios.items():
        lines.append(f"{name}: {value}x")
    return "\n".join(lines)


def check_regression(
    snapshot: dict, baseline_path: str | Path, max_regression: float
) -> list[str]:
    """Compare a snapshot against a checked-in baseline.

    Returns a list of failure messages (empty = pass).  Only the
    hardware-independent ratios are gated; wall seconds are reported for
    context but never compared across hosts.  Ratios and scenarios the
    baseline file does not know about are *not* failures -- they surface
    through :func:`baseline_gaps` so an older baseline reports a clear
    note instead of crashing or spuriously failing when a new scenario
    lands.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    failures = []
    base_loops = (baseline.get("meta") or {}).get("loops")
    here_loops = (snapshot.get("meta") or {}).get("loops")
    if base_loops is not None and base_loops != here_loops:
        return [
            f"baseline was measured at --loops {base_loops}, this run at "
            f"--loops {here_loops}; ratios are scale-dependent and not "
            f"comparable"
        ]
    for name, reference in (baseline.get("ratios") or {}).items():
        current = (snapshot.get("ratios") or {}).get(name)
        if current is None:
            failures.append(
                f"{name}: baseline has {reference}, current run lacks the "
                f"scenarios to compute it"
            )
            continue
        # Host-sensitive ratios carry their own wider tolerance; the CLI
        # flag can only widen further, never tighten past the per-ratio
        # floor (a strict --max-regression must not make serve_scaleout
        # flaky across differently-sized runners).
        tolerance = max(max_regression, RATIO_TOLERANCES.get(name, 0.0))
        floor = reference * (1.0 - tolerance)
        if current < floor:
            failures.append(
                f"{name}: {current}x is below {floor:.2f}x "
                f"(baseline {reference}x - {tolerance:.0%} tolerance)"
            )
    return failures


def baseline_gaps(snapshot: dict, baseline_path: str | Path) -> list[str]:
    """Scenarios/ratios the current run produces but the baseline lacks.

    These cannot be gated (there is no reference value) and must never
    crash the gate or fail it spuriously; the CLI prints them as notes so
    a stale baseline is visible and gets regenerated.
    """
    baseline = json.loads(Path(baseline_path).read_text())
    gaps = []
    base_scenarios = baseline.get("scenarios") or {}
    for name in (snapshot.get("scenarios") or {}):
        if name not in base_scenarios:
            gaps.append(
                f"scenario {name!r} is not in the baseline; regenerate it "
                f"to cover the new measurement"
            )
    base_ratios = baseline.get("ratios") or {}
    for name, current in (snapshot.get("ratios") or {}).items():
        if name not in base_ratios:
            gaps.append(
                f"ratio {name!r} ({current}x) has no baseline reference "
                f"and is not gated"
            )
    return gaps


def main(args: argparse.Namespace) -> int:
    """CLI entry (wired by :mod:`repro.__main__`)."""
    scenarios = tuple(args.scenario) if args.scenario else SCENARIOS
    snapshot = run_bench(
        n_loops=args.loops,
        workers=args.workers,
        scenarios=scenarios,
        repeats=args.repeats,
    )
    print(format_snapshot(snapshot))
    if args.json:
        Path(args.json).write_text(json.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.baseline:
        for gap in baseline_gaps(snapshot, args.baseline):
            print(f"bench note: {gap}")
        failures = check_regression(
            snapshot, args.baseline, args.max_regression
        )
        if failures:
            for failure in failures:
                print(f"bench regression: {failure}", file=sys.stderr)
            return 1
        print(
            f"regression gate: ok against {args.baseline} "
            f"(tolerance {args.max_regression:.0%})"
        )
    return 0


__all__ = [
    "BUDGETS",
    "LATENCY",
    "MODELS",
    "RATIO_TOLERANCES",
    "SCENARIOS",
    "SERVE_CLIENTS",
    "SERVE_LOOPS",
    "baseline_gaps",
    "bench_grid",
    "check_regression",
    "format_snapshot",
    "main",
    "run_bench",
]
