"""A small DSL for writing loop bodies as dataflow expressions.

Example -- DAXPY (``y(i) = y(i) + a * x(i)``)::

    b = LoopBuilder("daxpy")
    x = b.load("x")
    y = b.load("y")
    b.store(b.add(b.mul(b.inv("a"), x), y), "y")
    loop = b.build(trip_count=1000)

Loop-carried recurrences use placeholders.  A dot-product reduction::

    b = LoopBuilder("dot")
    acc = b.placeholder()                  # value of s from the previous iter
    s = b.add(acc, b.mul(b.load("x"), b.load("y")), name="s")
    b.bind(acc, s, distance=1)             # acc := s one iteration ago
    loop = b.build(trip_count=500)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ir.ddg import DependenceGraph, EdgeKind
from repro.ir.loop import Loop
from repro.ir.operation import (
    Immediate,
    InvariantRef,
    Operand,
    Operation,
    OpType,
    ValueRef,
)


@dataclass(frozen=True)
class Value:
    """Handle to the value defined by an operation in the builder."""

    op_id: int
    builder_id: int


@dataclass(frozen=True)
class Placeholder:
    """Forward reference to a value defined later (loop-carried)."""

    index: int
    builder_id: int


BuildOperand = Value | Placeholder | InvariantRef | Immediate | float | int | str


class BuilderError(ValueError):
    """Raised on misuse of the loop builder."""


class LoopBuilder:
    """Incrementally constructs a :class:`~repro.ir.loop.Loop`.

    Convenience coercions for operands: a ``str`` becomes a loop invariant,
    a ``float``/``int`` becomes an immediate.
    """

    _instances = 0

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._graph = DependenceGraph(name)
        self._placeholders: dict[int, tuple[int, int] | None] = {}
        self._placeholder_uses: dict[int, list[tuple[int, int]]] = {}
        LoopBuilder._instances += 1
        self._builder_id = LoopBuilder._instances
        self._built = False

    # ------------------------------------------------------------------
    # Operand handling
    # ------------------------------------------------------------------
    def _coerce(self, operand: BuildOperand) -> Operand | Placeholder:
        if isinstance(operand, Value):
            if operand.builder_id != self._builder_id:
                raise BuilderError("value belongs to a different builder")
            return ValueRef(operand.op_id, 0)
        if isinstance(operand, Placeholder):
            if operand.builder_id != self._builder_id:
                raise BuilderError("placeholder belongs to a different builder")
            return operand
        if isinstance(operand, (InvariantRef, Immediate)):
            return operand
        if isinstance(operand, str):
            return InvariantRef(operand)
        if isinstance(operand, (int, float)):
            return Immediate(float(operand))
        raise BuilderError(f"cannot use {operand!r} as an operand")

    def _emit(
        self,
        optype: OpType,
        operands: tuple[BuildOperand, ...],
        name: str | None,
        symbol: str | None = None,
    ) -> Operation:
        if self._built:
            raise BuilderError("builder already finalized")
        coerced = [self._coerce(o) for o in operands]
        # Placeholders are temporarily emitted as immediates and patched in
        # bind(); record the (op, position) uses.
        final: list[Operand] = []
        pending: list[tuple[int, int]] = []
        for pos, operand in enumerate(coerced):
            if isinstance(operand, Placeholder):
                final.append(Immediate(0.0))
                pending.append((operand.index, pos))
            else:
                final.append(operand)
        op = self._graph.add_operation(
            optype, final, name=name, symbol=symbol
        )
        for index, pos in pending:
            self._placeholder_uses.setdefault(index, []).append((op.op_id, pos))
        return op

    # ------------------------------------------------------------------
    # Public DSL
    # ------------------------------------------------------------------
    def inv(self, name: str) -> InvariantRef:
        """A loop-invariant operand (held in the general register file)."""
        return InvariantRef(name)

    def const(self, value: float) -> Immediate:
        return Immediate(float(value))

    def load(self, symbol: str, name: str | None = None) -> Value:
        op = self._emit(OpType.LOAD, (), name, symbol=symbol)
        return Value(op.op_id, self._builder_id)

    def store(
        self, value: BuildOperand, symbol: str, name: str | None = None
    ) -> Operation:
        return self._emit(OpType.STORE, (value,), name, symbol=symbol)

    def add(self, a: BuildOperand, b: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FADD, (a, b), name).op_id, self._builder_id)

    def sub(self, a: BuildOperand, b: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FSUB, (a, b), name).op_id, self._builder_id)

    def mul(self, a: BuildOperand, b: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FMUL, (a, b), name).op_id, self._builder_id)

    def div(self, a: BuildOperand, b: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FDIV, (a, b), name).op_id, self._builder_id)

    def neg(self, a: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FNEG, (a,), name).op_id, self._builder_id)

    def conv(self, a: BuildOperand, name: str | None = None) -> Value:
        return Value(self._emit(OpType.FCONV, (a,), name).op_id, self._builder_id)

    def placeholder(self) -> Placeholder:
        """Create a forward reference for a loop-carried value."""
        index = len(self._placeholders)
        self._placeholders[index] = None
        return Placeholder(index, self._builder_id)

    def bind(self, ph: Placeholder, value: Value, distance: int = 1) -> None:
        """Resolve ``ph`` to ``value`` carried across ``distance`` iterations."""
        if ph.builder_id != self._builder_id:
            raise BuilderError("placeholder belongs to a different builder")
        if distance < 1:
            raise BuilderError("loop-carried distance must be >= 1")
        if self._placeholders.get(ph.index) is not None:
            raise BuilderError("placeholder already bound")
        self._placeholders[ph.index] = (value.op_id, distance)
        for op_id, pos in self._placeholder_uses.get(ph.index, []):
            op = self._graph.op(op_id)
            operands = list(op.operands)
            operands[pos] = ValueRef(value.op_id, distance)
            self._graph.set_operands(op_id, operands)

    def order(
        self,
        before: Operation | Value,
        after: Operation | Value,
        distance: int = 0,
        min_delay: int = 1,
        kind: EdgeKind = EdgeKind.MEMORY,
    ) -> None:
        """Add an explicit memory/ordering edge between two operations."""
        src = before.op_id if isinstance(before, (Value, Operation)) else before
        dst = after.op_id if isinstance(after, (Value, Operation)) else after
        self._graph.add_edge(src, dst, kind=kind, distance=distance,
                             min_delay=min_delay)

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def build(
        self,
        trip_count: int = 100,
        source: str | None = None,
        validate: bool = True,
    ) -> Loop:
        """Finalize and return the loop.

        Raises :class:`BuilderError` if any placeholder is unbound, and runs
        :func:`repro.ir.validate.validate_graph` unless ``validate=False``.
        """
        unbound = [i for i, binding in self._placeholders.items() if binding is None]
        if unbound:
            raise BuilderError(f"unbound placeholders: {unbound}")
        self._built = True
        loop = Loop(
            name=self.name,
            graph=self._graph,
            trip_count=trip_count,
            source=source,
        )
        if validate:
            from repro.ir.validate import validate_graph

            validate_graph(self._graph)
        return loop


__all__ = ["BuilderError", "LoopBuilder", "Placeholder", "Value"]
