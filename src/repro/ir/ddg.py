"""Data-dependence graphs for innermost loops.

A :class:`DependenceGraph` holds the operations of one loop body plus the
dependences between them:

* **flow dependences** are implied by operands (:class:`~repro.ir.operation.ValueRef`)
  and connect a value's producer to each consumer, annotated with the
  dependence distance in iterations;
* **memory/ordering edges** are explicit extra edges (store -> load of the
  same location, store -> store ordering, recurrences through memory).

Edge *latencies* are a property of the target machine, not of the graph, so
they are resolved at scheduling time (see :mod:`repro.sched`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.ir.operation import (
    Immediate,
    InvariantRef,
    Operand,
    Operation,
    OpType,
    ValueRef,
)


class EdgeKind(enum.Enum):
    FLOW = "flow"  # register flow dependence (from operands)
    MEMORY = "memory"  # dependence through a memory location
    ORDER = "order"  # generic ordering constraint


@dataclass(frozen=True)
class Edge:
    """A scheduling dependence ``src -> dst``.

    ``dst`` must issue no earlier than ``latency(src) - ii * distance``
    cycles after ``src`` (flow edges) or ``min_delay - ii * distance``
    (explicit edges carrying their own delay).
    """

    src: int
    dst: int
    kind: EdgeKind
    distance: int = 0
    #: For non-flow edges: the minimum issue-to-issue delay in cycles.
    #: For flow edges this is ``None`` and the producer latency is used.
    min_delay: int | None = None
    #: For flow edges: which operand position of ``dst`` consumes the value.
    position: int | None = None


class GraphError(ValueError):
    """Raised for structurally invalid dependence graphs."""


class DependenceGraph:
    """Mutable DDG of one loop body.

    Operations are added through :meth:`add_operation`; flow edges are derived
    automatically from their operands.  Explicit memory/ordering edges are
    added with :meth:`add_edge`.
    """

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._ops: dict[int, Operation] = {}
        self._extra_edges: list[Edge] = []
        self._next_id = 0
        #: Mutation counter: bumped by every structural change so lowered
        #: array forms (:mod:`repro.kernel`) can detect staleness.
        self._version = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_operation(
        self,
        optype: OpType,
        operands: Iterable[Operand] = (),
        name: str | None = None,
        symbol: str | None = None,
        is_spill: bool = False,
    ) -> Operation:
        """Create an operation, assign it a fresh id and insert it."""
        op_id = self._next_id
        self._next_id += 1
        operands = tuple(operands)
        for operand in operands:
            if isinstance(operand, ValueRef):
                self._check_producer(operand.producer)
        op = Operation(
            op_id=op_id,
            name=name or f"op{op_id}",
            optype=optype,
            operands=operands,
            symbol=symbol,
            is_spill=is_spill,
        )
        self._ops[op_id] = op
        self._version += 1
        return op

    def _check_producer(self, producer: int) -> None:
        if producer not in self._ops:
            raise GraphError(f"operand references unknown operation {producer}")
        if not self._ops[producer].defines_value:
            raise GraphError(
                f"operation {self._ops[producer].name} defines no value"
            )

    def set_operands(self, op_id: int, operands: Iterable[Operand]) -> None:
        """Replace the operand tuple of an existing operation.

        Used by the loop builder to resolve placeholders of loop-carried
        values and by the spiller to redirect consumers to reload operations.
        """
        operands = tuple(operands)
        for operand in operands:
            if isinstance(operand, ValueRef):
                self._check_producer(operand.producer)
        self._ops[op_id] = replace(self._ops[op_id], operands=operands)
        self._version += 1

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: EdgeKind = EdgeKind.MEMORY,
        distance: int = 0,
        min_delay: int = 1,
    ) -> Edge:
        """Add an explicit (non-flow) dependence edge."""
        if src not in self._ops or dst not in self._ops:
            raise GraphError("edge endpoints must be existing operations")
        if kind is EdgeKind.FLOW:
            raise GraphError("flow edges are derived from operands")
        if distance < 0:
            raise GraphError("dependence distance must be non-negative")
        edge = Edge(src, dst, kind, distance, min_delay=min_delay)
        self._extra_edges.append(edge)
        self._version += 1
        return edge

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def operations(self) -> list[Operation]:
        """Operations in id order."""
        return [self._ops[i] for i in sorted(self._ops)]

    def op(self, op_id: int) -> Operation:
        return self._ops[op_id]

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.operations)

    def values(self) -> list[Operation]:
        """Operations that define a loop variant."""
        return [op for op in self.operations if op.defines_value]

    def flow_edges(self) -> list[Edge]:
        """Flow edges derived from operands, in deterministic order."""
        edges = []
        for op in self.operations:
            for pos, operand in enumerate(op.operands):
                if isinstance(operand, ValueRef):
                    edges.append(
                        Edge(
                            src=operand.producer,
                            dst=op.op_id,
                            kind=EdgeKind.FLOW,
                            distance=operand.distance,
                            position=pos,
                        )
                    )
        return edges

    def edges(self) -> list[Edge]:
        """All dependence edges (flow first, then explicit edges)."""
        return self.flow_edges() + list(self._extra_edges)

    def extra_edges(self) -> list[Edge]:
        return list(self._extra_edges)

    def consumers(self, op_id: int) -> list[tuple[Operation, int]]:
        """Consumers of the value defined by ``op_id``.

        Returns ``(consumer, distance)`` pairs; a consumer using the value
        twice appears once per use.
        """
        result = []
        for op in self.operations:
            for operand in op.operands:
                if isinstance(operand, ValueRef) and operand.producer == op_id:
                    result.append((op, operand.distance))
        return result

    def count(self, optype: OpType) -> int:
        return sum(1 for op in self.operations if op.optype is optype)

    def memory_operations(self) -> list[Operation]:
        return [op for op in self.operations if op.optype.is_memory]

    # ------------------------------------------------------------------
    # Copying
    # ------------------------------------------------------------------
    def copy(self, name: str | None = None) -> "DependenceGraph":
        """Deep-enough copy: operations are immutable, containers are new."""
        clone = DependenceGraph(name or self.name)
        clone._ops = dict(self._ops)
        clone._extra_edges = list(self._extra_edges)
        clone._next_id = self._next_id
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DependenceGraph({self.name!r}, ops={len(self._ops)}, "
            f"edges={len(self.edges())})"
        )


__all__ = [
    "DependenceGraph",
    "Edge",
    "EdgeKind",
    "GraphError",
    "Immediate",
    "InvariantRef",
    "Operand",
    "Operation",
    "OpType",
    "ValueRef",
]
