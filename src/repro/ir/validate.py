"""Structural validation of dependence graphs.

A graph is schedulable by modulo scheduling only if every dependence cycle
has a positive total distance (otherwise an operation would depend on itself
within the same iteration).  Validation also enforces the arity conventions
of the operation set.
"""

from __future__ import annotations

from repro.ir.ddg import DependenceGraph, GraphError
from repro.ir.operation import OpType, ValueRef

#: Expected operand counts per operation type (``None`` = no constraint).
_ARITY: dict[OpType, int] = {
    OpType.FADD: 2,
    OpType.FSUB: 2,
    OpType.FMUL: 2,
    OpType.FDIV: 2,
    OpType.FNEG: 1,
    OpType.FCONV: 1,
    OpType.LOAD: 0,
    OpType.STORE: 1,
}


def validate_graph(graph: DependenceGraph) -> None:
    """Raise :class:`~repro.ir.ddg.GraphError` if ``graph`` is malformed."""
    if len(graph) == 0:
        raise GraphError("empty dependence graph")
    _check_arities(graph)
    _check_symbols(graph)
    _check_zero_distance_cycles(graph)


def _check_arities(graph: DependenceGraph) -> None:
    for op in graph.operations:
        expected = _ARITY[op.optype]
        if len(op.operands) != expected:
            raise GraphError(
                f"{op.name}: {op.optype.value} takes {expected} operands, "
                f"got {len(op.operands)}"
            )
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                if operand.producer == op.op_id and operand.distance == 0:
                    raise GraphError(
                        f"{op.name}: self-dependence with distance 0"
                    )


def _check_symbols(graph: DependenceGraph) -> None:
    for op in graph.operations:
        if op.optype.is_memory and not op.symbol:
            raise GraphError(f"{op.name}: memory operation without a symbol")


def _check_zero_distance_cycles(graph: DependenceGraph) -> None:
    """Detect dependence cycles whose total distance is zero.

    The subgraph of distance-0 edges must be acyclic; we check with an
    iterative topological sort (Kahn's algorithm).
    """
    indegree = {op.op_id: 0 for op in graph.operations}
    succs: dict[int, list[int]] = {op.op_id: [] for op in graph.operations}
    for edge in graph.edges():
        if edge.distance == 0:
            succs[edge.src].append(edge.dst)
            indegree[edge.dst] += 1
    ready = [op_id for op_id, deg in indegree.items() if deg == 0]
    visited = 0
    while ready:
        node = ready.pop()
        visited += 1
        for succ in succs[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if visited != len(graph):
        raise GraphError(
            f"{graph.name}: dependence cycle with zero total distance"
        )


__all__ = ["validate_graph"]
