"""Loop container: a dependence graph plus workload metadata."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ir.ddg import DependenceGraph


@dataclass
class Loop:
    """An innermost loop to be software pipelined.

    Attributes:
        name: Identifier used in reports.
        graph: Body of the loop as a data-dependence graph.
        trip_count: Estimated number of iterations executed per entry,
            used to weight loops by execution time in the dynamic
            distributions (paper, Figure 7) and in the performance and
            traffic aggregates (Figures 8 and 9).
        source: Optional human-readable statement of the loop body.
    """

    name: str
    graph: DependenceGraph
    trip_count: int = 100
    source: str | None = None

    def __post_init__(self) -> None:
        if self.trip_count < 1:
            raise ValueError("trip_count must be positive")

    @property
    def size(self) -> int:
        """Number of operations in the loop body."""
        return len(self.graph)

    def with_graph(self, graph: DependenceGraph, suffix: str = "") -> "Loop":
        """A copy of this loop with a different body (used by the spiller)."""
        return Loop(
            name=self.name + suffix,
            graph=graph,
            trip_count=self.trip_count,
            source=self.source,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Loop({self.name!r}, ops={self.size}, trips={self.trip_count})"


__all__ = ["Loop"]
