"""Loop intermediate representation: operations, dependence graphs, builder."""

from repro.ir.builder import BuilderError, LoopBuilder, Placeholder, Value
from repro.ir.ddg import DependenceGraph, Edge, EdgeKind, GraphError
from repro.ir.loop import Loop
from repro.ir.operation import (
    FU_CLASS_OF,
    FuClass,
    Immediate,
    InvariantRef,
    Operand,
    Operation,
    OpType,
    ValueRef,
)
from repro.ir.validate import validate_graph

__all__ = [
    "BuilderError",
    "DependenceGraph",
    "Edge",
    "EdgeKind",
    "FU_CLASS_OF",
    "FuClass",
    "GraphError",
    "Immediate",
    "InvariantRef",
    "Loop",
    "LoopBuilder",
    "Operand",
    "Operation",
    "OpType",
    "Placeholder",
    "Value",
    "ValueRef",
    "validate_graph",
]
