"""Operations of the loop intermediate representation.

The paper models floating-point inner loops as data-dependence graphs whose
nodes are floating-point operations (additions, subtractions, conversions,
multiplications, divisions) plus the loads and stores that move loop variants
between memory and the rotating register file.  Addresses and integer
bookkeeping live in the address processor of the decoupled architecture and
are therefore not represented (paper, Section 2).

Each operation that is not a store defines exactly one *loop variant* (a new
register instance per iteration).  Operands refer either to the value defined
by another operation (possibly in an earlier iteration, expressed with a
dependence *distance*), to a loop invariant (kept in the non-rotating general
register file and not counted, per Section 2), or to an immediate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class OpType(enum.Enum):
    """Semantic operation types, grouped by functional-unit class.

    The paper's adders execute additions, subtractions and int/float
    conversions; the multipliers execute multiplications and divisions with
    the same latency (Section 5.2).
    """

    FADD = "fadd"
    FSUB = "fsub"
    FCONV = "fconv"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    LOAD = "load"
    STORE = "store"

    @property
    def is_memory(self) -> bool:
        return self in (OpType.LOAD, OpType.STORE)

    @property
    def defines_value(self) -> bool:
        """Whether the operation creates a new register instance."""
        return self is not OpType.STORE


class FuClass(enum.Enum):
    """Functional-unit classes an operation can execute on."""

    ADDER = "adder"
    MULTIPLIER = "multiplier"
    MEMORY = "memory"


#: Map from semantic operation type to the functional-unit class it needs.
FU_CLASS_OF: dict[OpType, FuClass] = {
    OpType.FADD: FuClass.ADDER,
    OpType.FSUB: FuClass.ADDER,
    OpType.FCONV: FuClass.ADDER,
    OpType.FNEG: FuClass.ADDER,
    OpType.FMUL: FuClass.MULTIPLIER,
    OpType.FDIV: FuClass.MULTIPLIER,
    OpType.LOAD: FuClass.MEMORY,
    OpType.STORE: FuClass.MEMORY,
}


@dataclass(frozen=True)
class ValueRef:
    """Operand referring to the value defined by operation ``producer``.

    ``distance`` is the dependence distance in iterations: a distance of 1
    means the operand is the value the producer defined one iteration ago
    (a loop-carried flow dependence).
    """

    producer: int
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("dependence distance must be non-negative")


@dataclass(frozen=True)
class InvariantRef:
    """Operand referring to a loop invariant (general register file)."""

    name: str


@dataclass(frozen=True)
class Immediate:
    """Constant operand."""

    value: float


Operand = ValueRef | InvariantRef | Immediate


@dataclass
class Operation:
    """A node of the data-dependence graph.

    Attributes:
        op_id: Unique id within the graph.  Stable across graph copies.
        name: Human-readable label, e.g. ``"M3"`` in the paper's example.
        optype: Semantic operation type.
        operands: Inputs in positional order (order matters for FSUB/FDIV).
        symbol: Array symbol accessed by loads/stores, e.g. ``"x"``.
        is_spill: True for load/store operations introduced by the spiller.
    """

    op_id: int
    name: str
    optype: OpType
    operands: tuple[Operand, ...] = field(default_factory=tuple)
    symbol: str | None = None
    is_spill: bool = False

    @property
    def fu_class(self) -> FuClass:
        return FU_CLASS_OF[self.optype]

    @property
    def defines_value(self) -> bool:
        return self.optype.defines_value

    def value_operands(self) -> list[ValueRef]:
        """Operands that are register values (the flow dependences)."""
        return [op for op in self.operands if isinstance(op, ValueRef)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation({self.name}:{self.optype.value}@{self.op_id})"
