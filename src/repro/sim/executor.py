"""Cycle-level execution of modulo-scheduled kernels.

The executor runs ``iterations`` overlapped loop iterations of a schedule
against a functional register-file model and the reference interpreter:

* every result is written to the register file(s) dictated by the
  allocation (both subfiles for globals, one for locals, the single file
  for the unified organization) at ``issue + latency``;
* every operand is read from the consumer's cluster's subfile at issue and
  compared against the reference interpreter -- an overwritten live register
  or a violated dependence surfaces as an ownership or value mismatch;
* loads/stores move values through a memory model keyed by
  ``(symbol, iteration)`` so spill-code round trips are verified too;
* per-cycle read/write port usage of each subfile and memory-bus usage are
  recorded, giving an empirical cross-check of the paper's traffic-density
  metric and of the port-pressure argument of Section 3.2.

Operands with ``iteration - distance < 0`` are prologue live-ins: they are
never produced inside the simulated window, so their reads short-circuit to
the reference interpreter's initial values.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clustering import ClusterAssignment, scheduler_assignment
from repro.core.dualfile import DualAllocation
from repro.ir.operation import Immediate, InvariantRef, Operation, OpType, ValueRef
from repro.regalloc.allocation import UnifiedAllocation
from repro.sched.schedule import Schedule
from repro.sim.reference import ReferenceInterpreter, apply_op, invariant_value
from repro.sim.regfile import OccupancyStats, RegisterFile


class SimulationError(RuntimeError):
    """A dataflow mismatch between execution and the reference model.

    Carries the failing op, cycle, and the expected/observed values as
    attributes so diagnostics survive without string parsing.
    """

    def __init__(
        self,
        message: str,
        *,
        op: str | None = None,
        cycle: int | None = None,
        iteration: int | None = None,
        expected: object = None,
        observed: object = None,
    ) -> None:
        super().__init__(message)
        self.op = op
        self.cycle = cycle
        self.iteration = iteration
        self.expected = expected
        self.observed = observed


@dataclass
class PortStats:
    """Per-cycle port-usage accounting of one register subfile."""

    reads_per_cycle: dict[int, int] = field(default_factory=dict)
    writes_per_cycle: dict[int, int] = field(default_factory=dict)

    def record_read(self, time: int, count: int = 1) -> None:
        self.reads_per_cycle[time] = self.reads_per_cycle.get(time, 0) + count

    def record_write(self, time: int, count: int = 1) -> None:
        self.writes_per_cycle[time] = self.writes_per_cycle.get(time, 0) + count

    @property
    def max_reads(self) -> int:
        return max(self.reads_per_cycle.values(), default=0)

    @property
    def max_writes(self) -> int:
        return max(self.writes_per_cycle.values(), default=0)


@dataclass
class SimulationReport:
    """Outcome of one kernel execution."""

    iterations: int
    cycles: int
    reads_checked: int
    values_written: int
    memory_accesses: int
    bus_per_cycle: dict[int, int]
    port_stats: dict[str, PortStats]
    #: File name -> observed occupancy (peak busy cells, cells touched).
    occupancy: dict[str, OccupancyStats] = field(default_factory=dict)
    #: File name -> register count the allocation claimed for that file.
    registers_claimed: dict[str, int] = field(default_factory=dict)

    @property
    def bus_peak(self) -> int:
        return max(self.bus_per_cycle.values(), default=0)

    def average_bus_usage(self, bandwidth: int) -> float:
        """Empirical density of memory traffic (Figure 9's metric)."""
        if self.cycles == 0:
            return 0.0
        return self.memory_accesses / (self.cycles * bandwidth)


def _files_for_unified(
    allocation: UnifiedAllocation,
) -> dict[int, RegisterFile]:
    """Cluster -> file mapping for the unified organization (one file)."""
    rf = RegisterFile(
        "unified",
        allocation.registers_required,
        allocation.result.placements,
        allocation.ii,
    )
    n_clusters = allocation.schedule.machine.n_clusters
    return {c: rf for c in range(n_clusters)}


def _files_for_dual(allocation: DualAllocation) -> dict[int, RegisterFile]:
    files: dict[int, RegisterFile] = {}
    for cluster in range(allocation.n_clusters):
        file_alloc = allocation.file_allocation(cluster)
        files[cluster] = RegisterFile(
            f"subfile{cluster}",
            file_alloc.registers_required,
            file_alloc.placements,
            allocation.ii,
        )
    return files


def execute_kernel(
    schedule: Schedule,
    allocation: UnifiedAllocation | DualAllocation,
    iterations: int = 16,
    assignment: ClusterAssignment | None = None,
) -> SimulationReport:
    """Execute ``iterations`` overlapped iterations and verify dataflow.

    Raises :class:`SimulationError` (value mismatch) or
    :class:`~repro.sim.regfile.RegisterFileError` (overwritten live register)
    if the schedule/allocation pair is broken.
    """
    graph = schedule.graph
    machine = schedule.machine
    reference = ReferenceInterpreter(graph)

    if isinstance(allocation, DualAllocation):
        files = _files_for_dual(allocation)
        assignment = dict(allocation.assignment)
    else:
        files = _files_for_unified(allocation)
        if assignment is None:
            assignment = scheduler_assignment(schedule)

    unique_files: dict[str, RegisterFile] = {
        rf.name: rf for rf in files.values()
    }
    port_stats = {name: PortStats() for name in unique_files}

    memory: dict[tuple[str, int], float] = {}
    events = sorted(
        (schedule.time_of(op.op_id) + k * schedule.ii, op.op_id, k)
        for op in graph.operations
        for k in range(iterations)
    )

    reads_checked = 0
    values_written = 0
    memory_accesses = 0
    bus_per_cycle: dict[int, int] = {}

    for time, op_id, k in events:
        op = graph.op(op_id)
        rf = files[assignment[op_id]]

        inputs: list[float] = []
        for operand in op.operands:
            if isinstance(operand, ValueRef):
                src_iter = k - operand.distance
                expected = reference.value(operand.producer, src_iter)
                if src_iter >= 0:
                    got = rf.read(operand.producer, src_iter, time)
                    port_stats[rf.name].record_read(time)
                    if got != expected:
                        raise SimulationError(
                            f"{op.name} iter {k}: read {got!r}, "
                            f"expected {expected!r}",
                            op=op.name,
                            cycle=time,
                            iteration=k,
                            expected=expected,
                            observed=got,
                        )
                    reads_checked += 1
                    inputs.append(got)
                else:
                    inputs.append(expected)  # prologue live-in
            elif isinstance(operand, InvariantRef):
                inputs.append(invariant_value(operand.name))
            elif isinstance(operand, Immediate):
                inputs.append(operand.value)

        if op.optype.is_memory:
            memory_accesses += 1
            bus_per_cycle[time] = bus_per_cycle.get(time, 0) + 1

        if op.optype is OpType.STORE:
            memory[(op.symbol or "?", k)] = inputs[0]
            continue

        result = _load_or_compute(op, k, inputs, memory, reference)
        expected = reference.value(op_id, k)
        if result != expected:
            raise SimulationError(
                f"{op.name} iter {k}: computed {result!r}, "
                f"reference {expected!r}",
                op=op.name,
                cycle=time,
                iteration=k,
                expected=expected,
                observed=result,
            )

        write_time = time + machine.latency_of(op)
        written = False
        for rf_out in unique_files.values():
            if rf_out.holds(op_id):
                rf_out.write(op_id, k, result, write_time)
                port_stats[rf_out.name].record_write(write_time)
                written = True
        if not written:
            raise SimulationError(
                f"{op.name}: value allocated in no file",
                op=op.name,
                cycle=time,
                iteration=k,
            )
        values_written += 1

    total_cycles = iterations * schedule.ii
    return SimulationReport(
        iterations=iterations,
        cycles=total_cycles,
        reads_checked=reads_checked,
        values_written=values_written,
        memory_accesses=memory_accesses,
        bus_per_cycle=bus_per_cycle,
        port_stats=port_stats,
        occupancy={
            name: rf.occupancy() for name, rf in unique_files.items()
        },
        registers_claimed={
            name: rf.registers for name, rf in unique_files.items()
        },
    )


def _load_or_compute(
    op: Operation,
    k: int,
    inputs: list[float],
    memory: dict[tuple[str, int], float],
    reference: ReferenceInterpreter,
) -> float:
    """Result of a non-store operation in iteration ``k``."""
    if op.optype is not OpType.LOAD:
        return apply_op(op, inputs)
    source = reference.reload_source.get(op.op_id)
    if source is None:
        # Plain array load: the synthetic array contents.
        return reference.value(op.op_id, k)
    store_id, distance = source
    src_iter = k - distance
    if src_iter < 0:
        # The matching store lies before the simulated window.
        return reference.value(store_id, src_iter)
    key = (op.symbol or "?", src_iter)
    if key not in memory:
        raise SimulationError(
            f"{op.name} iter {k}: reload before its spill store executed",
            op=op.name,
            iteration=k,
        )
    return memory[key]


__all__ = [
    "PortStats",
    "SimulationError",
    "SimulationReport",
    "execute_kernel",
]
