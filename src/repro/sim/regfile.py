"""Functional model of rotating register files (unified or dual subfiles).

Physical mapping.  The wands-only allocator assigns each loop variant ``v`` a
shift ``o_v`` (see :mod:`repro.regalloc.firstfit`); iteration ``k``'s
instance then lives in physical register ``(k - o_v) mod R`` for its whole
lifetime.  Two placed lifetimes that do not overlap after the shear
transform never collide in a file of ``R = ceil(span / II)`` registers --
the simulator asserts this dynamically by tagging each cell with its owner.

The dual register file is two :class:`RegisterFile` objects; global values
are placed identically in both (consistent duplicated copies), local values
only in their cluster's subfile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regalloc.firstfit import PlacedLifetime


class RegisterFileError(RuntimeError):
    """A dynamic register-file consistency violation (allocation bug)."""


@dataclass
class Cell:
    """One physical register."""

    owner: tuple[int, int] | None = None  # (op_id, iteration)
    value: float = 0.0
    written_at: int = -1


class RegisterFile:
    """One rotating register subfile with owner-tagged cells."""

    def __init__(
        self,
        name: str,
        registers: int,
        placements: dict[int, PlacedLifetime],
        ii: int,
    ) -> None:
        if registers < 0:
            raise ValueError("register count must be non-negative")
        self.name = name
        self.registers = registers
        self.ii = ii
        self.placements = placements
        self.cells = [Cell() for _ in range(max(1, registers))]
        self.reads = 0
        self.writes = 0

    def holds(self, op_id: int) -> bool:
        return op_id in self.placements

    def physical_register(self, op_id: int, iteration: int) -> int:
        """Physical cell of iteration ``iteration``'s instance of a value."""
        placed = self.placements[op_id]
        return (iteration - placed.shift) % max(1, self.registers)

    def write(self, op_id: int, iteration: int, value: float, time: int) -> int:
        """Write an instance into its cell; returns the cell index."""
        if not self.holds(op_id):
            raise RegisterFileError(
                f"{self.name}: value {op_id} is not allocated here"
            )
        reg = self.physical_register(op_id, iteration)
        cell = self.cells[reg]
        cell.owner = (op_id, iteration)
        cell.value = value
        cell.written_at = time
        self.writes += 1
        return reg

    def read(self, op_id: int, iteration: int, time: int) -> float:
        """Read an instance, checking ownership and write-before-read."""
        if not self.holds(op_id):
            raise RegisterFileError(
                f"{self.name}: value {op_id} is not allocated here"
            )
        reg = self.physical_register(op_id, iteration)
        cell = self.cells[reg]
        if cell.owner != (op_id, iteration):
            raise RegisterFileError(
                f"{self.name}: r{reg} holds {cell.owner}, "
                f"expected ({op_id}, {iteration}) at cycle {time} -- "
                "a live register was overwritten"
            )
        if cell.written_at > time:
            raise RegisterFileError(
                f"{self.name}: r{reg} read at {time} before write at "
                f"{cell.written_at}"
            )
        self.reads += 1
        return cell.value


__all__ = ["Cell", "RegisterFile", "RegisterFileError"]
