"""Functional model of rotating register files (unified or dual subfiles).

Physical mapping.  The wands-only allocator assigns each loop variant ``v`` a
shift ``o_v`` (see :mod:`repro.regalloc.firstfit`); iteration ``k``'s
instance then lives in physical register ``(k - o_v) mod R`` for its whole
lifetime.  Two placed lifetimes that do not overlap after the shear
transform never collide in a file of ``R = ceil(span / II)`` registers --
the simulator asserts this dynamically by tagging each cell with its owner.

The dual register file is two :class:`RegisterFile` objects; global values
are placed identically in both (consistent duplicated copies), local values
only in their cluster's subfile.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.regalloc.firstfit import PlacedLifetime


class RegisterFileError(RuntimeError):
    """A dynamic register-file consistency violation (allocation bug).

    Carries structured diagnostics alongside the message so the validate
    layer can report *where* an allocation broke (file, physical register,
    cycle, the owner found vs the owner expected) without parsing text.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str | None = None,
        register: int | None = None,
        op_id: int | None = None,
        iteration: int | None = None,
        cycle: int | None = None,
        expected: object = None,
        observed: object = None,
    ) -> None:
        super().__init__(message)
        self.file = file
        self.register = register
        self.op_id = op_id
        self.iteration = iteration
        self.cycle = cycle
        self.expected = expected
        self.observed = observed


@dataclass(frozen=True)
class OccupancyStats:
    """Observed register occupancy of one file over one execution.

    ``peak`` is the maximum number of simultaneously busy cells -- a cell
    is busy from the write of an instance to that instance's last read --
    and must never exceed the file's claimed register count.  ``touched``
    is the number of distinct physical cells ever written.
    """

    peak: int
    touched: int
    instances: int


@dataclass
class Cell:
    """One physical register."""

    owner: tuple[int, int] | None = None  # (op_id, iteration)
    value: float = 0.0
    written_at: int = -1


class RegisterFile:
    """One rotating register subfile with owner-tagged cells."""

    def __init__(
        self,
        name: str,
        registers: int,
        placements: dict[int, PlacedLifetime],
        ii: int,
    ) -> None:
        if registers < 0:
            raise ValueError("register count must be non-negative")
        self.name = name
        self.registers = registers
        self.ii = ii
        self.placements = placements
        self.cells = [Cell() for _ in range(max(1, registers))]
        self.reads = 0
        self.writes = 0
        #: (op_id, iteration) -> [write time, last access time]; the busy
        #: window of each value instance, for post-hoc occupancy analysis.
        self.instance_windows: dict[tuple[int, int], list[int]] = {}
        self.cells_touched: set[int] = set()

    def holds(self, op_id: int) -> bool:
        return op_id in self.placements

    def physical_register(self, op_id: int, iteration: int) -> int:
        """Physical cell of iteration ``iteration``'s instance of a value."""
        placed = self.placements[op_id]
        return (iteration - placed.shift) % max(1, self.registers)

    def write(self, op_id: int, iteration: int, value: float, time: int) -> int:
        """Write an instance into its cell; returns the cell index."""
        if not self.holds(op_id):
            raise RegisterFileError(
                f"{self.name}: value {op_id} is not allocated here",
                file=self.name,
                op_id=op_id,
                iteration=iteration,
                cycle=time,
            )
        reg = self.physical_register(op_id, iteration)
        cell = self.cells[reg]
        cell.owner = (op_id, iteration)
        cell.value = value
        cell.written_at = time
        self.writes += 1
        self.instance_windows[(op_id, iteration)] = [time, time]
        self.cells_touched.add(reg)
        return reg

    def read(self, op_id: int, iteration: int, time: int) -> float:
        """Read an instance, checking ownership and write-before-read."""
        if not self.holds(op_id):
            raise RegisterFileError(
                f"{self.name}: value {op_id} is not allocated here",
                file=self.name,
                op_id=op_id,
                iteration=iteration,
                cycle=time,
            )
        reg = self.physical_register(op_id, iteration)
        cell = self.cells[reg]
        if cell.owner != (op_id, iteration):
            raise RegisterFileError(
                f"{self.name}: r{reg} holds {cell.owner}, "
                f"expected ({op_id}, {iteration}) at cycle {time} -- "
                "a live register was overwritten",
                file=self.name,
                register=reg,
                op_id=op_id,
                iteration=iteration,
                cycle=time,
                expected=(op_id, iteration),
                observed=cell.owner,
            )
        if cell.written_at > time:
            raise RegisterFileError(
                f"{self.name}: r{reg} read at {time} before write at "
                f"{cell.written_at}",
                file=self.name,
                register=reg,
                op_id=op_id,
                iteration=iteration,
                cycle=time,
                expected=time,
                observed=cell.written_at,
            )
        self.reads += 1
        window = self.instance_windows.get((op_id, iteration))
        if window is not None and time > window[1]:
            window[1] = time
        return cell.value

    def occupancy(self) -> OccupancyStats:
        """Observed occupancy of this execution (sweep over busy windows)."""
        events: list[tuple[int, int]] = []
        for birth, death in self.instance_windows.values():
            events.append((birth, 1))
            events.append((death + 1, -1))
        events.sort()
        live = peak = 0
        for _time, delta in events:
            live += delta
            if live > peak:
                peak = live
        return OccupancyStats(
            peak=peak,
            touched=len(self.cells_touched),
            instances=len(self.instance_windows),
        )


__all__ = ["Cell", "OccupancyStats", "RegisterFile", "RegisterFileError"]
