"""Reference (golden-model) interpreter for loop dataflow.

The cycle-level executor checks every register read against this direct
interpretation of the dependence graph, so a scheduling or allocation bug
(an overwritten live register, a violated dependence) surfaces as a value
mismatch instead of going unnoticed.

Semantics:

* loads without an incoming memory edge read a synthetic array:
  a deterministic, positive value derived from (symbol, iteration);
* loads fed by a store through a memory edge (spill reloads) return the
  value stored ``distance`` iterations earlier;
* loop-carried operands with ``k - distance < 0`` take deterministic
  initial values (the live-in state of the software pipeline's prologue);
* division treats a zero divisor as 1.0 so synthetic dataflow can never
  fault -- the executor uses the same rule.
"""

from __future__ import annotations

import hashlib

from repro.ir.ddg import DependenceGraph, EdgeKind
from repro.ir.operation import Immediate, InvariantRef, Operation, OpType, ValueRef


def _hashed_unit(*key: object) -> float:
    """Deterministic value in [1.0, 2.0) derived from ``key``."""
    digest = hashlib.sha256(repr(key).encode()).digest()
    return 1.0 + int.from_bytes(digest[:4], "big") / 2**32


def array_value(symbol: str, iteration: int) -> float:
    """Synthetic contents of array ``symbol`` at index ``iteration``."""
    return _hashed_unit("array", symbol, iteration)


def invariant_value(name: str) -> float:
    """Value of a loop invariant (general register file)."""
    return _hashed_unit("invariant", name)


def initial_value(op_id: int, iteration: int) -> float:
    """Live-in value of a loop-carried variant for pre-loop iterations."""
    return _hashed_unit("initial", op_id, iteration)


def apply_op(op: Operation, inputs: list[float]) -> float:
    """Arithmetic semantics of one operation."""
    t = op.optype
    if t is OpType.FADD:
        return inputs[0] + inputs[1]
    if t is OpType.FSUB:
        return inputs[0] - inputs[1]
    if t is OpType.FMUL:
        return inputs[0] * inputs[1]
    if t is OpType.FDIV:
        divisor = inputs[1] if inputs[1] != 0.0 else 1.0
        return inputs[0] / divisor
    if t is OpType.FNEG:
        return -inputs[0]
    if t is OpType.FCONV:
        return float(inputs[0])
    if t is OpType.STORE:
        return inputs[0]
    raise ValueError(f"{op.name}: no arithmetic semantics for {t}")


class ReferenceInterpreter:
    """Memoizing evaluator of (operation, iteration) -> value."""

    def __init__(self, graph: DependenceGraph) -> None:
        self.graph = graph
        self._memo: dict[tuple[int, int], float] = {}
        #: load op_id -> (store op_id, distance) for memory-fed loads.
        self.reload_source: dict[int, tuple[int, int]] = {}
        for edge in graph.extra_edges():
            if edge.kind is not EdgeKind.MEMORY:
                continue
            src = graph.op(edge.src)
            dst = graph.op(edge.dst)
            if src.optype is OpType.STORE and dst.optype is OpType.LOAD:
                self.reload_source[dst.op_id] = (src.op_id, edge.distance)

    def value(self, op_id: int, iteration: int) -> float:
        """Value defined (or stored) by ``op_id`` in ``iteration``."""
        if iteration < 0:
            return initial_value(op_id, iteration)
        key = (op_id, iteration)
        if key in self._memo:
            return self._memo[key]
        op = self.graph.op(op_id)
        if op.optype is OpType.LOAD:
            if op.op_id in self.reload_source:
                store_id, distance = self.reload_source[op.op_id]
                result = self.value(store_id, iteration - distance)
            else:
                result = array_value(op.symbol or "?", iteration)
        else:
            inputs = []
            for operand in op.operands:
                if isinstance(operand, ValueRef):
                    inputs.append(
                        self.value(operand.producer, iteration - operand.distance)
                    )
                elif isinstance(operand, InvariantRef):
                    inputs.append(invariant_value(operand.name))
                elif isinstance(operand, Immediate):
                    inputs.append(operand.value)
                else:  # pragma: no cover - exhaustive
                    raise TypeError(f"unknown operand {operand!r}")
            result = apply_op(op, inputs)
        self._memo[key] = result
        return result


__all__ = [
    "ReferenceInterpreter",
    "apply_op",
    "array_value",
    "initial_value",
    "invariant_value",
]
