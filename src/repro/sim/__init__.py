"""Cycle-level kernel simulation: the proof the allocations are real.

The paper's non-consistent dual file (Section 3.1) stores a value in one
subfile -- or both, when it is consumed from both clusters -- without
hardware consistency.  This package *executes* generated kernels against
that semantics: :mod:`~repro.sim.regfile` models unified and dual
register files cell by cell, :mod:`~repro.sim.executor` issues kernel
words cycle by cycle and checks every read against
:mod:`~repro.sim.reference` (a sequential interpreter of the source
loop), so a mis-assigned cluster or a wrongly shared register surfaces
as a concrete wrong value, not a plausible-looking number.

Key entry points: :func:`~repro.sim.executor.execute_kernel` (returns a
:class:`SimulationReport` with per-port traffic), and
:class:`~repro.sim.regfile.RegisterFile`.
"""

from repro.sim.executor import (
    PortStats,
    SimulationError,
    SimulationReport,
    execute_kernel,
)
from repro.sim.reference import (
    ReferenceInterpreter,
    apply_op,
    array_value,
    initial_value,
    invariant_value,
)
from repro.sim.regfile import Cell, RegisterFile, RegisterFileError

__all__ = [
    "Cell",
    "PortStats",
    "ReferenceInterpreter",
    "RegisterFile",
    "RegisterFileError",
    "SimulationError",
    "SimulationReport",
    "apply_op",
    "array_value",
    "execute_kernel",
    "initial_value",
    "invariant_value",
]
