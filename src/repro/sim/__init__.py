"""Cycle-level kernel simulator: functional register files + verification."""

from repro.sim.executor import (
    PortStats,
    SimulationError,
    SimulationReport,
    execute_kernel,
)
from repro.sim.reference import (
    ReferenceInterpreter,
    apply_op,
    array_value,
    initial_value,
    invariant_value,
)
from repro.sim.regfile import Cell, RegisterFile, RegisterFileError

__all__ = [
    "Cell",
    "PortStats",
    "ReferenceInterpreter",
    "RegisterFile",
    "RegisterFileError",
    "SimulationError",
    "SimulationReport",
    "apply_op",
    "array_value",
    "execute_kernel",
    "initial_value",
    "invariant_value",
]
