"""Parallel sweep engine: cached, multiprocess batch evaluation.

The engine turns every experiment into data: declarative
:class:`~repro.engine.jobs.EvalJob` specs with deterministic content
hashes, executed through a :class:`~repro.engine.pool.Engine` that fronts a
:class:`~repro.engine.cache.ResultCache` (on-disk JSON + in-process LRU)
and a :mod:`multiprocessing` worker pool.  The figure/table drivers of
:mod:`repro.experiments` all route their per-point evaluation through here,
and :mod:`repro.engine.sweep` opens the same machinery to arbitrary
user-defined scenario grids (``python -m repro sweep``).
"""

from repro.engine.cache import CacheStats, ResultCache, default_cache_dir
from repro.engine.jobs import (
    ENGINE_SCHEMA_VERSION,
    EvalJob,
    EvalResult,
    PressureResult,
    evaluate_job,
    execute_job,
    graph_fingerprint,
    loop_fingerprint,
    machine_fingerprint,
    pressure_job,
)
from repro.engine.pool import Engine, default_workers, run_jobs, serial_engine
from repro.engine.sweep import (
    NAMED_SWEEPS,
    SweepOutcome,
    SweepSpec,
    build_points,
    format_outcome,
    named_sweep,
    run_sweep,
)

__all__ = [
    "CacheStats",
    "ENGINE_SCHEMA_VERSION",
    "Engine",
    "EvalJob",
    "EvalResult",
    "NAMED_SWEEPS",
    "PressureResult",
    "ResultCache",
    "SweepOutcome",
    "SweepSpec",
    "build_points",
    "default_cache_dir",
    "default_workers",
    "evaluate_job",
    "execute_job",
    "format_outcome",
    "graph_fingerprint",
    "loop_fingerprint",
    "machine_fingerprint",
    "named_sweep",
    "pressure_job",
    "run_jobs",
    "run_sweep",
    "serial_engine",
]
