"""On-disk artifact store for job results, with an in-process LRU on top.

Layout: one JSON file per result under ``<dir>/<key[:2]>/<key>.json`` (the
two-character shard keeps directories small at paper scale).  Every file
records the schema version and its own key; a file that fails to parse, was
written under another schema, or does not match its name is treated as a
miss, deleted, and counted in :attr:`CacheStats.corrupt` -- a damaged cache
degrades to recomputation, never to wrong numbers.

Writes go through a temp file + :func:`os.replace` so a crash mid-write
cannot leave a truncated entry behind, and concurrent writers of the same
key (e.g. two sweeps racing) simply last-write-win identical content.

The in-process LRU makes repeated points *within* one run free even when
the disk cache is disabled; it is bounded so paper-scale sweeps cannot
balloon resident memory.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.jobs import (
    ENGINE_SCHEMA_VERSION,
    EvalJob,
    JobResult,
    result_from_dict,
    result_to_dict,
    source_fingerprint,
)

DEFAULT_MEMORY_ENTRIES = 65536


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-engine``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }

    def summary(self) -> str:
        """The one-line form every CLI surface prints."""
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate)"
        )


@dataclass
class ResultCache:
    """Job-keyed result store: bounded in-memory LRU over on-disk JSON.

    ``directory=None`` disables the disk tier (memory-only cache).
    """

    directory: Path | None = None
    max_memory_entries: int = DEFAULT_MEMORY_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict[str, JobResult] = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        # Directory creation is deferred to the first put(): read-only uses
        # (``cache show`` on a mistyped path) must not write anything.
        if self.directory is not None:
            self.directory = Path(self.directory)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def _remember(self, key: str, result: JobResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, job: EvalJob) -> JobResult | None:
        """The cached result of ``job``, or ``None`` on a miss."""
        key = job.key
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return self._memory[key]
        if self.directory is not None:
            result = self._read_disk(key)
            if result is not None:
                self._remember(key, result)
                self.stats.hits += 1
                return result
        self.stats.misses += 1
        return None

    def _read_disk(self, key: str) -> JobResult | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            # Missing entry or transient I/O failure: a plain miss.  The
            # file (if any) may be perfectly valid -- don't delete it.
            return None
        try:
            payload = json.loads(text)
            if payload["schema"] != ENGINE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            if payload["key"] != key:
                raise ValueError("key mismatch")
            return result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # read-only cache: leave the bad entry be
                pass
            return None

    def put(self, job: EvalJob, result: JobResult) -> None:
        """Store a freshly computed result in both tiers."""
        key = job.key
        self._remember(key, result)
        if self.directory is None:
            self.stats.stores += 1
            return
        payload = json.dumps(
            {
                "schema": ENGINE_SCHEMA_VERSION,
                "source": source_fingerprint(),
                "key": key,
                "kind": job.kind,
                "result": result_to_dict(result),
            }
        )
        # An unwritable cache (read-only dir, disk full, path component is
        # a file) must degrade to recomputation, never abort the run.
        tmp = None
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
            self.stats.stores += 1  # only what actually reached disk
        except OSError:
            if tmp is not None:
                try:
                    Path(tmp).unlink(missing_ok=True)
                except OSError:  # pragma: no cover - doubly broken dir
                    pass

    # ------------------------------------------------------------------
    def _disk_files(self) -> list[Path]:
        """Cache entries on disk, strictly matching the layout _path writes.

        The shape check (2-hex shard dir, 64-hex name) keeps clear() from
        ever touching foreign files under a mistyped ``--cache-dir``.
        """
        if self.directory is None or not self.directory.exists():
            return []
        hexdigits = set("0123456789abcdef")
        return sorted(
            p
            for p in self.directory.glob("*/*.json")
            if len(p.parent.name) == 2
            and set(p.parent.name) <= hexdigits
            and len(p.stem) == 64
            and set(p.stem) <= hexdigits
        )

    def entry_count(self) -> int:
        """Number of results on disk (memory-only entries excluded)."""
        return len(self._disk_files())

    def total_bytes(self) -> int:
        total = 0
        for p in self._disk_files():
            try:
                total += p.stat().st_size
            except OSError:  # unlinked by a concurrent clear/recompute
                continue
        return total

    def clear(self) -> int:
        """Drop every entry from both tiers; returns files removed."""
        self._memory.clear()
        files = self._disk_files()
        for path in files:
            path.unlink(missing_ok=True)
        return len(files)

    def prune(self) -> int:
        """Remove entries no *current* job can ever look up again.

        Entries are keyed by schema + source fingerprint, so files written
        under an older schema or an edited codebase are orphaned -- no
        lookup from this checkout will find (and so retire) them.  Only
        invoked explicitly (``python -m repro cache prune``): another
        checkout sharing the cache directory may still be using those
        entries, so sweeping them automatically would thrash.  Returns the
        number of files removed; valid current entries are untouched.
        """
        current = source_fingerprint()
        removed = 0
        for path in self._disk_files():
            try:
                text = path.read_text()
            except OSError:
                continue  # transient I/O: leave the file alone
            try:
                payload = json.loads(text)
                if (
                    payload["schema"] == ENGINE_SCHEMA_VERSION
                    and payload.get("source") == current
                ):
                    continue
            except (ValueError, KeyError, TypeError):
                pass  # malformed: orphaned either way
            try:
                path.unlink(missing_ok=True)
                removed += 1
            except OSError:  # pragma: no cover - read-only cache
                continue
        return removed

    def describe(self) -> str:
        """One-paragraph human summary for the ``cache show`` CLI."""
        where = str(self.directory) if self.directory else "(memory only)"
        lines = [
            f"cache directory : {where}",
            f"entries on disk : {self.entry_count()}",
            f"size on disk    : {self.total_bytes() / 1024:.1f} KiB",
            f"schema version  : {ENGINE_SCHEMA_VERSION}",
        ]
        if self.stats.lookups:
            lines.append(f"this process    : {self.stats.summary()}")
        return "\n".join(lines)


__all__ = [
    "CacheStats",
    "DEFAULT_MEMORY_ENTRIES",
    "ResultCache",
    "default_cache_dir",
]
