"""On-disk artifact store for job results, with an in-process LRU on top.

Layout: one JSON file per result under ``<dir>/<key[:2]>/<key>.json`` (the
two-character shard keeps directories small at paper scale).  Every file
records the schema version and its own key; a file that fails to parse, was
written under another schema, or does not match its name is treated as a
miss, deleted, and counted in :attr:`CacheStats.corrupt` -- a damaged cache
degrades to recomputation, never to wrong numbers.

The disk tier is a **shared backend**: any number of processes (sweep
workers, ``repro serve`` shards, separate CLI invocations, restarts) may
read and write the same directory concurrently.  The concurrency contract
rests on three properties:

* **Atomic publication.**  Writes land in a same-directory temp file and
  are published with :func:`os.replace`, so a reader sees either the old
  entry, no entry, or the complete new entry -- never a torn one.  A crash
  mid-write leaves only a ``.tmp-*`` orphan (reclaimed by
  :meth:`ResultCache.clean_stale_tmp`), not a truncated entry.
* **Content-addressed keys.**  Concurrent writers of one key are writing
  identical bytes (the key fingerprints the computation), so last-write-
  wins is not a race -- both replicas published the same result.
* **Locked maintenance.**  Mutating sweeps (:meth:`ResultCache.prune`,
  :meth:`ResultCache.evict_over_size`, :meth:`ResultCache.clear`) take an
  advisory inter-process file lock so two long-lived replicas pruning the
  same directory do not duplicate (or interleave) the work; reads and
  writes never lock.

The in-process LRU makes repeated points *within* one run free even when
the disk cache is disabled; it is bounded so paper-scale sweeps cannot
balloon resident memory.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
import time
from collections import OrderedDict
from typing import Iterator
from dataclasses import dataclass, field
from pathlib import Path

from repro.engine.jobs import (
    ENGINE_SCHEMA_VERSION,
    EvalJob,
    JobResult,
    result_from_dict,
    result_to_dict,
    source_fingerprint,
)

DEFAULT_MEMORY_ENTRIES = 65536

#: A ``.tmp-*`` file older than this is a crash leftover, not an in-flight
#: write (writes are milliseconds), and is safe to reclaim.
STALE_TMP_SECONDS = 3600.0


@contextlib.contextmanager
def _maintenance_lock(directory: Path) -> "Iterator[None]":
    """Advisory inter-process lock for cache maintenance sweeps.

    Best-effort by design: on platforms without :mod:`fcntl` (or on
    filesystems rejecting ``flock``) maintenance proceeds unlocked --
    every individual deletion is already safe (``missing_ok``), the lock
    only prevents two replicas from duplicating a sweep's work.
    """
    try:
        import fcntl
    except ImportError:  # pragma: no cover - non-POSIX platform
        yield
        return
    if not directory.is_dir():  # nothing to maintain, nothing to create
        yield
        return
    lock_path = directory / ".maintenance.lock"
    try:
        handle = open(lock_path, "a+")
    except OSError:  # read-only cache: sweep unlocked (it will no-op)
        yield
        return
    try:
        try:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - flock-less filesystem
            pass
        yield
    finally:
        handle.close()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-engine``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-engine"


@dataclass
class CacheStats:
    """Hit/miss accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    corrupt: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 4),
        }

    def summary(self) -> str:
        """The one-line form every CLI surface prints."""
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({100 * self.hit_rate:.1f}% hit rate)"
        )


@dataclass
class ResultCache:
    """Job-keyed result store: bounded in-memory LRU over on-disk JSON.

    ``directory=None`` disables the disk tier (memory-only cache).
    """

    directory: Path | None = None
    max_memory_entries: int = DEFAULT_MEMORY_ENTRIES
    stats: CacheStats = field(default_factory=CacheStats)
    _memory: OrderedDict[str, JobResult] = field(default_factory=OrderedDict)

    def __post_init__(self) -> None:
        # Directory creation is deferred to the first put(): read-only uses
        # (``cache show`` on a mistyped path) must not write anything.
        if self.directory is not None:
            self.directory = Path(self.directory)

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.directory is not None
        return self.directory / key[:2] / f"{key}.json"

    def _remember(self, key: str, result: JobResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, job: EvalJob) -> JobResult | None:
        """The cached result of ``job``, or ``None`` on a miss."""
        key = job.key
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            return self._memory[key]
        if self.directory is not None:
            result = self._read_disk(key)
            if result is not None:
                self._remember(key, result)
                self.stats.hits += 1
                return result
        self.stats.misses += 1
        return None

    def _read_disk(self, key: str) -> JobResult | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            # Missing entry or transient I/O failure: a plain miss.  The
            # file (if any) may be perfectly valid -- don't delete it.
            return None
        try:
            payload = json.loads(text)
            if payload["schema"] != ENGINE_SCHEMA_VERSION:
                raise ValueError("schema mismatch")
            if payload["key"] != key:
                raise ValueError("key mismatch")
            return result_from_dict(payload["result"])
        except (ValueError, KeyError, TypeError):
            self.stats.corrupt += 1
            try:
                path.unlink(missing_ok=True)
            except OSError:  # read-only cache: leave the bad entry be
                pass
            return None

    def put(self, job: EvalJob, result: JobResult) -> None:
        """Store a freshly computed result in both tiers."""
        key = job.key
        self._remember(key, result)
        if self.directory is None:
            self.stats.stores += 1
            return
        payload = json.dumps(
            {
                "schema": ENGINE_SCHEMA_VERSION,
                "source": source_fingerprint(),
                "key": key,
                "kind": job.kind,
                "result": result_to_dict(result),
            }
        )
        # An unwritable cache (read-only dir, disk full, path component is
        # a file) must degrade to recomputation, never abort the run.
        tmp = None
        try:
            path = self._path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp, path)
            self.stats.stores += 1  # only what actually reached disk
        except OSError:
            if tmp is not None:
                try:
                    Path(tmp).unlink(missing_ok=True)
                except OSError:  # pragma: no cover - doubly broken dir
                    pass

    # ------------------------------------------------------------------
    def _disk_files(self) -> list[Path]:
        """Cache entries on disk, strictly matching the layout _path writes.

        The shape check (2-hex shard dir, 64-hex name) keeps clear() from
        ever touching foreign files under a mistyped ``--cache-dir``.
        """
        if self.directory is None or not self.directory.exists():
            return []
        hexdigits = set("0123456789abcdef")
        return sorted(
            p
            for p in self.directory.glob("*/*.json")
            if len(p.parent.name) == 2
            and set(p.parent.name) <= hexdigits
            and len(p.stem) == 64
            and set(p.stem) <= hexdigits
        )

    def entry_count(self) -> int:
        """Number of results on disk (memory-only entries excluded)."""
        return len(self._disk_files())

    def total_bytes(self) -> int:
        total = 0
        for p in self._disk_files():
            try:
                total += p.stat().st_size
            except OSError:  # unlinked by a concurrent clear/recompute
                continue
        return total

    def disk_usage(self) -> dict:
        """Entry count and byte total of the disk tier, JSON-shaped.

        The health endpoint and ``repro cache stats`` both read this, so
        operators and the load harness see one set of numbers.
        """
        entries = 0
        total = 0
        for p in self._disk_files():
            try:
                total += p.stat().st_size
            except OSError:  # unlinked by a concurrent clear/evict
                continue
            entries += 1
        return {
            "directory": str(self.directory) if self.directory else None,
            "entries": entries,
            "bytes": total,
        }

    def clear(self) -> int:
        """Drop every entry from both tiers; returns files removed."""
        self._memory.clear()
        if self.directory is None:
            return 0
        with _maintenance_lock(self.directory):
            files = self._disk_files()
            for path in files:
                path.unlink(missing_ok=True)
        return len(files)

    def evict_over_size(self, max_bytes: int) -> int:
        """Evict least-recently-written entries until the tier fits.

        Long-lived serve replicas call this (via ``repro cache prune
        --max-bytes``) to bound disk growth; entries go oldest-mtime
        first, so the hottest (most recently re-written or freshly
        computed) results survive.  Returns the number of files removed.
        Safe against concurrent replicas: the sweep holds the maintenance
        lock, and a file deleted under us is simply skipped.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if self.directory is None:
            return 0
        removed = 0
        with _maintenance_lock(self.directory):
            self.clean_stale_tmp()
            aged: list[tuple[float, int, Path]] = []
            total = 0
            for path in self._disk_files():
                try:
                    stat = path.stat()
                except OSError:
                    continue
                aged.append((stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            aged.sort()
            for _mtime, size, path in aged:
                if total <= max_bytes:
                    break
                try:
                    path.unlink(missing_ok=True)
                except OSError:  # pragma: no cover - read-only cache
                    continue
                total -= size
                removed += 1
        return removed

    def clean_stale_tmp(self, max_age: float = STALE_TMP_SECONDS) -> int:
        """Reclaim ``.tmp-*`` orphans left by writers that crashed mid-put.

        A healthy write holds its temp file for milliseconds, so anything
        older than ``max_age`` is debris.  Returns files removed.
        """
        if self.directory is None or not self.directory.exists():
            return 0
        cutoff = time.time() - max_age
        removed = 0
        for path in self.directory.glob("*/.tmp-*"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink(missing_ok=True)
                    removed += 1
            except OSError:  # raced with its writer or another cleaner
                continue
        return removed

    def prune(self) -> int:
        """Remove entries no *current* job can ever look up again.

        Entries are keyed by schema + source fingerprint, so files written
        under an older schema or an edited codebase are orphaned -- no
        lookup from this checkout will find (and so retire) them.  Only
        invoked explicitly (``python -m repro cache prune``): another
        checkout sharing the cache directory may still be using those
        entries, so sweeping them automatically would thrash.  Returns the
        number of files removed; valid current entries are untouched.
        """
        if self.directory is None:
            return 0
        current = source_fingerprint()
        removed = 0
        with _maintenance_lock(self.directory):
            self.clean_stale_tmp()
            for path in self._disk_files():
                try:
                    text = path.read_text()
                except OSError:
                    continue  # transient I/O: leave the file alone
                try:
                    payload = json.loads(text)
                    if (
                        payload["schema"] == ENGINE_SCHEMA_VERSION
                        and payload.get("source") == current
                    ):
                        continue
                except (ValueError, KeyError, TypeError):
                    pass  # malformed: orphaned either way
                try:
                    path.unlink(missing_ok=True)
                    removed += 1
                except OSError:  # pragma: no cover - read-only cache
                    continue
        return removed

    def describe(self) -> str:
        """One-paragraph human summary for the ``cache show`` CLI."""
        where = str(self.directory) if self.directory else "(memory only)"
        lines = [
            f"cache directory : {where}",
            f"entries on disk : {self.entry_count()}",
            f"size on disk    : {self.total_bytes() / 1024:.1f} KiB",
            f"schema version  : {ENGINE_SCHEMA_VERSION}",
        ]
        if self.stats.lookups:
            lines.append(f"this process    : {self.stats.summary()}")
        return "\n".join(lines)


__all__ = [
    "CacheStats",
    "DEFAULT_MEMORY_ENTRIES",
    "STALE_TMP_SECONDS",
    "ResultCache",
    "default_cache_dir",
]
