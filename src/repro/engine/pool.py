"""Batch job execution: cache lookup, multiprocess dispatch, ordered results.

:func:`run_jobs` is the engine's core primitive.  It resolves every job
against the cache, ships the misses to a :mod:`multiprocessing` pool in
chunks, stitches the results back in job order, and writes fresh results
through to the cache.  ``workers=0`` executes everything serially in the
calling process -- bit-identical results, one stack to debug.

The :class:`Engine` facade bundles a worker count and a shared cache so the
experiment drivers can stay declarative: they build jobs and call
:meth:`Engine.map`.  Identical points recur constantly across drivers
(Figure 7 re-measures Figure 6's grid; Figure 9 re-runs Figure 8's), so a
shared engine collapses that duplication even with the disk cache disabled.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Sequence

from dataclasses import replace as _replace

from repro import kernel
from repro.analysis.performance import ModelRun
from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    EvalJob,
    EvalResult,
    JobResult,
    PressureResult,
    batch_key,
    evaluate_job,
    execute_batch,
    execute_job,
    pressure_job,
)
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig

#: Callback signature: ``progress(done, total)`` after every finished job.
ProgressFn = Callable[[int, int], None]

#: Callback signature: ``on_result(index, job, result)`` as each job's
#: result lands (cache hits first, then computed jobs in completion
#: order).  The serve front-end's streaming sweeps hang off this.
ResultFn = Callable[[int, EvalJob, JobResult], None]


def default_workers() -> int:
    """Worker-count default: one process per core, at least one."""
    return max(1, os.cpu_count() or 1)


def _execute_chunk(
    chunk: list[tuple[int, EvalJob]],
) -> list[tuple[int, JobResult]]:
    """Execute one chunk of (index, job) pairs inside a worker process.

    Chunked dispatch is the engine's IPC batching: the parent ships one
    pickled chunk per round trip instead of one job, so the shared machine
    and loop objects within a chunk are pickled once (pickle memoizes
    repeated objects within a payload), and the worker's process-wide
    artifact store serves the chunk's structurally related jobs (the same
    loop under several models/budgets rides in one chunk) without re-keying
    across IPC boundaries.  Results return as one message per chunk, too.
    """
    return [(index, execute_job(job)) for index, job in chunk]


def _group_misses(
    misses: list[tuple[int, EvalJob]],
) -> list[list[tuple[int, EvalJob]]]:
    """Group misses by :func:`batch_key`, preserving first-seen order.

    Each group is one loop's (sub)grid: every (model, budget, estimator,
    kind) point of one graph x machine x policy-knob combination, evaluated
    against one shared :class:`repro.kernel.batch.LoopChain`.
    """
    groups: dict[tuple, list[tuple[int, EvalJob]]] = {}
    for index, job in misses:
        groups.setdefault(batch_key(job), []).append((index, job))
    return list(groups.values())


def _batch_chunks(
    misses: list[tuple[int, EvalJob]], chunksize: int
) -> list[list[list[tuple[int, EvalJob]]]]:
    """Pack whole batch groups into chunks of at least ``chunksize`` jobs.

    Groups are never split across workers (a split group would recompute
    the shared chain on both sides), so a chunk is a list of groups and
    the effective chunk size can exceed ``chunksize`` by one group.
    """
    chunks: list[list[list[tuple[int, EvalJob]]]] = []
    current: list[list[tuple[int, EvalJob]]] = []
    count = 0
    for group in _group_misses(misses):
        current.append(group)
        count += len(group)
        if count >= chunksize:
            chunks.append(current)
            current = []
            count = 0
    if current:
        chunks.append(current)
    return chunks


def _execute_batch_chunk(
    chunk: list[list[tuple[int, EvalJob]]],
) -> list[tuple[int, JobResult]]:
    """Worker-side twin of :func:`_execute_chunk` for grouped dispatch:
    one shared chain per group, one IPC round per chunk of groups."""
    out: list[tuple[int, JobResult]] = []
    for group in chunk:
        results = execute_batch([job for _index, job in group])
        out.extend(
            (index, result)
            for (index, _job), result in zip(group, results)
        )
    return out


def _relabel(job: EvalJob, result: JobResult) -> JobResult:
    """Stamp the requesting loop's name onto a shared result.

    Keys deliberately exclude names, so a cache hit (or in-batch dedup) can
    serve a result computed for a structurally identical but differently
    named loop; the numbers transfer, the label must not.
    """
    if result.loop_name != job.loop.name:
        return _replace(result, loop_name=job.loop.name)
    return result


def run_jobs(
    jobs: Sequence[EvalJob],
    workers: int | None = None,
    cache: ResultCache | None = None,
    chunksize: int | None = None,
    progress: ProgressFn | None = None,
    pool_factory: "Callable[[], multiprocessing.pool.Pool | None] | None" = None,
    cached_flags: list[bool] | None = None,
    on_result: ResultFn | None = None,
) -> list[JobResult]:
    """Execute ``jobs`` and return their results in the same order.

    ``workers=None`` uses one process per core; ``workers=0`` (or a single
    remaining miss) runs serially in-process.  Cached results are never
    re-dispatched.  Cache misses are shipped to the workers in *chunks* of
    ``chunksize`` jobs -- one IPC round (and one pickle payload, with shared
    loop/machine objects deduplicated by the pickler) per chunk instead of
    per job; the default splits the misses four ways per worker.
    ``pool_factory`` lets a caller lend a long-lived pool:
    it is invoked only once cache misses actually require workers (an
    all-hits warm run must not pay worker startup), and a pool it returns
    is used without being closed.

    ``cached_flags``, when given, is filled (in place, one bool per job)
    with each job's provenance: ``True`` for results served without fresh
    computation *for that position* -- cache hits and in-batch duplicates
    -- ``False`` for positions that actually ran the pipeline.  The serve
    front-end's per-request ``cached`` field reads this.  ``on_result``
    fires per finished position (see :data:`ResultFn`).
    """
    if workers is None:
        workers = default_workers()
    if workers < 0:
        raise ValueError("workers must be >= 0")

    total = len(jobs)
    results: list[JobResult | None] = [None] * total
    if cached_flags is not None:
        # Positions start as "served from cache"; finish() flips the ones
        # that actually computed.  Hits and duplicates stay True.
        cached_flags[:] = [True] * total
    misses: list[tuple[int, EvalJob]] = []
    seen_keys: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []  # (index, first index with key)
    for index, job in enumerate(jobs):
        # In-batch duplicates of a pending miss resolve by sharing, before
        # the cache is consulted -- they are neither hits nor misses.
        first = seen_keys.get(job.key)
        if first is not None:
            duplicates.append((index, first))
            continue
        cached = cache.get(job) if cache is not None else None
        if cached is not None:
            results[index] = _relabel(job, cached)
            if on_result is not None:
                on_result(index, job, results[index])
            continue
        seen_keys[job.key] = index
        misses.append((index, job))

    done = total - len(misses) - len(duplicates)
    if progress is not None and done:
        progress(done, total)

    def finish(
        index: int, job: EvalJob, result: JobResult, fresh: bool = True
    ) -> None:
        nonlocal done
        results[index] = _relabel(job, result)
        if fresh:
            if cache is not None:
                cache.put(job, result)
            if cached_flags is not None:
                cached_flags[index] = False
        done += 1
        if on_result is not None:
            on_result(index, job, results[index])
        if progress is not None:
            progress(done, total)

    batched = kernel.batch_enabled()
    # A one-worker pool would only add IPC overhead; run in-process.
    if workers <= 1 or len(misses) <= 1:
        if batched and misses:
            for group in _group_misses(misses):
                group_results = execute_batch([job for _i, job in group])
                for (index, job), result in zip(group, group_results):
                    finish(index, job, result)
        else:
            for index, job in misses:
                finish(index, job, execute_job(job))
    else:
        workers = min(workers, len(misses))
        if chunksize is None:
            chunksize = max(1, len(misses) // (workers * 4))
        # One IPC round per chunk of jobs, not per job: see _execute_chunk.
        # Under the batch tier a chunk is whole per-loop groups instead of
        # a flat job slice, so each loop's chain is built exactly once.
        if batched:
            chunks = _batch_chunks(misses, chunksize)
            executor = _execute_batch_chunk
        else:
            chunks = [
                misses[lo : lo + chunksize]
                for lo in range(0, len(misses), chunksize)
            ]
            executor = _execute_chunk
        shared = pool_factory() if pool_factory is not None else None
        if shared is not None:
            for batch in shared.imap_unordered(executor, chunks):
                for index, result in batch:
                    finish(index, jobs[index], result)
        else:
            with multiprocessing.Pool(processes=workers) as ephemeral:
                for batch in ephemeral.imap_unordered(executor, chunks):
                    for index, result in batch:
                        finish(index, jobs[index], result)

    for index, first in duplicates:
        finish(index, jobs[index], results[first], fresh=False)
    return results  # type: ignore[return-value]


@dataclass
class Engine:
    """A worker pool plus a result cache, shared across drivers.

    ``workers=0`` gives the serial debugging engine; ``cache=None`` a
    stateless one.  :func:`serial_engine` builds the common in-memory
    default the drivers fall back to when called without an engine.

    The worker pool is created lazily on the first :meth:`map` that has
    cache misses to execute (an all-hits warm run never spawns workers)
    and reused for the engine's lifetime -- the experiment runner issues
    dozens of map calls, and paying worker startup (a full interpreter +
    import under the spawn start method) per call would swamp them.  Call
    :meth:`close` (or use the engine as a context manager) to release the
    workers early; they die with the parent process regardless.
    """

    workers: int | None = None
    cache: ResultCache | None = None
    progress: ProgressFn | None = None
    #: Per-result hook (see :data:`ResultFn`); a per-call ``on_result``
    #: passed to :meth:`map` takes precedence for that call.
    on_result: ResultFn | None = None
    jobs_run: int = field(default=0, init=False)
    _pool: "multiprocessing.pool.Pool | None" = field(
        default=None, init=False, repr=False
    )

    def _shared_pool(self) -> "multiprocessing.pool.Pool | None":
        workers = default_workers() if self.workers is None else self.workers
        if workers <= 1:
            return None
        if self._pool is None:
            self._pool = multiprocessing.Pool(processes=workers)
        return self._pool

    def cache_summary(self) -> str | None:
        """One-line hit/miss summary, or ``None`` if nothing was looked up.

        Shared by the runner's trailing Engine section and the report's
        provenance footer, so both always agree on the numbers.
        """
        if self.cache is not None and self.cache.stats.lookups:
            return self.cache.stats.summary()
        return None

    def close(self) -> None:
        """Shut the worker pool down; the engine stays usable (re-spawns)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def map(
        self,
        jobs: Sequence[EvalJob],
        cached_flags: list[bool] | None = None,
        on_result: ResultFn | None = None,
    ) -> list[JobResult]:
        """Execute jobs (cached, pooled) preserving order.

        ``cached_flags``/``on_result`` pass straight through to
        :func:`run_jobs` (per-position cache provenance, per-result hook).
        """
        self.jobs_run += len(jobs)
        return run_jobs(
            jobs,
            workers=self.workers,
            cache=self.cache,
            progress=self.progress,
            pool_factory=self._shared_pool,
            cached_flags=cached_flags,
            on_result=on_result if on_result is not None else self.on_result,
        )

    # ------------------------------------------------------------------
    # Driver-facing conveniences
    # ------------------------------------------------------------------
    def pressure_reports(
        self,
        loops: Sequence[Loop],
        machine: MachineConfig,
        swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    ) -> list[PressureResult]:
        """Unlimited-register measurements for a workload (Figures 6/7)."""
        return self.map(
            [
                pressure_job(loop, machine, swap_estimator=swap_estimator)
                for loop in loops
            ]
        )

    def run_model(
        self,
        loops: Sequence[Loop],
        machine: MachineConfig,
        model: Model,
        register_budget: int | None,
        swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
        victim_policy: str = "longest",
        pressure_strategy: str = "spill",
        ii_escalation: str = "increment",
    ) -> ModelRun:
        """Engine-backed equivalent of :func:`repro.analysis.run_model`."""
        evaluations: list[EvalResult] = self.map(
            [
                evaluate_job(
                    loop,
                    machine,
                    model,
                    register_budget,
                    swap_estimator=swap_estimator,
                    victim_policy=victim_policy,
                    pressure_strategy=pressure_strategy,
                    ii_escalation=ii_escalation,
                )
                for loop in loops
            ]
        )
        return ModelRun(
            model=model,
            machine=machine,
            register_budget=register_budget,
            evaluations=tuple(evaluations),
        )


def serial_engine() -> Engine:
    """The implicit engine of drivers called without one.

    Serial and memory-cached: identical numbers to direct evaluation, but
    repeated points within the call (e.g. the Ideal baseline reused by every
    Figure 8 budget) still collapse.
    """
    return Engine(workers=0, cache=ResultCache(directory=None))


__all__ = [
    "Engine",
    "ProgressFn",
    "ResultFn",
    "default_workers",
    "run_jobs",
    "serial_engine",
]
