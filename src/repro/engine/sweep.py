"""Cartesian scenario sweeps over the engine.

A :class:`SweepSpec` names a grid -- suite sizes x seeds x machine shapes
(latency, cluster count) x models x register-file sizes -- and compiles it
to a flat list of engine jobs with per-point metadata.  :func:`run_sweep`
executes the grid through an :class:`~repro.engine.pool.Engine` and folds
the results into per-configuration aggregates, so a sweep is useful on its
own and not just as raw points.

``NAMED_SWEEPS`` holds the grids users reach for first (these back the
``python -m repro sweep`` CLI); arbitrary grids are one ``SweepSpec(...)``
away -- see ``examples/sweep_models.py``.

Sweeps inherit the engine's grid batching for free: under the default
``REPRO_KERNELS=batch`` tier, ``run_jobs`` groups a sweep's cache misses
per loop and walks each group's points over one shared
:class:`repro.kernel.batch.LoopChain` (schedule/lifetime artifacts computed
once per loop, not once per point).  The job list built here -- its
composition and order -- is unchanged by batching; only execution is
grouped, and results come back in build order regardless.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.analysis.reporting import format_table
from repro.core.models import Model
from repro.engine.cache import CacheStats
from repro.engine.jobs import (
    EVALUATE,
    PRESSURE,
    EvalJob,
    EvalResult,
    JobResult,
    PressureResult,
    evaluate_job,
    pressure_job,
)
from repro.engine.pool import Engine, ProgressFn
from repro.machine.config import MachineConfig, clustered_config, paper_config
from repro.pipeline.pipelines import PRESSURE_STRATEGIES
from repro.pipeline.policies import (
    SPILL_POLICIES,
    get_escalation,
    get_policy,
)
from repro.workloads.suite import DEFAULT_SEED, perfect_club_like


def _machine_for(latency: int, clusters: int) -> MachineConfig:
    """The sweep grid's machine: the paper's at 2 clusters, generalized else."""
    if clusters == 2:
        return paper_config(latency)
    return clustered_config(clusters, latency)


@dataclass(frozen=True)
class SweepSpec:
    """A declarative experiment grid.

    The kind picks the measurement: ``"pressure"`` ignores ``models`` and
    ``budgets`` (every pressure job measures all three models with no
    budget); ``"evaluate"`` runs the spill pipeline per (model, budget,
    victim policy) and always adds one Ideal baseline per machine so
    aggregates can normalize.

    ``victim_policies``/``pressure_strategy``/``ii_escalation`` name the
    pipeline's pluggable strategies (see :mod:`repro.pipeline.policies`);
    they ride in every job fingerprint, so sweeping them never collides
    with cached results of other configurations.
    """

    name: str = "custom"
    kind: str = EVALUATE
    n_loops: int = 40
    seeds: tuple[int, ...] = (DEFAULT_SEED,)
    latencies: tuple[int, ...] = (3, 6)
    cluster_counts: tuple[int, ...] = (2,)
    budgets: tuple[int, ...] = (32, 64)
    models: tuple[Model, ...] = (
        Model.UNIFIED,
        Model.PARTITIONED,
        Model.SWAPPED,
    )
    victim_policies: tuple[str, ...] = ("longest",)
    pressure_strategy: str = "spill"
    ii_escalation: str = "increment"
    include_kernels: bool = True

    def __post_init__(self) -> None:
        if self.kind not in (PRESSURE, EVALUATE):
            raise ValueError(f"unknown sweep kind {self.kind!r}")
        if self.n_loops < 1:
            raise ValueError("n_loops must be positive")
        if not self.victim_policies:
            raise ValueError("victim_policies must not be empty")
        for policy in self.victim_policies:
            get_policy(policy)
        get_escalation(self.ii_escalation)
        if self.pressure_strategy not in PRESSURE_STRATEGIES:
            raise ValueError(
                f"unknown pressure strategy {self.pressure_strategy!r}"
            )

    def machines(self) -> list[MachineConfig]:
        return [
            _machine_for(latency, clusters)
            for latency in self.latencies
            for clusters in self.cluster_counts
        ]

    def describe(self) -> str:
        models = ",".join(m.value for m in self.models)
        grid = (
            f"{len(self.seeds)} seed(s) x {self.n_loops} loops x "
            f"{len(self.machines())} machine(s)"
        )
        if self.kind == EVALUATE:
            grid += (
                f" x {len(self.budgets)} budget(s) x [{models}]"
                " + ideal baseline"
            )
            if len(self.victim_policies) > 1:
                grid += f" x policies [{','.join(self.victim_policies)}]"
        return f"sweep {self.name!r} ({self.kind}): {grid}"


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the job plus the coordinates that produced it."""

    job: EvalJob
    seed: int
    machine: str
    latency: int
    clusters: int
    model: str | None = None
    budget: int | None = None
    #: Victim policy of evaluate points (None for pressure/Ideal points).
    policy: str | None = None
    result: JobResult | None = None


@dataclass
class SweepOutcome:
    """Executed sweep: resolved points plus throughput and cache numbers."""

    spec: SweepSpec
    points: list[SweepPoint]
    elapsed: float
    cache_stats: dict = field(default_factory=dict)

    @property
    def points_per_second(self) -> float:
        return len(self.points) / self.elapsed if self.elapsed else 0.0


def build_points(spec: SweepSpec) -> list[SweepPoint]:
    """Compile the grid to jobs; suites materialize once per (size, seed)."""
    points: list[SweepPoint] = []
    for seed in spec.seeds:
        suite = perfect_club_like(
            spec.n_loops, seed=seed, include_kernels=spec.include_kernels
        )
        loops = list(suite)
        for latency in spec.latencies:
            for clusters in spec.cluster_counts:
                machine = _machine_for(latency, clusters)
                coords = dict(
                    # The suite records the seed it was generated from;
                    # labelling points with it keeps the two in lock-step.
                    seed=suite.seed,
                    machine=machine.name,
                    latency=latency,
                    clusters=clusters,
                )
                if spec.kind == PRESSURE:
                    points.extend(
                        SweepPoint(job=pressure_job(loop, machine), **coords)
                        for loop in loops
                    )
                    continue
                for loop in loops:
                    points.append(
                        SweepPoint(
                            job=evaluate_job(loop, machine, Model.IDEAL, None),
                            model=Model.IDEAL.value,
                            **coords,
                        )
                    )
                for budget in spec.budgets:
                    for model in spec.models:
                        if model is Model.IDEAL:
                            continue
                        for policy in spec.victim_policies:
                            points.extend(
                                SweepPoint(
                                    job=evaluate_job(
                                        loop,
                                        machine,
                                        model,
                                        budget,
                                        victim_policy=policy,
                                        pressure_strategy=(
                                            spec.pressure_strategy
                                        ),
                                        ii_escalation=spec.ii_escalation,
                                    ),
                                    model=model.value,
                                    budget=budget,
                                    policy=policy,
                                    **coords,
                                )
                                for loop in loops
                            )
    return points


def run_sweep(
    spec: SweepSpec,
    engine: Engine | None = None,
    echo_progress: bool = False,
) -> SweepOutcome:
    """Execute every point of ``spec`` through ``engine``."""
    from repro.engine.pool import serial_engine

    engine = engine or serial_engine()
    points = build_points(spec)
    previous_progress = engine.progress
    if echo_progress and engine.progress is None:
        engine.progress = stderr_progress(len(points))
    # Snapshot so the footer reports this sweep's cache traffic, not the
    # engine's whole lifetime (one engine often serves several sweeps).
    before = (
        replace(engine.cache.stats) if engine.cache is not None else None
    )
    start = time.perf_counter()
    try:
        results = engine.map([p.job for p in points])
    finally:
        engine.progress = previous_progress
    elapsed = time.perf_counter() - start
    resolved = [
        replace(point, result=result)
        for point, result in zip(points, results)
    ]
    stats = {}
    if engine.cache is not None:
        after = engine.cache.stats
        stats = {
            "hits": after.hits - before.hits,
            "misses": after.misses - before.misses,
            "stores": after.stores - before.stores,
            "corrupt": after.corrupt - before.corrupt,
        }
    return SweepOutcome(
        spec=spec, points=resolved, elapsed=elapsed, cache_stats=stats
    )


def stderr_progress(total: int, every: int = 50) -> ProgressFn:
    """A progress callback printing counters to stderr every ``every``."""

    def report(done: int, _total: int) -> None:
        if done % every == 0 or done == total:
            print(f"\r  {done}/{total} points", end="", file=sys.stderr)
            if done == total:
                print(file=sys.stderr)

    return report


# ----------------------------------------------------------------------
# Aggregation + reporting
# ----------------------------------------------------------------------
def aggregate_rows(outcome: SweepOutcome) -> list[tuple]:
    """Fold points into per-configuration summary rows."""
    if outcome.spec.kind == PRESSURE:
        return _aggregate_pressure(outcome)
    return _aggregate_evaluate(outcome)


def _aggregate_pressure(outcome: SweepOutcome) -> list[tuple]:
    groups: dict[tuple, list[PressureResult]] = {}
    for point in outcome.points:
        groups.setdefault((point.seed, point.machine), []).append(point.result)
    rows = []
    for (seed, machine), results in sorted(groups.items()):
        n = len(results)
        mean = lambda xs: sum(xs) / n  # noqa: E731 - tiny local fold
        rows.append(
            (
                machine,
                seed,
                n,
                f"{mean([r.unified for r in results]):.1f}",
                f"{mean([r.partitioned for r in results]):.1f}",
                f"{mean([r.swapped for r in results]):.1f}",
                f"{100 * sum(r.partitioned <= 32 for r in results) / n:.1f}",
            )
        )
    return rows


def _aggregate_evaluate(outcome: SweepOutcome) -> list[tuple]:
    # The policy column appears only when the sweep actually varies it, so
    # single-policy reports keep their historical shape.
    with_policy = len(outcome.spec.victim_policies) > 1
    ideal_cycles: dict[tuple, int] = {}
    groups: dict[tuple, list[EvalResult]] = {}
    for point in outcome.points:
        base = (point.seed, point.machine)
        if point.model == Model.IDEAL.value:
            ideal_cycles[base] = (
                ideal_cycles.get(base, 0) + point.result.cycles
            )
        groups.setdefault(
            base + (point.model, point.budget, point.policy), []
        ).append(point.result)
    rows = []
    for (seed, machine, model, budget, policy), results in sorted(
        groups.items(),
        key=lambda kv: (
            kv[0][0],
            kv[0][1],
            kv[0][3] or 0,
            kv[0][2],
            kv[0][4] or "",
        ),
    ):
        cycles = sum(r.cycles for r in results)
        ideal = ideal_cycles.get((seed, machine), 0)
        row = [
            machine,
            seed,
            model,
            budget if budget is not None else "inf",
            f"{ideal / cycles:.3f}" if cycles and ideal else "1.000",
            sum(r.spilled_values for r in results),
            sum(1 for r in results if not r.fits),
        ]
        if with_policy:
            row.insert(4, policy if policy is not None else "-")
        rows.append(tuple(row))
    return rows


def outcome_headers(outcome: SweepOutcome) -> list[str]:
    """Column headers matching :func:`aggregate_rows` for this outcome.

    Shared by the text report and the API's structured
    :class:`~repro.api.types.SweepResponse`, so both always agree on the
    row shape (including the conditional policy column).
    """
    if outcome.spec.kind == PRESSURE:
        return [
            "machine",
            "seed",
            "loops",
            "mean unified",
            "mean partitioned",
            "mean swapped",
            "% part <= 32",
        ]
    headers = [
        "machine",
        "seed",
        "model",
        "regs",
        "perf vs ideal",
        "spilled values",
        "not fitting",
    ]
    if len(outcome.spec.victim_policies) > 1:
        headers.insert(4, "policy")
    return headers


def format_outcome(outcome: SweepOutcome) -> str:
    """Human report: aggregate table plus throughput/cache footer."""
    headers = outcome_headers(outcome)
    table = format_table(
        headers, aggregate_rows(outcome), title=outcome.spec.describe()
    )
    footer = (
        f"{len(outcome.points)} points in {outcome.elapsed:.1f}s "
        f"({outcome.points_per_second:.1f} points/s)"
    )
    if outcome.cache_stats:
        stats = CacheStats(
            hits=outcome.cache_stats.get("hits", 0),
            misses=outcome.cache_stats.get("misses", 0),
            stores=outcome.cache_stats.get("stores", 0),
            corrupt=outcome.cache_stats.get("corrupt", 0),
        )
        footer += f"; cache: {stats.summary()}"
    return f"{table}\n\n{footer}"


# ----------------------------------------------------------------------
# Named sweeps (the CLI surface)
# ----------------------------------------------------------------------
NAMED_SWEEPS: dict[str, SweepSpec] = {
    # The Figures 6/7 measurement over both paper latencies.
    "pressure": SweepSpec(name="pressure", kind=PRESSURE),
    # The Figures 8/9 grid: models x budgets on the paper machine.
    "performance": SweepSpec(name="performance", kind=EVALUATE),
    # How performance scales with the register-file size at high pressure.
    "rf-size": SweepSpec(
        name="rf-size",
        kind=EVALUATE,
        latencies=(6,),
        budgets=(16, 24, 32, 48, 64, 96, 128),
    ),
    # Register pressure across cluster counts (Section 4 generalization).
    "clusters": SweepSpec(
        name="clusters",
        kind=PRESSURE,
        latencies=(3, 6),
        cluster_counts=(1, 2, 4),
    ),
    # Spill-victim policy ablation through the pass pipeline: the paper's
    # highest-lifetime heuristic against every registered alternative at
    # the highest-pressure configuration (L6/R32).
    "spill-policy": SweepSpec(
        name="spill-policy",
        kind=EVALUATE,
        latencies=(6,),
        budgets=(32,),
        victim_policies=tuple(SPILL_POLICIES),
    ),
}


def named_sweep(name: str, **overrides: object) -> SweepSpec:
    """A registry sweep with field overrides (``n_loops``, ``seeds``...)."""
    try:
        spec = NAMED_SWEEPS[name]
    except KeyError:
        known = ", ".join(sorted(NAMED_SWEEPS))
        raise ValueError(f"unknown sweep {name!r} (known: {known})") from None
    return replace(spec, **overrides) if overrides else spec


__all__ = [
    "NAMED_SWEEPS",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "aggregate_rows",
    "build_points",
    "format_outcome",
    "named_sweep",
    "outcome_headers",
    "run_sweep",
    "stderr_progress",
]
