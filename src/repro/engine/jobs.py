"""Declarative evaluation jobs with deterministic content hashing.

An :class:`EvalJob` names one point of an experiment grid: one loop, one
machine, one register-file model, and the scheduler/spill options that
influence the numbers.  Jobs are *content-addressed*: two jobs whose loops
have identical dependence graphs and trip counts, on structurally identical
machines, with the same model and options, hash to the same key -- no matter
which driver built them or in which process.  That key is what the result
cache (:mod:`repro.engine.cache`) and the worker pool
(:mod:`repro.engine.pool`) operate on.

Hashes are SHA-256 over a canonical JSON payload, so they are stable across
processes and interpreter runs (unlike :func:`hash`, which is randomized).
``ENGINE_SCHEMA_VERSION`` salts every key; bump it whenever a change to the
pipeline can alter results, and stale cache entries die naturally.

Results are summaries, not pipelines: a :class:`PressureResult` or
:class:`EvalResult` carries exactly the numbers the figure/table drivers
aggregate, and round-trips through JSON for the on-disk cache.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass
from functools import cached_property, lru_cache
from pathlib import Path
from weakref import WeakKeyDictionary

from repro.core.models import Model
from repro.core.pressure import pressure_report
from repro.core.swapping import SwapEstimator
from repro.ir.ddg import DependenceGraph
from repro.ir.operation import Immediate, InvariantRef, ValueRef
from repro.ir.loop import Loop
from repro.machine.config import MachineConfig
from repro.spill.spiller import evaluate_loop

#: Bump when evaluation semantics change; invalidates every cached result.
ENGINE_SCHEMA_VERSION = 1

PRESSURE = "pressure"
EVALUATE = "evaluate"


# ----------------------------------------------------------------------
# Content fingerprints
# ----------------------------------------------------------------------
def _operand_token(operand) -> list:
    if isinstance(operand, ValueRef):
        return ["v", operand.producer, operand.distance]
    if isinstance(operand, InvariantRef):
        return ["i", operand.name]
    if isinstance(operand, Immediate):
        return ["c", operand.value]
    raise TypeError(f"unknown operand {operand!r}")  # pragma: no cover


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Hash of every ``repro`` source file, folded into each job key.

    Cached results must never outlive the code that produced them: editing
    any module retires the whole cache automatically, with no reliance on
    someone remembering to bump ``ENGINE_SCHEMA_VERSION``.
    """
    root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode())
        try:
            digest.update(path.read_bytes())
        except OSError:  # pragma: no cover - vanished mid-walk
            continue
    return digest.hexdigest()


#: Fingerprints memoized per object: drivers reuse the same Loop and
#: MachineConfig instances across hundreds of jobs, and re-serializing the
#: graph for each would dominate the warm-cache fast path.  Content is
#: hashed at first sight -- don't mutate a graph after handing it to the
#: engine.
_graph_fingerprints: "WeakKeyDictionary[DependenceGraph, str]" = (
    WeakKeyDictionary()
)
_machine_fingerprints: "WeakKeyDictionary[MachineConfig, str]" = (
    WeakKeyDictionary()
)


def graph_fingerprint(graph: DependenceGraph) -> str:
    """Content hash of a dependence graph.

    Covers everything that influences scheduling and allocation -- operation
    types, operand wiring, spill flags, explicit edges -- and deliberately
    excludes display names, so structurally identical loops share cache
    entries regardless of how they were labelled.
    """
    cached = _graph_fingerprints.get(graph)
    if cached is not None:
        return cached
    payload = {
        "ops": [
            [
                op.op_id,
                op.optype.value,
                [_operand_token(o) for o in op.operands],
                op.symbol,
                op.is_spill,
            ]
            for op in graph.operations
        ],
        "edges": [
            [e.src, e.dst, e.kind.value, e.distance, e.min_delay]
            for e in graph.extra_edges()
        ],
    }
    result = _digest(payload)
    _graph_fingerprints[graph] = result
    return result


def loop_fingerprint(loop: Loop) -> str:
    """Content hash of a loop: its graph plus the trip-count weight."""
    return _digest(
        {"graph": graph_fingerprint(loop.graph), "trips": loop.trip_count}
    )


def machine_fingerprint(machine: MachineConfig) -> str:
    """Content hash of a machine configuration (name excluded)."""
    cached = _machine_fingerprints.get(machine)
    if cached is not None:
        return cached
    payload = {
        "pools": [[p.name, p.count] for p in machine.pools],
        "pool_of": sorted(
            [t.value, p] for t, p in machine.pool_of.items()
        ),
        "latency": sorted(
            [t.value, l] for t, l in machine.latency.items()
        ),
        "clusters": machine.n_clusters,
    }
    result = _digest(payload)
    _machine_fingerprints[machine] = result
    return result


def _digest(payload) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvalJob:
    """One point of an experiment grid, ready to execute anywhere.

    ``kind`` selects the pipeline: ``"pressure"`` is the unlimited-register
    measurement of Figures 6/7 and Table 1; ``"evaluate"`` is the full
    schedule/allocate/spill pipeline of Figures 8/9.  The loop and machine
    ride along as objects (they are cheap to pickle) but the cache key is
    computed from their *content*.
    """

    kind: str
    loop: Loop
    machine: MachineConfig
    model: str = Model.UNIFIED.value
    register_budget: int | None = None
    swap_estimator: str = SwapEstimator.MAXLIVE.value
    victim_policy: str = "longest"
    pressure_strategy: str = "spill"
    max_rounds: int = 200

    def __post_init__(self) -> None:
        if self.kind not in (PRESSURE, EVALUATE):
            raise ValueError(f"unknown job kind {self.kind!r}")
        Model(self.model)  # validate early, not in a worker process

    @cached_property
    def key(self) -> str:
        """Deterministic cache key; stable across processes and runs."""
        payload = {
            "schema": ENGINE_SCHEMA_VERSION,
            "source": source_fingerprint(),
            "kind": self.kind,
            "loop": loop_fingerprint(self.loop),
            "machine": machine_fingerprint(self.machine),
        }
        if self.kind == EVALUATE:
            payload.update(
                model=self.model,
                budget=self.register_budget,
                swap=self.swap_estimator,
                victim=self.victim_policy,
                strategy=self.pressure_strategy,
                rounds=self.max_rounds,
            )
        return _digest(payload)


def pressure_job(loop: Loop, machine: MachineConfig) -> EvalJob:
    """A Figures-6/7/Table-1 measurement: all models, no budget."""
    return EvalJob(kind=PRESSURE, loop=loop, machine=machine)


def evaluate_job(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    max_rounds: int = 200,
) -> EvalJob:
    """A Figures-8/9 point: one model under one register budget."""
    return EvalJob(
        kind=EVALUATE,
        loop=loop,
        machine=machine,
        model=model.value,
        register_budget=register_budget,
        swap_estimator=swap_estimator.value,
        victim_policy=victim_policy,
        pressure_strategy=pressure_strategy,
        max_rounds=max_rounds,
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PressureResult:
    """Register requirements of one loop under the three finite models."""

    loop_name: str
    trip_count: int
    ii: int
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int

    def requirement(self, model: Model) -> int:
        if model in (Model.IDEAL, Model.UNIFIED):
            return self.unified
        if model is Model.PARTITIONED:
            return self.partitioned
        return self.swapped


@dataclass(frozen=True)
class EvalResult:
    """Final state of one loop under one model and register budget.

    Field-compatible (duck-typed) with the aggregation surface of
    :class:`repro.spill.spiller.LoopEvaluation`, so the performance and
    traffic aggregates accept either.
    """

    loop_name: str
    trip_count: int
    ii: int
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool
    memory_ops_per_iteration: int
    spill_ops_per_iteration: int
    memory_bandwidth: int
    registers_required: int

    @property
    def cycles(self) -> int:
        """Steady-state execution cycles: trip count times the final II."""
        return self.trip_count * self.ii

    @property
    def traffic_density(self) -> float:
        """Average fraction of the memory bus used per cycle."""
        return self.memory_ops_per_iteration / (
            self.ii * self.memory_bandwidth
        )


JobResult = PressureResult | EvalResult


def execute_job(job: EvalJob) -> JobResult:
    """Run one job in the current process and summarize the outcome."""
    if job.kind == PRESSURE:
        report = pressure_report(job.loop, job.machine)
        return PressureResult(
            loop_name=job.loop.name,
            trip_count=job.loop.trip_count,
            ii=report.ii,
            mii=report.mii,
            unified=report.unified,
            partitioned=report.partitioned,
            swapped=report.swapped,
            max_live=report.max_live,
        )
    evaluation = evaluate_loop(
        job.loop,
        job.machine,
        Model(job.model),
        job.register_budget,
        swap_estimator=SwapEstimator(job.swap_estimator),
        max_rounds=job.max_rounds,
        victim_policy=job.victim_policy,
        pressure_strategy=job.pressure_strategy,
    )
    return EvalResult(
        loop_name=job.loop.name,
        trip_count=job.loop.trip_count,
        ii=evaluation.ii,
        mii=evaluation.mii,
        spilled_values=evaluation.spilled_values,
        ii_increases=evaluation.ii_increases,
        fits=evaluation.fits,
        memory_ops_per_iteration=evaluation.memory_ops_per_iteration,
        spill_ops_per_iteration=evaluation.spill_ops_per_iteration,
        memory_bandwidth=job.machine.memory_bandwidth,
        registers_required=evaluation.requirement.registers,
    )


def result_to_dict(result: JobResult) -> dict:
    """JSON-serializable form for the on-disk cache."""
    data = asdict(result)
    data["kind"] = PRESSURE if isinstance(result, PressureResult) else EVALUATE
    return data


def result_from_dict(data: dict) -> JobResult:
    """Inverse of :func:`result_to_dict`; raises on malformed payloads."""
    data = dict(data)
    kind = data.pop("kind")
    if kind == PRESSURE:
        return PressureResult(**data)
    if kind == EVALUATE:
        return EvalResult(**data)
    raise ValueError(f"unknown result kind {kind!r}")


__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "EVALUATE",
    "EvalJob",
    "EvalResult",
    "JobResult",
    "PRESSURE",
    "PressureResult",
    "evaluate_job",
    "execute_job",
    "graph_fingerprint",
    "loop_fingerprint",
    "machine_fingerprint",
    "pressure_job",
    "result_from_dict",
    "result_to_dict",
    "source_fingerprint",
]
