"""Declarative evaluation jobs with deterministic content hashing.

An :class:`EvalJob` names one point of an experiment grid: one loop, one
machine, one register-file model, and the pipeline/policy options that
influence the numbers.  Jobs are *content-addressed*: two jobs whose loops
have identical dependence graphs and trip counts, on structurally identical
machines, with the same model and options, hash to the same key -- no matter
which driver built them or in which process.  That key is what the result
cache (:mod:`repro.engine.cache`) and the worker pool
(:mod:`repro.engine.pool`) operate on.

Content fingerprints come from :mod:`repro.pipeline.fingerprint` (the same
hashes key the pipeline's artifact store).  ``ENGINE_SCHEMA_VERSION`` salts
every key; bump it whenever a change to the pipeline can alter results, and
stale cache entries die naturally.  Every pipeline knob that can change a
number -- victim policy, pressure strategy, II escalation, swap estimator --
rides in the key, so policy sweeps never collide in the cache.

Results are summaries, not pipelines: a :class:`PressureResult` or
:class:`EvalResult` carries exactly the numbers the figure/table drivers
aggregate, and round-trips through JSON for the on-disk cache.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict, dataclass
from functools import cached_property, lru_cache
from pathlib import Path
from typing import Sequence

from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.ir.loop import Loop
from repro.kernel import batch as kbatch
from repro.machine.config import MachineConfig
from repro.pipeline.fingerprint import (
    digest as _digest,
    graph_fingerprint,
    loop_fingerprint,
    machine_fingerprint,
)
from repro.pipeline.pipelines import (
    PRESSURE_STRATEGIES,
    run_evaluation,
    run_pressure,
)
from repro.pipeline.policies import get_escalation, get_policy

#: Bump when evaluation semantics change; invalidates every cached result.
#: 2: evaluation runs through the pass pipeline; keys carry the policy knobs.
ENGINE_SCHEMA_VERSION = 2

PRESSURE = "pressure"
EVALUATE = "evaluate"


# ----------------------------------------------------------------------
# Source fingerprint (cache self-invalidation on code edits)
# ----------------------------------------------------------------------
def _source_files(root: Path) -> list[Path]:
    """The ``repro`` sources that define evaluation semantics.

    Hidden files/directories (editor locks and swap files such as
    ``.#mod.py``, checkpoint directories) and ``__pycache__`` are excluded:
    they appear and vanish while a sweep runs and carry no semantics.  The
    listing is sorted by POSIX-style relative path, so the resulting digest
    is independent of filesystem enumeration order.
    """
    files = []
    for path in root.rglob("*.py"):
        relative = path.relative_to(root).parts
        if any(
            part.startswith(".") or part == "__pycache__"
            for part in relative
        ):
            continue
        files.append(path)
    return sorted(files, key=lambda p: p.relative_to(root).as_posix())


def tree_fingerprint(root: Path) -> str:
    """Order-independent-input hash of a source tree's ``*.py`` files.

    Each file contributes its relative path and bytes as one atomic unit:
    a file that vanishes mid-walk (concurrent edit) is skipped entirely
    rather than leaving a half-written path-without-content record, so two
    walks over identical trees always agree.
    """
    digest = hashlib.sha256()
    for path in _source_files(root):
        try:
            content = path.read_bytes()
        except OSError:  # vanished mid-walk: skip the whole record
            continue
        digest.update(path.relative_to(root).as_posix().encode())
        digest.update(b"\x00")
        digest.update(content)
        digest.update(b"\x00")
    return digest.hexdigest()


@lru_cache(maxsize=1)
def source_fingerprint() -> str:
    """Hash of every ``repro`` source file, folded into each job key.

    Cached results must never outlive the code that produced them: editing
    any module retires the whole cache automatically, with no reliance on
    someone remembering to bump ``ENGINE_SCHEMA_VERSION``.
    """
    return tree_fingerprint(Path(__file__).resolve().parent.parent)


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EvalJob:
    """One point of an experiment grid, ready to execute anywhere.

    ``kind`` selects the pipeline: ``"pressure"`` is the unlimited-register
    measurement of Figures 6/7 and Table 1; ``"evaluate"`` is the full
    schedule/allocate/spill pipeline of Figures 8/9.  The loop and machine
    ride along as objects (they are cheap to pickle) but the cache key is
    computed from their *content*.  Policy knobs are registry names,
    validated eagerly -- a bad name fails at job construction, not in a
    worker process mid-sweep.
    """

    kind: str
    loop: Loop
    machine: MachineConfig
    model: str = Model.UNIFIED.value
    register_budget: int | None = None
    swap_estimator: str = SwapEstimator.MAXLIVE.value
    victim_policy: str = "longest"
    pressure_strategy: str = "spill"
    ii_escalation: str = "increment"
    max_rounds: int = 200

    def __post_init__(self) -> None:
        if self.kind not in (PRESSURE, EVALUATE):
            raise ValueError(f"unknown job kind {self.kind!r}")
        # Validate every knob early, not in a worker process.
        Model(self.model)
        SwapEstimator(self.swap_estimator)
        get_policy(self.victim_policy)
        get_escalation(self.ii_escalation)
        if self.pressure_strategy not in PRESSURE_STRATEGIES:
            raise ValueError(
                f"unknown pressure strategy {self.pressure_strategy!r}"
            )

    @cached_property
    def key(self) -> str:
        """Deterministic cache key; stable across processes and runs."""
        payload = {
            "schema": ENGINE_SCHEMA_VERSION,
            "source": source_fingerprint(),
            "kind": self.kind,
            "loop": loop_fingerprint(self.loop),
            "machine": machine_fingerprint(self.machine),
            "swap": self.swap_estimator,
        }
        if self.kind == EVALUATE:
            payload.update(
                model=self.model,
                budget=self.register_budget,
                victim=self.victim_policy,
                strategy=self.pressure_strategy,
                escalation=self.ii_escalation,
                rounds=self.max_rounds,
            )
        return _digest(payload)


def pressure_job(
    loop: Loop,
    machine: MachineConfig,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
) -> EvalJob:
    """A Figures-6/7/Table-1 measurement: all models, no budget."""
    return EvalJob(
        kind=PRESSURE,
        loop=loop,
        machine=machine,
        swap_estimator=swap_estimator.value,
    )


def evaluate_job(
    loop: Loop,
    machine: MachineConfig,
    model: Model,
    register_budget: int | None,
    swap_estimator: SwapEstimator = SwapEstimator.MAXLIVE,
    victim_policy: str = "longest",
    pressure_strategy: str = "spill",
    ii_escalation: str = "increment",
    max_rounds: int = 200,
) -> EvalJob:
    """A Figures-8/9 point: one model under one register budget."""
    return EvalJob(
        kind=EVALUATE,
        loop=loop,
        machine=machine,
        model=model.value,
        register_budget=register_budget,
        swap_estimator=swap_estimator.value,
        victim_policy=victim_policy,
        pressure_strategy=pressure_strategy,
        ii_escalation=ii_escalation,
        max_rounds=max_rounds,
    )


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PressureResult:
    """Register requirements of one loop under the three finite models."""

    loop_name: str
    trip_count: int
    ii: int
    mii: int
    unified: int
    partitioned: int
    swapped: int
    max_live: int

    def requirement(self, model: Model) -> int:
        if model in (Model.IDEAL, Model.UNIFIED):
            return self.unified
        if model is Model.PARTITIONED:
            return self.partitioned
        return self.swapped


@dataclass(frozen=True)
class EvalResult:
    """Final state of one loop under one model and register budget.

    Field-compatible (duck-typed) with the aggregation surface of
    :class:`repro.spill.spiller.LoopEvaluation`, so the performance and
    traffic aggregates accept either.
    """

    loop_name: str
    trip_count: int
    ii: int
    mii: int
    spilled_values: int
    ii_increases: int
    fits: bool
    memory_ops_per_iteration: int
    spill_ops_per_iteration: int
    memory_bandwidth: int
    registers_required: int

    @property
    def cycles(self) -> int:
        """Steady-state execution cycles: trip count times the final II."""
        return self.trip_count * self.ii

    @property
    def traffic_density(self) -> float:
        """Average fraction of the memory bus used per cycle."""
        return self.memory_ops_per_iteration / (
            self.ii * self.memory_bandwidth
        )


JobResult = PressureResult | EvalResult


def execute_job(job: EvalJob) -> JobResult:
    """Assemble the job's pipeline, run it, and summarize the outcome."""
    if job.kind == PRESSURE:
        report = run_pressure(
            job.loop,
            job.machine,
            swap_estimator=SwapEstimator(job.swap_estimator),
        )
        return PressureResult(
            loop_name=job.loop.name,
            trip_count=job.loop.trip_count,
            ii=report.ii,
            mii=report.mii,
            unified=report.unified,
            partitioned=report.partitioned,
            swapped=report.swapped,
            max_live=report.max_live,
        )
    evaluation = run_evaluation(
        job.loop,
        job.machine,
        Model(job.model),
        job.register_budget,
        swap_estimator=SwapEstimator(job.swap_estimator),
        max_rounds=job.max_rounds,
        victim_policy=job.victim_policy,
        pressure_strategy=job.pressure_strategy,
        ii_escalation=job.ii_escalation,
    )
    return EvalResult(
        loop_name=job.loop.name,
        trip_count=job.loop.trip_count,
        ii=evaluation.ii,
        mii=evaluation.mii,
        spilled_values=evaluation.spilled_values,
        ii_increases=evaluation.ii_increases,
        fits=evaluation.fits,
        memory_ops_per_iteration=evaluation.memory_ops_per_iteration,
        spill_ops_per_iteration=evaluation.spill_ops_per_iteration,
        memory_bandwidth=job.machine.memory_bandwidth,
        registers_required=evaluation.requirement.registers,
    )


def batch_key(job: EvalJob) -> tuple[str, str, str, str, str]:
    """Grouping key of the batch planner: jobs sharing it share a chain.

    These are the same content fingerprints that key the pipeline's
    ``ArtifactStore`` and the job cache (memoized per object, so a grid
    derives each loop's hash once, not once per point).  Model, budget,
    estimator and trip count are deliberately absent: they vary *within*
    a chain's walks.  Structurally identical loops with different names
    share one chain; :func:`repro.engine.pool.run_jobs` relabels results.
    """
    return (
        graph_fingerprint(job.loop.graph),
        machine_fingerprint(job.machine),
        job.victim_policy,
        job.pressure_strategy,
        job.ii_escalation,
    )


def execute_batch(jobs: Sequence[EvalJob]) -> list[JobResult]:
    """Execute one :func:`batch_key` group against one shared chain.

    The schedule-stage artifacts (MII, modulo schedule, lifetimes, live
    profiles) are computed once per chain *state* and shared by every
    (model, budget) walk -- see :mod:`repro.kernel.batch`.  Groups whose
    victim policy has no array implementation (custom registered policies
    interrogate ``Schedule`` dataclasses) fall back to per-job execution,
    bit-identical by construction.
    """
    first = jobs[0]
    if not kbatch.supports(first.victim_policy, first.pressure_strategy):
        return [execute_job(job) for job in jobs]
    chain = kbatch.LoopChain(
        first.loop.graph,
        first.machine,
        victim_policy=first.victim_policy,
        pressure_strategy=first.pressure_strategy,
        ii_escalation=first.ii_escalation,
    )
    results: list[JobResult] = []
    for job in jobs:
        if job.kind == PRESSURE:
            pressure = chain.pressure(SwapEstimator(job.swap_estimator))
            results.append(
                PressureResult(
                    loop_name=job.loop.name,
                    trip_count=job.loop.trip_count,
                    ii=pressure.ii,
                    mii=pressure.mii,
                    unified=pressure.unified,
                    partitioned=pressure.partitioned,
                    swapped=pressure.swapped,
                    max_live=pressure.max_live,
                )
            )
        else:
            evaluation = chain.evaluate(
                Model(job.model),
                job.register_budget,
                SwapEstimator(job.swap_estimator),
                max_rounds=job.max_rounds,
            )
            results.append(
                EvalResult(
                    loop_name=job.loop.name,
                    trip_count=job.loop.trip_count,
                    ii=evaluation.ii,
                    mii=evaluation.mii,
                    spilled_values=evaluation.spilled_values,
                    ii_increases=evaluation.ii_increases,
                    fits=evaluation.fits,
                    memory_ops_per_iteration=evaluation.memory_ops,
                    spill_ops_per_iteration=evaluation.spill_ops,
                    memory_bandwidth=job.machine.memory_bandwidth,
                    registers_required=evaluation.registers,
                )
            )
    return results


def result_to_dict(result: JobResult) -> dict:
    """JSON-serializable form for the on-disk cache."""
    data = asdict(result)
    data["kind"] = PRESSURE if isinstance(result, PressureResult) else EVALUATE
    return data


def result_from_dict(data: dict) -> JobResult:
    """Inverse of :func:`result_to_dict`; raises on malformed payloads."""
    data = dict(data)
    kind = data.pop("kind")
    if kind == PRESSURE:
        return PressureResult(**data)
    if kind == EVALUATE:
        return EvalResult(**data)
    raise ValueError(f"unknown result kind {kind!r}")


__all__ = [
    "ENGINE_SCHEMA_VERSION",
    "EVALUATE",
    "EvalJob",
    "EvalResult",
    "JobResult",
    "PRESSURE",
    "PressureResult",
    "batch_key",
    "evaluate_job",
    "execute_batch",
    "execute_job",
    "graph_fingerprint",
    "loop_fingerprint",
    "machine_fingerprint",
    "pressure_job",
    "result_from_dict",
    "result_to_dict",
    "source_fingerprint",
    "tree_fingerprint",
]
