#!/usr/bin/env python3
"""Standalone entry for the repo's AST lint rules.

Equivalent to ``python -m repro lint`` but runnable before the package
is importable from the default path (CI checkouts, pre-commit hooks)::

    python tools/lint_rules.py            # lint src/repro with all rules
    python tools/lint_rules.py --list     # print the rule catalog
    python tools/lint_rules.py --rule cache-locking --rule set-iteration

Exits non-zero on any violation.  The rules themselves live in
``src/repro/check/lint.py`` -- this file only locates the source tree.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.check.lint import (  # noqa: E402  (path bootstrap above)
    format_report,
    list_rules,
    run_lint,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        default=str(SRC / "repro"),
        help="source root to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named rule(s); repeat the flag for several",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_rules",
        help="list the rule catalog and exit",
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for name, doc in list_rules():
            print(f"{name}: {doc}")
        return 0
    report = run_lint(root=args.root, rules=args.rule)
    print(format_report(report))
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
