"""Unit tests for cumulative distributions."""

import pytest

from repro.analysis.distributions import (
    DEFAULT_GRID,
    cumulative_distribution,
    fraction_fitting,
)


class TestCumulative:
    def test_simple_distribution(self):
        reqs = [10, 20, 40, 80]
        dist = cumulative_distribution(reqs, grid=(16, 32, 64, 128))
        assert dist.at(16) == 0.25
        assert dist.at(32) == 0.5
        assert dist.at(64) == 0.75
        assert dist.at(128) == 1.0

    def test_weighted_distribution(self):
        reqs = [10, 100]
        dist = cumulative_distribution(
            reqs, weights=[1.0, 3.0], grid=(16, 128)
        )
        assert dist.at(16) == 0.25
        assert dist.at(128) == 1.0

    def test_monotone_nondecreasing(self):
        reqs = [5, 17, 33, 65, 90, 12, 47]
        dist = cumulative_distribution(reqs)
        fractions = [p.fraction for p in dist.points]
        assert fractions == sorted(fractions)

    def test_default_grid_span(self):
        dist = cumulative_distribution([1])
        assert dist.points[0].registers == DEFAULT_GRID[0]
        assert dist.points[-1].registers == 128

    def test_at_below_grid_is_zero(self):
        dist = cumulative_distribution([10], grid=(16, 32))
        assert dist.at(8) == 0.0

    def test_percent_and_rows(self):
        dist = cumulative_distribution([10, 40], grid=(16, 64), label="m")
        assert dist.label == "m"
        assert dist.as_rows() == [(16, 50.0), (64, 100.0)]

    def test_mismatched_weights_rejected(self):
        with pytest.raises(ValueError):
            cumulative_distribution([1, 2], weights=[1.0])


class TestFractionFitting:
    def test_unweighted(self):
        assert fraction_fitting([10, 20, 30], 20) == pytest.approx(2 / 3)

    def test_weighted(self):
        assert fraction_fitting(
            [10, 30], 16, weights=[9.0, 1.0]
        ) == pytest.approx(0.9)

    def test_empty(self):
        assert fraction_fitting([], 32) == 0.0


class TestEdgeCases:
    def test_empty_requirements_give_zero_curve(self):
        dist = cumulative_distribution([])
        assert all(p.fraction == 0.0 for p in dist.points)

    def test_zero_total_weight(self):
        dist = cumulative_distribution([8, 16], weights=[0.0, 0.0])
        assert all(p.fraction == 0.0 for p in dist.points)

    def test_custom_grid_preserved_in_order(self):
        grid = (64, 8, 32)
        dist = cumulative_distribution([10], grid=grid)
        assert tuple(p.registers for p in dist.points) == grid

    def test_label_carried(self):
        assert cumulative_distribution([1], label="unified").label == (
            "unified"
        )
