"""Unit tests for report formatting."""

from repro.analysis.reporting import bar, format_table, percent


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4.0)])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) == {"-"}
        assert lines[2].split() == ["1", "2.50"]

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_wide_cells_extend_columns(self):
        text = format_table(["x"], [("longvalue",)])
        assert "longvalue" in text

    def test_float_formatting(self):
        assert "0.33" in format_table(["x"], [(1 / 3,)])


class TestHelpers:
    def test_percent(self):
        assert percent(0.107) == "10.7%"
        assert percent(1.0, digits=0) == "100%"

    def test_bar_full_and_empty(self):
        assert bar(1.0, width=4) == "####"
        assert bar(0.0, width=4) == "...."

    def test_bar_clamps(self):
        assert bar(1.5, width=4) == "####"
        assert bar(-0.5, width=4) == "...."

    def test_bar_proportional(self):
        assert bar(0.5, width=4) == "##.."
