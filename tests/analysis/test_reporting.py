"""Unit tests for report formatting."""

from repro.analysis.reporting import bar, format_table, percent


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(["a", "bb"], [(1, 2.5), (30, 4.0)])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) == {"-"}
        assert lines[2].split() == ["1", "2.50"]

    def test_title(self):
        text = format_table(["x"], [(1,)], title="T")
        assert text.splitlines()[0] == "T"

    def test_wide_cells_extend_columns(self):
        text = format_table(["x"], [("longvalue",)])
        assert "longvalue" in text

    def test_float_formatting(self):
        assert "0.33" in format_table(["x"], [(1 / 3,)])


class TestHelpers:
    def test_percent(self):
        assert percent(0.107) == "10.7%"
        assert percent(1.0, digits=0) == "100%"

    def test_bar_full_and_empty(self):
        assert bar(1.0, width=4) == "####"
        assert bar(0.0, width=4) == "...."

    def test_bar_clamps(self):
        assert bar(1.5, width=4) == "####"
        assert bar(-0.5, width=4) == "...."

    def test_bar_proportional(self):
        assert bar(0.5, width=4) == "##.."


# ----------------------------------------------------------------------
# The shared primitives behind the drivers and ``repro report``
# ----------------------------------------------------------------------
from repro.analysis.reporting import BarChart, LineChart, Table  # noqa: E402


class TestTablePrimitive:
    def table(self):
        return Table.build(
            ["name", "value"],
            [("unified", 42), ("swapped", 1 / 3)],
            title="T",
        )

    def test_text_matches_format_table(self):
        assert self.table().to_text() == format_table(
            ["name", "value"],
            [("unified", 42), ("swapped", 1 / 3)],
            title="T",
        )

    def test_markdown_golden(self):
        assert self.table().to_markdown() == (
            "**T**\n"
            "\n"
            "| name | value |\n"
            "| --- | --- |\n"
            "| unified | 42 |\n"
            "| swapped | 0.33 |"
        )

    def test_html_golden(self):
        assert self.table().to_html() == (
            "<table><caption>T</caption><thead><tr><th>name</th>"
            "<th>value</th></tr></thead><tbody>"
            "<tr><td>unified</td><td>42</td></tr>"
            "<tr><td>swapped</td><td>0.33</td></tr>"
            "</tbody></table>"
        )

    def test_html_escapes_cells(self):
        html = Table.build(["<h>"], [("<&>",)]).to_html()
        assert "&lt;h&gt;" in html and "&lt;&amp;&gt;" in html

    def test_row_classes_only_in_html(self):
        table = Table.build(
            ["a"], [(1,), (2,)], row_classes=("delta-ok", "delta-fail")
        )
        assert '<tr class="delta-ok">' in table.to_html()
        assert "delta-ok" not in table.to_text()
        assert "delta-ok" not in table.to_markdown()


class TestBarChartPrimitive:
    def chart(self):
        return BarChart(
            title="perf",
            series=("ideal", "unified"),
            groups=(("L6,R32", (1.0, 0.5)),),
            max_value=1.0,
        )

    def test_ascii_golden(self):
        assert self.chart().to_ascii(width=4) == (
            "perf\n"
            "L6,R32  ideal    #### 1.000\n"
            "L6,R32  unified  ##.. 0.500"
        )

    def test_svg_structure(self):
        svg = self.chart().to_svg()
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert svg.count("<rect") == 2 + 2  # 2 bars + 2 legend swatches
        assert "<title>L6,R32 unified: 0.500</title>" in svg

    def test_series_slots_pin_colors(self):
        chart = BarChart(
            title="x",
            series=("unified", "swapped"),
            groups=(("g", (1.0, 2.0)),),
            slots=(1, 3),
        )
        svg = chart.to_svg()
        assert 'class="series-1"' in svg and 'class="series-3"' in svg
        assert 'class="series-0"' not in svg

    def test_values_above_ceiling_clamp(self):
        chart = BarChart(
            title="x",
            series=("s",),
            groups=(("g", (2.0,)),),
            max_value=1.0,
        )
        assert "#" * 36 in chart.to_ascii(width=36)


class TestLineChartPrimitive:
    def chart(self):
        return LineChart(
            title="fig6",
            x_values=(16.0, 32.0, 64.0),
            series=("unified", "partitioned"),
            values=((50.0, 75.0, 100.0), (80.0, 100.0, 100.0)),
            max_value=100.0,
            unit="%",
        )

    def test_ascii_shape(self):
        text = self.chart().to_ascii(height=5)
        lines = text.splitlines()
        assert lines[0] == "fig6"
        assert lines[1].startswith("   100%")
        assert "u=unified" in lines[-1] and "p=partitioned" in lines[-1]
        # Coinciding points render as '*'.
        assert "*" in text

    def test_ascii_x_labels_at_columns(self):
        text = self.chart().to_ascii(height=5)
        label_line = text.splitlines()[-2]
        assert "16" in label_line and "32" in label_line
        assert "64" in label_line

    def test_svg_structure(self):
        svg = self.chart().to_svg()
        assert svg.count("<polyline") == 2
        assert svg.count("<circle") == 6  # one marker per point
        assert "<title>unified @ 32: 75.0%</title>" in svg
