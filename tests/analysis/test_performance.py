"""Unit tests for performance aggregation."""

import pytest

from repro.analysis.performance import (
    relative_performance,
    run_all_models,
    run_model,
    total_cycles,
)
from repro.core.models import Model
from repro.workloads.kernels import example_loop, make_kernel


@pytest.fixture(scope="module")
def small_workload():
    return [example_loop(trip_count=100), make_kernel("daxpy")]


class TestRunModel:
    def test_ideal_run(self, small_workload, paper_l3):
        run = run_model(small_workload, paper_l3, Model.IDEAL, None)
        assert len(run.evaluations) == 2
        assert run.total_spills == 0
        assert run.loops_not_fitting == 0

    def test_budgeted_run_spills(self, small_workload, paper_l6):
        run = run_model(small_workload, paper_l6, Model.UNIFIED, 16)
        assert run.loops_spilled >= 1
        assert run.total_spills >= run.loops_spilled

    def test_cycles_sum(self, small_workload, paper_l3):
        run = run_model(small_workload, paper_l3, Model.IDEAL, None)
        assert run.cycles == total_cycles(run.evaluations)
        assert run.cycles == sum(ev.cycles for ev in run.evaluations)


class TestRelativePerformance:
    def test_ideal_is_one(self, small_workload, paper_l3):
        ideal = run_model(small_workload, paper_l3, Model.IDEAL, None)
        assert relative_performance(
            ideal.evaluations, ideal.evaluations
        ) == pytest.approx(1.0)

    def test_spilling_costs_performance(self, small_workload, paper_l6):
        ideal = run_model(small_workload, paper_l6, Model.IDEAL, None)
        tight = run_model(small_workload, paper_l6, Model.UNIFIED, 12)
        perf = relative_performance(tight.evaluations, ideal.evaluations)
        assert perf < 1.0

    def test_model_ordering(self, small_workload, paper_l6):
        """unified <= partitioned <= ~swapped under a tight budget."""
        ideal = run_model(small_workload, paper_l6, Model.IDEAL, None)
        perfs = {}
        for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
            run = run_model(small_workload, paper_l6, model, 16)
            perfs[model] = relative_performance(
                run.evaluations, ideal.evaluations
            )
        assert perfs[Model.UNIFIED] <= perfs[Model.PARTITIONED] + 1e-9
        assert perfs[Model.PARTITIONED] <= perfs[Model.SWAPPED] + 0.05


class TestRunAllModels:
    def test_covers_all_models(self, small_workload, paper_l3):
        runs = run_all_models(small_workload, paper_l3, 32)
        assert set(runs) == set(Model)
        for model, run in runs.items():
            assert run.model is model


class TestAggregationEdgeCases:
    def test_relative_performance_empty_is_zero(self):
        assert relative_performance([], []) == 0.0

    def test_total_cycles_empty(self):
        from repro.analysis.performance import total_cycles

        assert total_cycles([]) == 0

    def test_loops_not_fitting_counted(self, small_workload, paper_l6):
        run = run_model(small_workload, paper_l6, Model.UNIFIED, 4)
        assert 0 <= run.loops_not_fitting <= len(small_workload)

    def test_run_model_preserves_loop_order(self, small_workload, paper_l3):
        run = run_model(small_workload, paper_l3, Model.IDEAL, None)
        assert [ev.loop.name for ev in run.evaluations] == [
            loop.name for loop in small_workload
        ]
