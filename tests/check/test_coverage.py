"""Tests for the full-grid static validation driver."""

from __future__ import annotations

from repro.check import CHECK_MODELS, run_static_validation
from repro.core.models import Model
from repro.workloads.kernels import all_kernels


def test_small_grid_proves_everything():
    result = run_static_validation(n_loops=6)
    assert result.ok, result.format()
    assert len(result.points) == 6 * len(CHECK_MODELS)
    assert result.findings_count == 0
    assert result.failures == ()


def test_describe_and_format_surfaces():
    result = run_static_validation(n_loops=4)
    text = result.describe()
    assert "statically verified" in text
    assert "all proved" in text
    full = result.format()
    assert full.startswith("static check:")
    assert "proved legal" in full


def test_explicit_loops_override():
    kernels = all_kernels()[:2]
    result = run_static_validation(
        loops=kernels, models=((Model.UNIFIED, 32),)
    )
    assert len(result.points) == 2
    assert result.ok, result.format()


def test_progress_callback_counts_points():
    seen: list[tuple[int, int]] = []
    result = run_static_validation(
        n_loops=3,
        models=((Model.IDEAL, None),),
        progress=lambda done, total: seen.append((done, total)),
    )
    assert result.ok
    assert seen[-1] == (len(result.points), len(result.points))


def test_reproducers_round_trip_the_wire_shape():
    result = run_static_validation(n_loops=2)
    for point in result.points:
        loop_spec = point.reproducer["loop"]
        assert loop_spec["kind"] == "suite"
        assert loop_spec["n_loops"] == 2
        assert point.reproducer["machine"]["kind"] == "paper"
        assert point.reproducer["static"] is True
