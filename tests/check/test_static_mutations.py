"""Static mutation tests: the verifier must reject injected bugs.

The dynamic twin of this file (``tests/validate/test_mutations.py``)
proves the *simulator* catches each corruption by executing it; here the
same classes of corruption must be rejected **without execution**, from
the schedule/allocation structures alone, with actionable coordinates.

Each test corrupts a real artifact through the
:func:`repro.check.invariants.allocation_of` seam -- the evaluation's
claims stay untouched, so the verifier's independent re-derivation is
what detects the lie.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.check import check_evaluation
from repro.check import invariants
from repro.check.invariants import allocation_of
from repro.core.models import Model
from repro.ir.operation import OpType
from repro.machine.config import paper_config
from repro.pipeline.pipelines import run_evaluation
from repro.regalloc.firstfit import AllocationResult, PlacedLifetime, first_fit
from repro.workloads.kernels import all_kernels

SEAM = "repro.check.invariants.allocation_of"


@pytest.fixture(scope="module")
def machine():
    return paper_config(6)


@pytest.fixture(scope="module")
def loop():
    return {k.name: k for k in all_kernels()}["daxpy"]


def test_clean_point_is_proved(loop, machine):
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    check = check_evaluation(evaluation)
    assert check.ok, check.describe()
    assert check.edges_checked > 0
    assert check.values_checked > 0


def test_shift_clobber_is_caught(loop, machine, monkeypatch):
    """All register shifts forced to 0: simultaneously live values land in
    the same cell of the rotating file, visible as interval overlap on the
    sheared line -- no simulation required."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_of(evaluation)
    flattened = AllocationResult(
        allocation.result.ii,
        {
            op_id: PlacedLifetime(placed.lifetime, 0, placed.ii)
            for op_id, placed in allocation.result.placements.items()
        },
    )
    corrupted = dataclasses.replace(allocation, result=flattened)
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    check = check_evaluation(evaluation)
    assert not check.ok
    overlaps = [f for f in check.findings if f.kind == "allocation"]
    assert overlaps, check.describe()
    finding = overlaps[0]
    assert "overlap" in finding.message
    assert finding.op is not None
    assert finding.cycle is not None
    assert finding.file is not None
    assert finding.register is not None
    assert "reproduce:" in check.describe()


def test_dropped_reload_placement_is_caught(loop, machine, monkeypatch):
    """A spilled point whose reload placement is deleted: the placement
    table no longer covers every value the schedule defines."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 6)
    assert evaluation.spilled_values > 0, "budget must force spills"
    schedule, allocation = allocation_of(evaluation)
    reloads = [
        op
        for op in schedule.graph.operations
        if op.is_spill and op.optype is OpType.LOAD
    ]
    assert reloads, "spilled schedule must carry sld ops"
    victim = reloads[0]
    placements = dict(allocation.result.placements)
    del placements[victim.op_id]
    corrupted = dataclasses.replace(
        allocation,
        result=AllocationResult(allocation.result.ii, placements),
    )
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    check = check_evaluation(evaluation)
    assert not check.ok
    missing = [
        f
        for f in check.findings
        if f.kind == "allocation" and "no register placement" in f.message
    ]
    assert missing, check.describe()
    assert missing[0].op is not None
    assert victim.name in missing[0].op
    assert missing[0].file is not None


def test_shrunk_lifetime_is_caught(loop, machine, monkeypatch):
    """The longest lifetime truncated and the file repacked: the placed
    interval no longer matches the schedule's own operand distances."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_of(evaluation)
    lts = dict(allocation.lifetimes)
    longest = max(lts.values(), key=lambda lt: lt.end - lt.start)
    assert longest.end - longest.start > schedule.ii
    lts[longest.op_id] = dataclasses.replace(longest, end=longest.start + 1)
    corrupted = dataclasses.replace(
        allocation,
        lifetimes=lts,
        result=first_fit(lts.values(), schedule.ii),
    )
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    check = check_evaluation(evaluation)
    assert not check.ok
    fidelity = [f for f in check.findings if f.kind == "lifetime"]
    assert fidelity, check.describe()
    finding = fidelity[0]
    assert finding.op is not None
    assert finding.cycle is not None
    assert finding.file is not None
    assert finding.expected is not None
    assert finding.observed is not None


def test_oversubscribed_reservation_row_is_caught(loop, machine, monkeypatch):
    """One op moved onto another's exact issue slot: two operations now
    claim the same (row, pool, instance) cell of the reservation table."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_of(evaluation)
    by_pool: dict[str, list[int]] = {}
    for op_id, placement in schedule.placements.items():
        by_pool.setdefault(placement.pool, []).append(op_id)
    pool, ids = next(
        (pool, sorted(ids))
        for pool, ids in sorted(by_pool.items())
        if len(ids) >= 2
    )
    first, second = ids[0], ids[1]
    placements = dict(schedule.placements)
    placements[second] = placements[first]
    corrupted = dataclasses.replace(schedule, placements=placements)
    monkeypatch.setattr(SEAM, lambda _ev: (corrupted, allocation))

    check = check_evaluation(evaluation)
    assert not check.ok
    clashes = [
        f
        for f in check.findings
        if f.kind == "resource" and "oversubscribed" in f.message
    ]
    assert clashes, check.describe()
    finding = clashes[0]
    assert finding.op is not None
    assert finding.cycle is not None
    assert finding.file is not None and pool in finding.file


def test_inflated_register_claim_is_caught(loop, machine, monkeypatch):
    """A claim of more registers than the placements span: the verifier
    recomputes the span minimum and reports the requirement lie."""
    evaluation = run_evaluation(loop, machine, Model.UNIFIED, 32)
    schedule, allocation = allocation_of(evaluation)
    stretched = dict(allocation.result.placements)
    op_id, placed = max(stretched.items(), key=lambda kv: kv[1].start)
    stretched[op_id] = PlacedLifetime(
        placed.lifetime, placed.shift + 4, placed.ii
    )
    corrupted = dataclasses.replace(
        allocation,
        result=AllocationResult(allocation.result.ii, stretched),
    )
    monkeypatch.setattr(SEAM, lambda _ev: (schedule, corrupted))

    check = check_evaluation(evaluation)
    assert not check.ok
    kinds = {f.kind for f in check.findings}
    assert "requirement" in kinds, check.describe()


def test_mutation_seam_is_module_level(monkeypatch):
    """The seam these teeth rely on must stay monkeypatchable."""
    sentinel = object()
    monkeypatch.setattr(SEAM, lambda _ev: sentinel)
    assert invariants.allocation_of(None) is sentinel
