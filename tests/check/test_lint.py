"""Tests for the custom AST lint engine and its rule catalog.

Each rule is exercised against a synthetic source tree written to a tmp
directory shaped like ``src/repro`` (the rules scope themselves by
relative path), plus one run against the real tree, which must be clean
-- the lint gate in CI depends on that.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.check.lint import (
    RULES,
    default_root,
    format_report,
    list_rules,
    run_lint,
)


def _write(root: Path, relative: str, source: str) -> None:
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))


def _violations(root: Path, rule: str):
    return [v for v in run_lint(root=root).violations if v.rule == rule]


def test_real_tree_is_clean():
    report = run_lint()
    assert report.ok, format_report(report)
    assert report.files_checked > 50
    assert set(report.rules) == set(RULES)


def test_determinism_imports_flagged_in_cached_paths(tmp_path):
    _write(
        tmp_path,
        "sched/bad.py",
        """\
        import random

        def pick() -> int:
            return random.randint(0, 1)
        """,
    )
    found = _violations(tmp_path, "determinism-imports")
    assert len(found) == 1
    assert found[0].path == "sched/bad.py"
    assert "random" in found[0].message


def test_determinism_imports_allowed_outside_cached_paths(tmp_path):
    _write(
        tmp_path,
        "workloads/fine.py",
        """\
        import random

        def pick() -> int:
            return random.randint(0, 1)
        """,
    )
    assert _violations(tmp_path, "determinism-imports") == []


def test_set_iteration_flagged(tmp_path):
    _write(
        tmp_path,
        "regalloc/bad.py",
        """\
        def spread(values: set) -> list:
            return [v for v in values if v > 0] + [w for w in {1, 2}]
        """,
    )
    found = _violations(tmp_path, "set-iteration")
    assert len(found) == 1  # only the set literal is provably unordered
    assert "hash-seed" in found[0].message


def test_sorted_set_iteration_is_fine(tmp_path):
    _write(
        tmp_path,
        "regalloc/fine.py",
        """\
        def spread(values: set) -> list:
            return [v for v in sorted(values)]
        """,
    )
    assert _violations(tmp_path, "set-iteration") == []


def test_frozen_wire_types_flagged(tmp_path):
    _write(
        tmp_path,
        "api/types.py",
        """\
        from dataclasses import dataclass


        @dataclass
        class Mutable:
            x: int = 0
        """,
    )
    found = _violations(tmp_path, "frozen-wire-types")
    assert len(found) == 1
    assert "Mutable" in found[0].message


def test_typing_completeness_flags_bare_signatures(tmp_path):
    _write(
        tmp_path,
        "core/bad.py",
        """\
        def half_typed(a: int, b) -> int:
            return a

        def no_return(a: int):
            return a
        """,
    )
    found = _violations(tmp_path, "typing-completeness")
    assert len(found) == 2
    assert "b" in found[0].message
    assert "return type" in found[1].message


def test_parse_error_becomes_violation(tmp_path):
    _write(tmp_path, "core/broken.py", "def oops(:\n")
    report = run_lint(root=tmp_path)
    assert not report.ok
    assert report.violations[0].rule == "parse"


def test_rule_selection_and_unknown_rule(tmp_path):
    _write(tmp_path, "sched/bad.py", "import random\n")
    report = run_lint(root=tmp_path, rules=["set-iteration"])
    assert report.ok  # the determinism rule was not selected
    with pytest.raises(ValueError, match="unknown lint rule"):
        run_lint(root=tmp_path, rules=["no-such-rule"])


def test_list_rules_matches_registry():
    catalog = dict(list_rules())
    assert set(catalog) == set(RULES)
    assert all(doc for doc in catalog.values())


def test_format_report_footer(tmp_path):
    _write(tmp_path, "core/fine.py", "X: int = 1\n")
    text = format_report(run_lint(root=tmp_path))
    assert text.endswith("clean")
    _write(tmp_path, "sched/bad.py", "import random\n")
    text = format_report(run_lint(root=tmp_path))
    assert "violation" in text


def test_default_root_is_the_package():
    assert default_root().name == "repro"
    assert (default_root() / "check" / "lint.py").exists()
