"""Unit tests for the static invariant verifier.

The mutation file proves the verifier has teeth; this file pins down the
acceptance side (clean points of every model prove), the structured
``Finding``/``StaticCheck`` surfaces, and regressions for verifier bugs
found during development.
"""

from __future__ import annotations

import pytest

from repro.check import check_evaluation
from repro.check.invariants import (
    Finding,
    StaticCheckError,
    allocation_of,
    interference_bound,
    rebuild_lifetimes,
    span_registers,
)
from repro.core.models import Model
from repro.machine.config import clustered_config, paper_config
from repro.pipeline.pipelines import run_evaluation
from repro.spill.spiller import spill_value, spillable_values
from repro.workloads.kernels import all_kernels

KERNELS = {k.name: k for k in all_kernels()}


@pytest.fixture(scope="module")
def machine():
    return paper_config(6)


@pytest.mark.parametrize(
    "model,budget",
    [
        (Model.IDEAL, None),
        (Model.UNIFIED, 32),
        (Model.PARTITIONED, 16),
        (Model.SWAPPED, 16),
    ],
)
def test_every_model_proves_clean(machine, model, budget):
    evaluation = run_evaluation(KERNELS["daxpy"], machine, model, budget)
    check = check_evaluation(evaluation)
    assert check.ok, check.describe()
    assert check.model == model.value
    assert check.ii == evaluation.ii


def test_spilled_point_proves(machine):
    evaluation = run_evaluation(KERNELS["daxpy"], machine, Model.UNIFIED, 6)
    assert evaluation.spilled_values > 0
    check = check_evaluation(evaluation)
    assert check.ok, check.describe()


def test_dual_point_on_clustered_machine_proves():
    machine = clustered_config(2, 6)
    evaluation = run_evaluation(
        KERNELS["daxpy"], machine, Model.SWAPPED, 16
    )
    check = check_evaluation(evaluation)
    assert check.ok, check.describe()


def test_pre_spilled_input_graph_proves(machine):
    """Regression: ``spilled_values`` counts pipeline spills only.

    A loop whose *source* graph already carries sst/sld chains (the
    hypothesis differential suite builds these through the real spiller)
    evaluates with ``spilled_values == 0`` under an unconstrained model;
    the verifier must charge the claim only with stores the pipeline
    added, not stores the input arrived with.
    """
    loop = KERNELS["daxpy"]
    victims = spillable_values(loop.graph)
    assert victims, "daxpy must have a spillable value"
    import dataclasses

    pre_spilled = dataclasses.replace(
        loop, graph=spill_value(loop.graph, victims[0])
    )
    evaluation = run_evaluation(pre_spilled, machine, Model.IDEAL, None)
    assert evaluation.spilled_values == 0
    check = check_evaluation(evaluation)
    assert check.ok, check.describe()


def test_finding_describe_carries_coordinates():
    finding = Finding(
        kind="allocation",
        message="values collide",
        op="fmul3",
        cycle=7,
        file="cluster0",
        register=4,
        expected=2,
        observed=3,
    )
    text = finding.describe()
    assert "[static:allocation]" in text
    assert "fmul3" in text
    assert "cycle=7" in text
    assert "r4" in text


def test_reproducer_is_wire_shaped(machine):
    evaluation = run_evaluation(KERNELS["daxpy"], machine, Model.UNIFIED, 32)
    check = check_evaluation(evaluation)
    assert check.reproducer["static"] is True
    assert check.reproducer["model"] == "unified"
    assert check.reproducer["register_budget"] == 32
    assert check.reproducer["loop"] == {"name": "daxpy"}


def test_allocation_of_rejects_bare_evaluation(machine):
    evaluation = run_evaluation(KERNELS["daxpy"], machine, Model.UNIFIED, 32)
    import dataclasses

    gutted = dataclasses.replace(
        evaluation,
        requirement=dataclasses.replace(
            evaluation.requirement, unified=None, dual=None
        ),
    )
    with pytest.raises(StaticCheckError):
        allocation_of(gutted)


def test_interference_bound_folds_modulo(machine):
    """The MaxLive recomputation must fold stage copies onto kernel rows:
    it equals the allocator's own claim on a real schedule."""
    evaluation = run_evaluation(KERNELS["daxpy"], machine, Model.UNIFIED, 32)
    _, allocation = allocation_of(evaluation)
    rebuilt = rebuild_lifetimes(allocation.schedule)
    bound = interference_bound(rebuilt.values(), allocation.schedule.ii)
    assert bound == allocation.max_live
    # and the span minimum the claim is checked against is >= the bound
    assert (
        span_registers(
            allocation.result.placements.values(), allocation.schedule.ii
        )
        >= bound
    )
