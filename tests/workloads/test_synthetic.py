"""Unit tests for the synthetic loop generator."""

import pytest

from repro.ir.operation import OpType
from repro.ir.validate import validate_graph
from repro.sched.modulo import modulo_schedule
from repro.workloads.synthetic import (
    SizeClass,
    SyntheticConfig,
    generate_loop,
    generate_suite,
)


class TestReproducibility:
    def test_same_seed_same_loop(self):
        a = generate_loop(7, seed=123)
        b = generate_loop(7, seed=123)
        assert a.size == b.size
        assert a.trip_count == b.trip_count
        assert [op.optype for op in a.graph.operations] == [
            op.optype for op in b.graph.operations
        ]

    def test_different_seeds_differ_somewhere(self):
        sizes_a = [generate_loop(i, seed=1).size for i in range(10)]
        sizes_b = [generate_loop(i, seed=2).size for i in range(10)]
        assert sizes_a != sizes_b

    def test_suite_is_indexed_family(self):
        suite = generate_suite(5, seed=9)
        singles = [generate_loop(i, seed=9) for i in range(5)]
        assert [l.size for l in suite] == [l.size for l in singles]


class TestWellFormedness:
    @pytest.mark.parametrize("index", range(25))
    def test_generated_loops_validate(self, index):
        loop = generate_loop(index)
        validate_graph(loop.graph)

    @pytest.mark.parametrize("index", range(10))
    def test_generated_loops_schedule(self, index, paper_l6):
        loop = generate_loop(index)
        schedule = modulo_schedule(loop.graph, paper_l6)
        schedule.verify()

    def test_no_dead_values(self):
        for index in range(15):
            graph = generate_loop(index).graph
            consumed = set()
            for op in graph.operations:
                for ref in op.value_operands():
                    consumed.add(ref.producer)
            for op in graph.values():
                carried = any(
                    ref.distance > 0
                    for other in graph.operations
                    for ref in other.value_operands()
                    if ref.producer == op.op_id
                )
                assert op.op_id in consumed or carried

    def test_every_loop_has_memory_traffic(self):
        for index in range(15):
            graph = generate_loop(index).graph
            assert graph.count(OpType.LOAD) + graph.count(OpType.STORE) > 0


class TestConfiguration:
    def test_size_class_mixture_mode(self):
        cfg = SyntheticConfig(
            size_mu=None,
            size_classes=(SizeClass("only", 1.0, 4, 4),),
            recurrence_prob=0.0,
        )
        for i in range(5):
            loop = generate_loop(i, config=cfg)
            arith = sum(
                1
                for op in loop.graph.operations
                if not op.optype.is_memory
            )
            assert arith >= 4  # sink merging may add a few

    def test_lognormal_sizes_within_bounds(self):
        cfg = SyntheticConfig(size_mu=2.0, size_min=3, size_max=10)
        for i in range(20):
            loop = generate_loop(i, config=cfg)
            arith = sum(
                1 for op in loop.graph.operations if not op.optype.is_memory
            )
            # Sink merging can add ops but the base draw respects the cap.
            assert arith >= 3

    def test_trip_counts_capped(self):
        cfg = SyntheticConfig(max_trip=100)
        for i in range(20):
            assert generate_loop(i, config=cfg).trip_count <= 100

    def test_recurrences_appear(self):
        cfg = SyntheticConfig(recurrence_prob=1.0)
        loop = generate_loop(0, config=cfg)
        assert any(
            ref.distance > 0
            for op in loop.graph.operations
            for ref in op.value_operands()
        )

    def test_no_recurrences_when_disabled(self):
        cfg = SyntheticConfig(recurrence_prob=0.0)
        for i in range(10):
            loop = generate_loop(i, config=cfg)
            assert all(
                ref.distance == 0
                for op in loop.graph.operations
                for ref in op.value_operands()
            )
