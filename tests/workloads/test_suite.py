"""Unit tests for workload suites."""

from repro.workloads.kernels import kernel_names
from repro.workloads.suite import Suite, perfect_club_like, quick_suite


class TestPerfectClubLike:
    def test_requested_size(self):
        suite = perfect_club_like(100)
        assert len(suite) == 100

    def test_kernels_included_first(self):
        suite = perfect_club_like(100)
        names = [loop.name for loop in suite][: len(kernel_names())]
        assert names == kernel_names()

    def test_kernels_can_be_excluded(self):
        suite = perfect_club_like(50, include_kernels=False)
        assert all(loop.name.startswith("synthetic") for loop in suite)

    def test_deterministic(self):
        a = perfect_club_like(60)
        b = perfect_club_like(60)
        assert [l.name for l in a] == [l.name for l in b]
        assert [l.trip_count for l in a] == [l.trip_count for l in b]

    def test_total_trips_positive(self):
        suite = quick_suite(20)
        assert suite.total_trips > 0

    def test_seed_recorded(self):
        assert perfect_club_like(20, seed=42).seed == 42
        assert perfect_club_like(20).seed is not None

    def test_nondefault_seed_in_name(self):
        assert "s42" in perfect_club_like(20, seed=42).name

    def test_subset_preserves_seed(self):
        assert perfect_club_like(20, seed=42).subset(5).seed == 42


class TestSubset:
    def test_subset_size(self):
        suite = perfect_club_like(100)
        sub = suite.subset(10)
        assert len(sub) == 10

    def test_subset_strided_across_suite(self):
        suite = perfect_club_like(100)
        sub = suite.subset(10)
        positions = [list(suite.loops).index(l) for l in sub.loops]
        assert positions[0] == 0
        assert positions[-1] >= 80  # reaches into the tail

    def test_subset_of_smaller_suite_is_identity(self):
        suite = perfect_club_like(20)
        assert suite.subset(50) is suite

    def test_subset_name(self):
        suite = Suite("s", perfect_club_like(30).loops)
        assert suite.subset(5).name == "s-sub5"
