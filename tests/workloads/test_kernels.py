"""Unit tests for the hand-written kernels."""

import pytest

from repro.ir.operation import OpType
from repro.ir.validate import validate_graph
from repro.sched.modulo import modulo_schedule
from repro.workloads.kernels import (
    all_kernels,
    example_loop,
    kernel_names,
    make_kernel,
)


class TestRegistry:
    def test_at_least_thirty_kernels(self):
        assert len(kernel_names()) >= 30

    def test_names_sorted_and_unique(self):
        names = kernel_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_make_kernel_by_name(self):
        loop = make_kernel("daxpy")
        assert loop.name == "daxpy"

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError):
            make_kernel("not-a-kernel")

    def test_all_kernels_instantiates_everything(self):
        loops = all_kernels()
        assert len(loops) == len(kernel_names())


class TestWellFormedness:
    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_validates(self, name):
        validate_graph(make_kernel(name).graph)

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_has_source_and_trips(self, name):
        loop = make_kernel(name)
        assert loop.source
        assert loop.trip_count > 0

    @pytest.mark.parametrize("name", kernel_names())
    def test_kernel_stores_something(self, name):
        graph = make_kernel(name).graph
        has_store = graph.count(OpType.STORE) > 0
        has_reduction = any(
            ref.distance > 0
            for op in graph.operations
            for ref in op.value_operands()
        )
        assert has_store or has_reduction

    def test_kernels_are_fresh_instances(self):
        a = make_kernel("daxpy")
        b = make_kernel("daxpy")
        assert a.graph is not b.graph


class TestExampleLoop:
    def test_structure_matches_figure_2b(self):
        loop = example_loop()
        graph = loop.graph
        named = {op.name: op for op in graph.operations}
        assert set(named) == {"L1", "L2", "M3", "A4", "M5", "A6", "S7"}
        consumers = {
            name: sorted(c.name for c, _ in graph.consumers(op.op_id))
            for name, op in named.items()
            if op.defines_value
        }
        assert consumers["L1"] == ["A6", "M3"]
        assert consumers["L2"] == ["A4"]
        assert consumers["M3"] == ["A4"]
        assert consumers["A4"] == ["M5"]
        assert consumers["M5"] == ["A6"]
        assert consumers["A6"] == ["S7"]

    def test_op_types(self):
        graph = example_loop().graph
        named = {op.name: op.optype for op in graph.operations}
        assert named["M3"] is OpType.FMUL and named["M5"] is OpType.FMUL
        assert named["A4"] is OpType.FADD and named["A6"] is OpType.FADD

    def test_schedulable_at_ii_one(self, example_machine):
        schedule = modulo_schedule(example_loop().graph, example_machine)
        assert schedule.ii == 1
