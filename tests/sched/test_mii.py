"""Unit tests for ResMII / RecMII."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.machine.config import paper_config, pxly
from repro.sched.mii import minimum_ii, rec_mii, res_mii
from repro.workloads.kernels import example_loop


def _loop_with_n_muls(n):
    b = LoopBuilder()
    x = b.load("x")
    v = x
    for _ in range(n):
        v = b.mul(v, "c")
    b.store(v, "y")
    return b.build()


class TestResMII:
    def test_example_loop_is_one(self, example_machine):
        assert res_mii(example_loop().graph, example_machine) == 1

    def test_multiplier_bound(self, paper_l3):
        loop = _loop_with_n_muls(6)
        # 6 multiplies over 2 multipliers -> at least 3.
        assert res_mii(loop.graph, paper_l3) == 3

    def test_memory_bound(self, paper_l3):
        b = LoopBuilder()
        vals = [b.load(f"x{i}") for i in range(8)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.store(acc, "y")
        # 9 memory ops over 2 units -> ceil(9/2) = 5.
        assert res_mii(b.build().graph, paper_l3) == 5

    def test_split_ports_use_store_pool(self):
        b = LoopBuilder()
        x = b.load("x")
        for i in range(3):
            b.store(b.add(x, float(i)), f"y{i}")
        loop = b.build()
        # 3 stores over 1 store port -> 3 on PxLy machines.
        assert res_mii(loop.graph, pxly(2, 3)) == 3
        # On the combined-memory paper machine: 4 mem ops / 2 units = 2.
        assert res_mii(loop.graph, paper_config(3)) == 2


class TestRecMII:
    def test_acyclic_graph_is_one(self, paper_l3):
        assert rec_mii(example_loop().graph, paper_l3) == 1

    def test_accumulator_recurrence(self, paper_l3):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s, distance=1)
        # s -> s with latency 3, distance 1: RecMII = 3.
        assert rec_mii(b.build().graph, paper_l3) == 3

    def test_latency_scales_recurrence(self, paper_l6):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s, distance=1)
        assert rec_mii(b.build().graph, paper_l6) == 6

    def test_distance_two_halves_recmii(self, paper_l6):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s, distance=2)
        assert rec_mii(b.build().graph, paper_l6) == 3

    def test_two_op_cycle(self, paper_l3):
        b = LoopBuilder()
        ph = b.placeholder()
        t = b.mul(ph, "c")
        u = b.add(t, b.load("x"))
        b.bind(ph, u, distance=1)
        b.store(u, "y")
        # Cycle latency 3 + 3 = 6 over distance 1.
        assert rec_mii(b.build().graph, paper_l3) == 6


class TestMinimumII:
    def test_mii_is_max_of_bounds(self, paper_l3):
        b = LoopBuilder()
        acc = b.placeholder()
        s = b.add(acc, b.load("x"))
        b.bind(acc, s, distance=1)
        loop = b.build()
        report = minimum_ii(loop.graph, paper_l3)
        assert report.res == 1
        assert report.rec == 3
        assert report.mii == 3

    def test_example_loop_mii_one(self, example_machine):
        assert minimum_ii(example_loop().graph, example_machine).mii == 1
