"""Unit tests for Schedule/Placement data structures and verification."""

import pytest

from repro.ir.ddg import DependenceGraph
from repro.ir.operation import OpType, ValueRef
from repro.machine.config import paper_config
from repro.machine.resources import ADDER, MEM
from repro.sched.schedule import Placement, Schedule, ScheduleError


@pytest.fixture()
def tiny():
    g = DependenceGraph("tiny")
    load = g.add_operation(OpType.LOAD, name="L", symbol="x")
    add = g.add_operation(
        OpType.FADD, (ValueRef(load.op_id), ValueRef(load.op_id)), name="A"
    )
    g.add_operation(OpType.STORE, (ValueRef(add.op_id),), name="S", symbol="y")
    return g


def _schedule(graph, ii, times, machine=None):
    machine = machine or paper_config(3)
    placements = {}
    pools = {"L": MEM, "A": ADDER, "S": MEM}
    instances = {"L": 0, "A": 0, "S": 1}
    for op in graph.operations:
        placements[op.op_id] = Placement(
            time=times[op.name], pool=pools[op.name], instance=instances[op.name]
        )
    return Schedule(graph, machine, ii, placements)


class TestVerification:
    def test_valid_schedule(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        s.verify()

    def test_dependence_violation_detected(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 0, "S": 4})
        with pytest.raises(ScheduleError, match="dependence"):
            s.verify()

    def test_resource_conflict_detected(self, tiny):
        # L and S on the same memory instance in the same row (ii=2).
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        bad = {
            op_id: p for op_id, p in s.placements.items()
        }
        bad[2] = Placement(time=4, pool=MEM, instance=0)  # row 0, same as L
        with pytest.raises(ScheduleError, match="share unit"):
            Schedule(tiny, s.machine, 2, bad).verify()

    def test_negative_time_rejected(self, tiny):
        s = _schedule(tiny, 2, {"L": -1, "A": 1, "S": 4})
        with pytest.raises(ScheduleError, match="negative"):
            s.verify()

    def test_missing_placement_rejected(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        partial = dict(s.placements)
        del partial[0]
        with pytest.raises(ScheduleError, match="cover"):
            Schedule(tiny, s.machine, 2, partial).verify()

    def test_wrong_pool_rejected(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        bad = dict(s.placements)
        bad[1] = Placement(time=1, pool=MEM, instance=1)
        with pytest.raises(ScheduleError):
            Schedule(tiny, s.machine, 2, bad).verify()

    def test_ii_zero_rejected(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        with pytest.raises(ScheduleError):
            Schedule(tiny, s.machine, 0, dict(s.placements)).verify()


class TestAccessors:
    def test_rows_and_stages(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        assert s.placement(0).row(2) == 0
        assert s.placement(2).row(2) == 0
        assert s.placement(2).stage(2) == 2
        assert s.stage_count == 3

    def test_makespan(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        assert s.makespan == 5

    def test_cluster_of(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        assert s.cluster_of(0) == 0  # mem instance 0
        assert s.cluster_of(2) == 1  # mem instance 1

    def test_ops_in_cluster(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        names = [op.name for op in s.ops_in_cluster(0)]
        assert names == ["L", "A"]

    def test_format_kernel_mentions_stages(self, tiny):
        s = _schedule(tiny, 2, {"L": 0, "A": 1, "S": 4})
        text = s.format_kernel()
        assert "row 0" in text and "[2] S" in text
