"""Unit tests for the iterative modulo scheduler."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.machine.config import paper_config
from repro.sched.mii import minimum_ii
from repro.sched.modulo import SchedulingFailure, modulo_schedule, schedule_loop
from repro.sched.schedule import ScheduleError
from repro.workloads.kernels import all_kernels, example_loop


class TestExampleLoop:
    def test_ii_is_one(self, example_schedule):
        assert example_schedule.ii == 1

    def test_schedule_verifies(self, example_schedule):
        example_schedule.verify()

    def test_paper_issue_times(self, example_schedule):
        """The critical-path issue times of Figure 3 (shifted to t=0)."""
        names = {
            op.name: example_schedule.time_of(op.op_id)
            for op in example_schedule.graph.operations
        }
        base = names["L1"]
        offsets = {n: t - base for n, t in names.items()}
        assert offsets == {
            "L1": 0, "L2": 0, "M3": 1, "A4": 4, "M5": 7, "A6": 10, "S7": 13,
        }

    def test_fourteen_stages(self, example_schedule):
        assert example_schedule.stage_count == 14

    def test_initial_clusters_match_paper(self, example_schedule):
        left = {
            op.name
            for op in example_schedule.graph.operations
            if example_schedule.cluster_of(op.op_id) == 0
        }
        assert left == {"L1", "L2", "M3", "A4"}


class TestGeneralProperties:
    @pytest.mark.parametrize("latency", [3, 6])
    def test_all_kernels_schedule_and_verify(self, latency):
        machine = paper_config(latency)
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, machine)
            schedule.verify()

    def test_ii_at_least_mii(self, paper_l6):
        for loop in all_kernels():
            schedule = modulo_schedule(loop.graph, paper_l6)
            assert schedule.ii >= minimum_ii(loop.graph, paper_l6).mii

    def test_min_ii_respected(self, paper_l3):
        loop = example_loop()
        schedule = modulo_schedule(loop.graph, paper_l3, min_ii=5)
        assert schedule.ii >= 5
        schedule.verify()

    def test_max_ii_failure(self, paper_l3):
        b = LoopBuilder()
        vals = [b.load(f"x{i}") for i in range(9)]
        acc = vals[0]
        for v in vals[1:]:
            acc = b.add(acc, v)
        b.store(acc, "y")
        loop = b.build()
        with pytest.raises(SchedulingFailure):
            modulo_schedule(loop.graph, paper_l3, max_ii=2)

    def test_schedule_loop_wrapper(self, paper_l3):
        schedule = schedule_loop(example_loop(), paper_l3)
        schedule.verify()

    def test_recurrence_constrained_loop(self, paper_l6):
        b = LoopBuilder()
        ph = b.placeholder()
        t = b.mul(ph, "a")
        u = b.add(t, b.load("x"))
        b.bind(ph, u, distance=1)
        b.store(u, "y")
        loop = b.build()
        schedule = modulo_schedule(loop.graph, paper_l6)
        assert schedule.ii == 12  # two 6-cycle ops around a distance-1 cycle
        schedule.verify()


class TestResourceBinding:
    def test_no_two_ops_share_unit_row(self, paper_l3):
        for loop in all_kernels()[:10]:
            schedule = modulo_schedule(loop.graph, paper_l3)
            seen = set()
            for op in schedule.graph.operations:
                p = schedule.placement(op.op_id)
                key = (p.time % schedule.ii, p.pool, p.instance)
                assert key not in seen
                seen.add(key)

    def test_kernel_rows_partition_ops(self, example_schedule):
        rows = example_schedule.kernel_rows()
        assert sum(len(r) for r in rows) == len(example_schedule.graph)

    def test_with_instances_swap(self, example_schedule):
        ops = {
            op.name: op.op_id for op in example_schedule.graph.operations
        }
        a4 = example_schedule.placement(ops["A4"])
        a6 = example_schedule.placement(ops["A6"])
        swapped = example_schedule.with_instances(
            {ops["A4"]: a6.instance, ops["A6"]: a4.instance}
        )
        assert swapped.cluster_of(ops["A4"]) == 1
        assert swapped.cluster_of(ops["A6"]) == 0

    def test_with_instances_conflict_rejected(self, example_schedule):
        ops = {op.name: op.op_id for op in example_schedule.graph.operations}
        a6 = example_schedule.placement(ops["A6"])
        with pytest.raises(ScheduleError):
            # Move A4 onto A6's unit without moving A6: same row collision.
            example_schedule.with_instances({ops["A4"]: a6.instance})

    def test_with_instances_out_of_range(self, example_schedule):
        ops = {op.name: op.op_id for op in example_schedule.graph.operations}
        with pytest.raises(ScheduleError):
            example_schedule.with_instances({ops["A4"]: 9})
