"""Unit tests for height-based scheduling priorities."""

import pytest

from repro.sched.priority import heights, priority_order
from repro.workloads.kernels import example_loop


class TestHeights:
    def test_example_heights(self, example_machine):
        graph = example_loop().graph
        h = heights(graph, example_machine, ii=1)
        named = {graph.op(i).name: v for i, v in h.items()}
        # Chain: L1 -> M3 -> A4 -> M5 -> A6 -> S7 with latencies 1/3/3/3/3.
        assert named["S7"] == 0
        assert named["A6"] == 3
        assert named["M5"] == 6
        assert named["A4"] == 9
        assert named["M3"] == 12
        assert named["L1"] == 13
        assert named["L2"] == 10

    def test_priority_order_starts_with_critical_path(self, example_machine):
        graph = example_loop().graph
        order = priority_order(graph, example_machine, ii=1)
        assert graph.op(order[0]).name == "L1"
        assert graph.op(order[-1]).name == "S7"

    def test_heights_nonnegative(self, example_machine):
        graph = example_loop().graph
        assert all(v >= 0 for v in heights(graph, example_machine, 1).values())

    def test_ii_reduces_carried_heights(self, paper_l6):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder()
        ph = b.placeholder()
        s = b.add(ph, b.load("x"))
        b.bind(ph, s, distance=1)
        b.store(s, "y")
        graph = b.build().graph
        # At II = RecMII = 6 the self-cycle contributes nothing extra.
        h6 = heights(graph, paper_l6, 6)
        h12 = heights(graph, paper_l6, 12)
        assert all(h12[k] <= h6[k] for k in h6)

    def test_below_recmii_diverges(self, paper_l6):
        from repro.ir.builder import LoopBuilder

        b = LoopBuilder()
        ph = b.placeholder()
        s = b.add(ph, b.load("x"))
        b.bind(ph, s, distance=1)
        b.store(s, "y")
        graph = b.build().graph
        with pytest.raises(ValueError, match="diverge"):
            heights(graph, paper_l6, 2)
