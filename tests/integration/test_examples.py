"""Every example script must run cleanly and print its key results."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {
        "quickstart.py",
        "custom_loop.py",
        "perfect_club_study.py",
        "simulate_kernel.py",
        "spill_pressure.py",
        "register_file_cost.py",
        "sweep_models.py",
    } <= names


def test_quickstart():
    out = _run("quickstart.py")
    assert "unified       42" in out.replace("  42", "  42")
    assert "42" in out and "29" in out and "23" in out
    assert "II = 1" in out


def test_custom_loop():
    out = _run("custom_loop.py")
    assert "complex-dot" in out
    assert "latency 6" in out


def test_perfect_club_study_small():
    out = _run("perfect_club_study.py", "24")
    assert "Figure 6" in out
    assert "Figure 9" in out


def test_simulate_kernel_default():
    out = _run("simulate_kernel.py")
    assert "reads verified" in out
    assert "subfile0" in out


def test_simulate_kernel_unknown_name_fails_cleanly():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "simulate_kernel.py"), "nope"],
        capture_output=True,
        text=True,
    )
    assert result.returncode != 0
    assert "unknown kernel" in result.stderr


def test_spill_pressure():
    out = _run("spill_pressure.py")
    assert "register budget sweep" in out
    assert "state_equation" in out


def test_register_file_cost():
    out = _run("register_file_cost.py")
    assert "non-consistent dual" in out
    assert "R=128" in out


def test_sweep_models_small():
    out = _run("sweep_models.py", "12")
    assert "rf-size" in out
    assert "clusters-vs-budget" in out
    assert "served from cache" in out
