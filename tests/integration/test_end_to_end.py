"""End-to-end pipeline tests: public API round trips."""

import pytest

import repro
from repro import (
    LoopBuilder,
    Model,
    evaluate_loop,
    modulo_schedule,
    paper_config,
    pressure_report,
    required_registers,
)
from repro.core.dualfile import allocate_dual
from repro.sim.executor import execute_kernel
from repro.workloads import example_loop, quick_suite


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_quickstart_snippet(self):
        """The docstring quickstart must keep working."""
        ev = evaluate_loop(example_loop(), paper_config(3), Model.SWAPPED, 32)
        assert ev.ii >= 1
        assert ev.requirement.registers <= 32

    def test_custom_loop_through_whole_pipeline(self):
        b = LoopBuilder("user-loop")
        x = b.load("x")
        acc = b.placeholder()
        s = b.add(acc, b.mul(x, x), name="sumsq")
        b.bind(acc, s, distance=1)
        b.store(b.mul(s, "scale"), "out")
        loop = b.build(trip_count=500)

        machine = paper_config(6)
        report = pressure_report(loop, machine)
        assert report.swapped <= report.partitioned <= report.unified

        ev = evaluate_loop(loop, machine, Model.PARTITIONED, 16)
        assert ev.fits
        alloc = ev.requirement.dual
        sim = execute_kernel(ev.schedule, alloc, iterations=8)
        assert sim.reads_checked > 0

    def test_requirement_from_schedule(self):
        schedule = modulo_schedule(example_loop().graph, paper_config(3))
        req = required_registers(schedule, Model.PARTITIONED)
        assert req.registers == allocate_dual(schedule).registers_required


class TestSuitePipeline:
    @pytest.mark.parametrize("latency", [3, 6])
    def test_small_suite_full_pipeline(self, latency):
        """Every suite loop survives schedule + all four models + budget."""
        machine = paper_config(latency)
        for loop in quick_suite(12):
            for model in Model:
                ev = evaluate_loop(
                    loop,
                    machine,
                    model,
                    None if model is Model.IDEAL else 64,
                )
                ev.schedule.verify()
                assert ev.requirement.registers >= 0

    def test_runner_smoke(self):
        """The run-everything driver produces all report sections."""
        from repro.experiments.runner import run_all

        text = run_all(n_loops=10, spill_loops=4)
        for marker in (
            "Table 1",
            "Table 2",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "non-consistent dual",
        ):
            assert marker in text
