"""Integration tests: the paper's qualitative claims on a mid-size suite.

These drive the complete pipeline (suite -> schedule -> allocate -> swap ->
spill -> aggregate) and assert the *relationships* the paper reports.  The
absolute percentages live in EXPERIMENTS.md; relationships must hold at any
suite size.
"""

import pytest

from repro.analysis.distributions import fraction_fitting
from repro.analysis.performance import relative_performance, run_model
from repro.core.models import Model
from repro.core.pressure import pressure_report
from repro.machine.config import paper_config
from repro.spill.traffic import aggregate_traffic
from repro.workloads.suite import quick_suite

SUITE_SIZE = 60


@pytest.fixture(scope="module")
def loops():
    return list(quick_suite(SUITE_SIZE))


@pytest.fixture(scope="module")
def reports_l6(loops):
    machine = paper_config(6)
    return [pressure_report(loop, machine) for loop in loops]


class TestRegisterRequirementClaims:
    def test_partitioning_reduces_requirements(self, reports_l6):
        """Section 5.3: partitioning produces a significant improvement."""
        assert sum(r.partitioned for r in reports_l6) < sum(
            r.unified for r in reports_l6
        )

    def test_more_loops_allocatable_at_32(self, reports_l6):
        """Conclusions: more loops fit a 32-register file with the dual."""
        unified = fraction_fitting([r.unified for r in reports_l6], 32)
        partitioned = fraction_fitting(
            [r.partitioned for r in reports_l6], 32
        )
        assert partitioned > unified

    def test_swapping_adds_smaller_improvement(self, reports_l6):
        """Section 5.3: swapped improves over partitioned, but less than
        partitioned improves over unified."""
        unified = sum(r.unified for r in reports_l6)
        partitioned = sum(r.partitioned for r in reports_l6)
        swapped = sum(r.swapped for r in reports_l6)
        assert swapped <= partitioned
        assert (partitioned - swapped) < (unified - partitioned)

    def test_improvement_grows_with_requirements(self, loops):
        """Section 5.3: partitioning gains more on configurations that
        require more registers (latency 6 vs latency 3)."""
        gain = {}
        for latency in (3, 6):
            machine = paper_config(latency)
            reports = [pressure_report(loop, machine) for loop in loops]
            gain[latency] = sum(r.unified - r.partitioned for r in reports)
        assert gain[6] > gain[3]


class TestPerformanceClaims:
    @pytest.fixture(scope="class")
    def spill_loops(self, loops):
        return loops[:24]

    @pytest.fixture(scope="class")
    def runs_l6_r32(self, spill_loops):
        machine = paper_config(6)
        return {
            model: run_model(
                spill_loops,
                machine,
                model,
                None if model is Model.IDEAL else 32,
            )
            for model in Model
        }

    def test_unified_degrades_most(self, runs_l6_r32):
        ideal = runs_l6_r32[Model.IDEAL].evaluations
        perf = {
            m: relative_performance(r.evaluations, ideal)
            for m, r in runs_l6_r32.items()
        }
        assert perf[Model.UNIFIED] < perf[Model.PARTITIONED]
        assert perf[Model.UNIFIED] < 1.0

    def test_swapped_at_least_partitioned_where_it_hurts(self, runs_l6_r32):
        """Section 5.4: the expensive swapping algorithm is justified where
        performance is highly degraded."""
        ideal = runs_l6_r32[Model.IDEAL].evaluations
        part = relative_performance(
            runs_l6_r32[Model.PARTITIONED].evaluations, ideal
        )
        swapped = relative_performance(
            runs_l6_r32[Model.SWAPPED].evaluations, ideal
        )
        assert swapped >= part - 0.01

    def test_spill_code_is_the_mechanism(self, runs_l6_r32):
        """The unified model's loss must coincide with more spill traffic."""
        assert (
            runs_l6_r32[Model.UNIFIED].total_spills
            > runs_l6_r32[Model.PARTITIONED].total_spills
        )
        assert aggregate_traffic(
            runs_l6_r32[Model.UNIFIED].evaluations
        ) > aggregate_traffic(runs_l6_r32[Model.IDEAL].evaluations)

    def test_dual_near_ideal_at_l3_r32(self, spill_loops):
        """Section 5.4: at latency 3 with 32 registers the dual models almost
        reach infinite-register performance."""
        machine = paper_config(3)
        ideal = run_model(spill_loops, machine, Model.IDEAL, None)
        swapped = run_model(spill_loops, machine, Model.SWAPPED, 32)
        perf = relative_performance(
            swapped.evaluations, ideal.evaluations
        )
        assert perf > 0.95
