"""The pass-pipeline refactor must not move a single number.

``tests/golden/default_suite.json`` was captured from the pre-pipeline
monolithic implementation (see ``tests/golden/generate.py``).  Recomputing
every row through today's code -- which routes ``pressure_report`` and
``evaluate_loop`` through :mod:`repro.pipeline` -- must reproduce the
snapshot exactly: same schedules, same allocations, same spill decisions.
"""

import json
from pathlib import Path

import pytest

from tests.golden import generate

GOLDEN_PATH = Path(generate.GOLDEN_PATH)


@pytest.fixture(scope="module")
def snapshot():
    return json.loads(GOLDEN_PATH.read_text())


def test_snapshot_suite_matches_generator(snapshot):
    assert snapshot["suite"]["n_loops"] == generate.N_PRESSURE_LOOPS


def test_pressure_rows_are_byte_identical(snapshot):
    assert generate.pressure_rows() == snapshot["pressure"]


def test_evaluation_rows_are_byte_identical(snapshot):
    assert generate.evaluation_rows() == snapshot["evaluations"]
