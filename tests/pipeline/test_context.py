"""ArtifactStore memoization and PassContext state transitions."""

import pytest

from repro.core.models import Model
from repro.machine.config import paper_config
from repro.pipeline.context import ArtifactStore, PassContext, default_store
from repro.pipeline.fingerprint import graph_fingerprint
from repro.workloads.kernels import example_loop
from repro.workloads.synthetic import generate_loop


@pytest.fixture()
def store():
    return ArtifactStore()


@pytest.fixture()
def ctx(paper_l3, store):
    return PassContext(loop=example_loop(), machine=paper_l3, store=store)


class TestArtifactStore:
    def test_memo_computes_once(self, store):
        calls = []
        for _ in range(3):
            value = store.memo(("k", 1), lambda: calls.append(1) or 42)
        assert value == 42
        assert calls == [1]
        assert store.stats.hits == 2
        assert store.stats.misses == 1

    def test_lru_eviction_bounds_entries(self):
        store = ArtifactStore(max_entries=2)
        store.memo(("a",), lambda: 1)
        store.memo(("b",), lambda: 2)
        store.memo(("c",), lambda: 3)
        assert len(store) == 2
        # "a" was evicted: recomputing it is a miss.
        store.memo(("a",), lambda: 1)
        assert store.stats.by_kind["a"] == [0, 2]

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ArtifactStore(max_entries=0)

    def test_schedule_shared_across_contexts(self, paper_l3, store):
        a = PassContext(loop=example_loop(), machine=paper_l3, store=store)
        b = PassContext(
            loop=example_loop(),
            machine=paper_l3,
            model=Model.SWAPPED,
            store=store,
        )
        # Same content -> the very same schedule object, although the loop
        # objects differ: this is the cross-model round-0 reuse.
        assert a.schedule is b.schedule
        assert a.lifetimes is b.lifetimes
        # Scheduled exactly once; every further access (including the ones
        # the lifetimes lookups make) is a hit.
        assert store.stats.by_kind["schedule"][1] == 1
        assert store.stats.by_kind["schedule"][0] >= 1

    def test_models_share_sub_artifacts(self, ctx, store):
        ideal = ctx.require(Model.IDEAL)
        unified = ctx.require(Model.UNIFIED)
        assert ideal.unified is unified.unified  # one allocation, two models
        partitioned = ctx.require(Model.PARTITIONED)
        swapped = ctx.require(Model.SWAPPED)
        assert partitioned.registers >= 1 and swapped.registers >= 1
        # Lifetimes were computed exactly once for all four models.
        assert store.stats.by_kind["lifetimes"][1] == 1

    def test_default_store_is_process_wide(self):
        assert default_store() is default_store()


class TestPassContext:
    def test_graph_defaults_to_loop_graph(self, ctx):
        assert ctx.graph is ctx.loop.graph

    def test_ideal_model_has_no_budget(self, paper_l3, store):
        ctx = PassContext(
            loop=example_loop(),
            machine=paper_l3,
            model=Model.IDEAL,
            register_budget=32,
            store=store,
        )
        assert ctx.budget is None

    def test_apply_spill_rewrites_graph(self, ctx):
        before = ctx.ddg_fingerprint
        victim = max(
            (op.op_id for op in ctx.graph.values()
             if ctx.graph.consumers(op.op_id)),
        )
        ctx.apply_spill(victim)
        assert ctx.ddg_fingerprint != before
        assert ctx.spilled_values == 1
        assert ctx.graph is not ctx.loop.graph

    def test_escalate_must_raise_ii(self, ctx):
        ctx.escalate(3)
        assert ctx.min_ii == 3
        assert ctx.ii_increases == 1
        with pytest.raises(ValueError, match="raise the II"):
            ctx.escalate(2)

    def test_mii_report_uses_pre_spill_graph(self, ctx):
        mii = ctx.mii_report.mii
        victim = next(
            op.op_id for op in ctx.graph.values()
            if ctx.graph.consumers(op.op_id)
        )
        ctx.apply_spill(victim)
        assert ctx.mii_report.mii == mii

    def test_requirement_tracks_model(self, paper_l3, store):
        ctx = PassContext(
            loop=example_loop(),
            machine=paper_l3,
            model=Model.PARTITIONED,
            store=store,
        )
        assert ctx.requirement.model is Model.PARTITIONED
        assert ctx.swap_result is not None  # SWAPPED artifact on demand

    def test_fingerprints_distinguish_loops(self, paper_l3, store):
        a = PassContext(
            loop=generate_loop(0), machine=paper_l3, store=store
        )
        b = PassContext(
            loop=generate_loop(1), machine=paper_l3, store=store
        )
        assert a.ddg_fingerprint != b.ddg_fingerprint
        assert graph_fingerprint(a.graph) == a.ddg_fingerprint
