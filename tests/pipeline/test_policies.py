"""Spill-victim policies and II-escalation strategies."""

import pytest

from repro.core.models import Model
from repro.machine.config import paper_config
from repro.pipeline.policies import (
    II_ESCALATIONS,
    SPILL_POLICIES,
    GeometricEscalation,
    IncrementEscalation,
    get_escalation,
    get_policy,
    pick_victim,
    register_policy,
    spillable_values,
)
from repro.regalloc.lifetimes import lifetimes
from repro.sched.modulo import modulo_schedule
from repro.spill.spiller import evaluate_loop
from repro.workloads.kernels import example_loop, make_kernel


@pytest.fixture(scope="module")
def schedule():
    return modulo_schedule(example_loop().graph, paper_config(3))


@pytest.fixture(scope="module")
def lts(schedule):
    return lifetimes(schedule)


class TestRegistry:
    def test_contains_paper_policy_and_alternatives(self):
        assert set(SPILL_POLICIES) >= {
            "longest",
            "most_registers",
            "first",
            "most_consumers",
            "least_traffic",
        }
        assert next(iter(SPILL_POLICIES)) == "longest"

    def test_names_match_keys(self):
        for name, policy in SPILL_POLICIES.items():
            assert policy.name == name
        for name, escalation in II_ESCALATIONS.items():
            assert escalation.name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="victim policy"):
            get_policy("nope")

    def test_unknown_escalation_rejected(self):
        with pytest.raises(ValueError, match="escalation"):
            get_escalation("nope")

    def test_register_policy_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_policy(SPILL_POLICIES["longest"])

    def test_register_custom_policy_usable_end_to_end(self, paper_l6):
        class SecondValue:
            name = "second_value_test_only"

            def select(self, schedule, lts):
                candidates = sorted(spillable_values(schedule.graph))
                if not candidates:
                    return None
                return candidates[min(1, len(candidates) - 1)]

        register_policy(SecondValue())
        try:
            ev = evaluate_loop(
                make_kernel("state_equation"),
                paper_l6,
                Model.UNIFIED,
                register_budget=16,
                victim_policy="second_value_test_only",
            )
            assert ev.fits
        finally:
            del SPILL_POLICIES["second_value_test_only"]


class TestSelection:
    def test_every_policy_returns_a_spillable_value(self, schedule, lts):
        candidates = set(spillable_values(schedule.graph))
        for name, policy in SPILL_POLICIES.items():
            victim = policy.select(schedule, lts)
            assert victim in candidates, name

    def test_longest_picks_highest_lifetime(self, schedule, lts):
        victim = pick_victim(schedule, "longest")
        best = max(lts[i].length for i in spillable_values(schedule.graph))
        assert lts[victim].length == best

    def test_first_picks_lowest_id(self, schedule):
        assert pick_victim(schedule, "first") == min(
            spillable_values(schedule.graph)
        )

    def test_most_consumers_maximizes_fanout(self, schedule, lts):
        graph = schedule.graph
        victim = pick_victim(schedule, "most_consumers")
        best = max(
            len(graph.consumers(i)) for i in spillable_values(graph)
        )
        assert len(graph.consumers(victim)) == best

    def test_least_traffic_minimizes_added_ops(self, schedule):
        graph = schedule.graph

        def added(i):
            return 1 + len({(c.op_id, d) for c, d in graph.consumers(i)})

        victim = pick_victim(schedule, "least_traffic")
        assert added(victim) == min(
            added(i) for i in spillable_values(graph)
        )

    def test_policies_deterministic(self, schedule, lts):
        for policy in SPILL_POLICIES.values():
            assert policy.select(schedule, lts) == policy.select(
                schedule, lts
            )

    def test_each_registered_policy_reaches_budget(self, paper_l6):
        """Every policy must drive the spill pipeline to convergence."""
        loop = make_kernel("state_equation")
        for name in SPILL_POLICIES:
            ev = evaluate_loop(
                loop,
                paper_l6,
                Model.UNIFIED,
                register_budget=16,
                victim_policy=name,
            )
            assert ev.fits, name
            assert ev.requirement.registers <= 16, name


class TestEscalation:
    def test_increment_steps_by_one(self):
        esc = IncrementEscalation()
        assert esc.next_ii(7) == 8
        assert not esc.give_up(7)
        assert esc.give_up(8)

    def test_geometric_grows_faster(self):
        esc = GeometricEscalation()
        assert esc.next_ii(1) == 2  # never stalls at small IIs
        assert esc.next_ii(10) == 15
        assert esc.give_up(4)

    def test_geometric_selectable_through_evaluate(self, paper_l6):
        loop = make_kernel("state_equation")
        paper = evaluate_loop(
            loop,
            paper_l6,
            Model.UNIFIED,
            register_budget=16,
            pressure_strategy="increase_ii",
        )
        geometric = evaluate_loop(
            loop,
            paper_l6,
            Model.UNIFIED,
            register_budget=16,
            pressure_strategy="increase_ii",
            ii_escalation="geometric",
        )
        # Both converge without spilling; geometric takes no more rounds.
        assert paper.spilled_values == geometric.spilled_values == 0
        assert geometric.ii_increases <= paper.ii_increases
        assert geometric.fits and paper.fits
