"""Pipeline composition and equivalence with the historical entry points."""

import pytest

from repro.core.models import Model
from repro.core.pressure import pressure_report
from repro.pipeline.context import ArtifactStore, PassContext
from repro.pipeline.passes import SpillLoop, SpillRound
from repro.pipeline.pipelines import (
    evaluation_pipeline,
    pressure_pipeline,
    run_evaluation,
    run_pressure,
)
from repro.spill.spiller import evaluate_loop
from repro.workloads.kernels import example_loop, make_kernel
from repro.workloads.synthetic import generate_loop


class TestComposition:
    def test_pressure_pipeline_shape(self):
        pipeline = pressure_pipeline()
        assert [p.name for p in pipeline.passes] == [
            "compute-mii",
            "modulo-schedule",
            "cluster-assign",
            "allocate-unified",
            "allocate-dual",
            "greedy-swap",
        ]
        assert "compute-mii -> modulo-schedule" in pipeline.describe()

    def test_evaluation_pipeline_shape(self):
        pipeline = evaluation_pipeline(
            victim_policy="most_consumers",
            ii_escalation="geometric",
            max_rounds=7,
        )
        loop_pass = pipeline.passes[-1]
        assert isinstance(loop_pass, SpillLoop)
        assert loop_pass.max_rounds == 7
        assert loop_pass.round.policy.name == "most_consumers"
        assert loop_pass.round.escalation.name == "geometric"

    def test_unknown_knobs_rejected_eagerly(self):
        with pytest.raises(ValueError, match="pressure strategy"):
            evaluation_pipeline(pressure_strategy="hope")
        with pytest.raises(ValueError, match="victim policy"):
            evaluation_pipeline(victim_policy="nope")
        with pytest.raises(ValueError, match="escalation"):
            evaluation_pipeline(ii_escalation="nope")

    def test_custom_pipeline_runs_spill_round_directly(self, paper_l6):
        from repro.pipeline.policies import get_escalation, get_policy

        ctx = PassContext(
            loop=make_kernel("state_equation"),
            machine=paper_l6,
            model=Model.UNIFIED,
            register_budget=16,
            store=ArtifactStore(),
        )
        round_ = SpillRound(
            policy=get_policy("longest"),
            escalation=get_escalation("increment"),
        )
        while not ctx.halted:
            round_.run(ctx)
        assert ctx.fits
        assert ctx.last_requirement.registers <= 16


class TestEquivalence:
    """The wrappers and the pipeline are the same computation."""

    def test_pressure_report_matches_run_pressure(self, paper_l6):
        loop = generate_loop(7)
        via_wrapper = pressure_report(loop, paper_l6)
        via_pipeline = run_pressure(loop, paper_l6, store=ArtifactStore())
        assert (
            via_wrapper.unified,
            via_wrapper.partitioned,
            via_wrapper.swapped,
            via_wrapper.mii,
            via_wrapper.max_live,
            via_wrapper.ii,
        ) == (
            via_pipeline.unified,
            via_pipeline.partitioned,
            via_pipeline.swapped,
            via_pipeline.mii,
            via_pipeline.max_live,
            via_pipeline.ii,
        )

    def test_evaluate_loop_matches_run_evaluation(self, paper_l6):
        loop = generate_loop(11)
        for model in (Model.UNIFIED, Model.SWAPPED):
            via_wrapper = evaluate_loop(
                loop, paper_l6, model, register_budget=24
            )
            via_pipeline = run_evaluation(
                loop,
                paper_l6,
                model,
                register_budget=24,
                store=ArtifactStore(),
            )
            assert (
                via_wrapper.ii,
                via_wrapper.spilled_values,
                via_wrapper.ii_increases,
                via_wrapper.fits,
                via_wrapper.requirement.registers,
            ) == (
                via_pipeline.ii,
                via_pipeline.spilled_values,
                via_pipeline.ii_increases,
                via_pipeline.fits,
                via_pipeline.requirement.registers,
            )

    def test_fresh_and_warm_store_agree(self, paper_l6):
        """A store hit must be bit-identical to a recomputation."""
        store = ArtifactStore()
        loop = generate_loop(3)
        first = run_evaluation(
            loop, paper_l6, Model.UNIFIED, register_budget=24, store=store
        )
        warm = run_evaluation(
            loop, paper_l6, Model.UNIFIED, register_budget=24, store=store
        )
        assert first.schedule is warm.schedule  # shared artifact
        assert first.requirement.registers == warm.requirement.registers
        assert store.stats.hits > 0


class TestMemoizationAcrossModels:
    def test_round0_schedule_computed_once_for_all_models(self, paper_l6):
        store = ArtifactStore()
        loop = generate_loop(5)
        for model in (
            Model.IDEAL,
            Model.UNIFIED,
            Model.PARTITIONED,
            Model.SWAPPED,
        ):
            run_evaluation(
                loop, paper_l6, model, register_budget=64, store=store
            )
        hits, misses = store.stats.by_kind["schedule"]
        # One schedule per distinct (graph, min_ii); the four models share
        # round 0.  Spill rounds may add more misses, but the four round-0
        # lookups collapse to one computation.
        assert misses < 4 or hits >= 3

    def test_pressure_and_evaluation_share_schedule(self, paper_l3):
        store = ArtifactStore()
        loop = example_loop()
        report = run_pressure(loop, paper_l3, store=store)
        evaluation = run_evaluation(
            loop, paper_l3, Model.UNIFIED, register_budget=None, store=store
        )
        assert report.schedule is evaluation.schedule
