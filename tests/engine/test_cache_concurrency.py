"""The disk cache as a shared backend: races, crashes, maintenance.

The serve shards (and any number of CLI invocations) mount one cache
directory concurrently; these tests pin the three contract points the
module docstring promises -- atomic publication (no torn reads), crash
recovery (``.tmp-*`` orphans and truncated entries degrade to
recomputation), and locked maintenance (prune/evict/clear are safe and
bounded).
"""

import json
import multiprocessing
import os
import time

import pytest

from repro.engine.cache import STALE_TMP_SECONDS, ResultCache
from repro.engine.jobs import execute_job, pressure_job
from repro.machine.config import paper_config
from repro.workloads.kernels import kernel_names, make_kernel


@pytest.fixture()
def machine():
    return paper_config(6)


@pytest.fixture()
def job(machine):
    return pressure_job(make_kernel("daxpy"), machine)


def _hammer(directory, kernel, rounds, out):
    """Subprocess body: write and read one key ``rounds`` times."""
    machine = paper_config(6)
    job = pressure_job(make_kernel(kernel), machine)
    result = execute_job(job)
    cache = ResultCache(directory=directory)
    torn = 0
    for _ in range(rounds):
        cache.put(job, result)
        # Bypass the in-memory tier: the race under test is disk-level.
        fresh = ResultCache(directory=directory)
        seen = fresh.get(job)
        if seen is not None and seen != result:
            torn += 1
    out.put((torn, cache.stats.corrupt))


class TestConcurrentWriters:
    def test_two_processes_same_key_never_tear(self, tmp_path, job):
        """Concurrent writers of one key: readers only ever see a full
        entry with the right payload (atomic rename publication)."""
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(
                target=_hammer, args=(tmp_path / "cache", "daxpy", 40, out)
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        reports = [out.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        for torn, corrupt in reports:
            assert torn == 0, "a reader saw a wrong-payload entry"
            assert corrupt == 0, "a reader saw a torn (unparseable) entry"
        # Exactly one published entry remains, and it round-trips.
        cache = ResultCache(directory=tmp_path / "cache")
        assert cache.entry_count() == 1
        assert cache.get(job) == execute_job(job)

    def test_concurrent_distinct_keys_all_land(self, tmp_path, machine):
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        kernels = list(kernel_names())[:2]
        procs = [
            ctx.Process(
                target=_hammer, args=(tmp_path / "cache", name, 10, out)
            )
            for name in kernels
        ]
        for p in procs:
            p.start()
        for _ in procs:
            out.get(timeout=120)
        for p in procs:
            p.join(timeout=60)
        cache = ResultCache(directory=tmp_path / "cache")
        assert cache.entry_count() == len(kernels)


class TestCrashRecovery:
    def test_truncated_entry_is_a_miss_then_self_heals(self, tmp_path, job):
        """A torn final file (crash between write and rename cannot produce
        one, but disk corruption can) degrades to a miss, is deleted, and
        the next put restores service."""
        cache = ResultCache(directory=tmp_path / "cache")
        result = execute_job(job)
        cache.put(job, result)
        path = cache._path(job.key)
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # tear it mid-JSON

        fresh = ResultCache(directory=tmp_path / "cache")
        assert fresh.get(job) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists(), "the torn entry must be retired"
        fresh.put(job, result)
        assert ResultCache(directory=tmp_path / "cache").get(job) == result

    def test_crash_mid_write_leaves_no_entry_and_tmp_is_reclaimed(
        self, tmp_path, job
    ):
        """Simulate a writer dying between mkstemp and os.replace: the
        orphan must never satisfy a lookup, and an aged orphan is swept."""
        cache = ResultCache(directory=tmp_path / "cache")
        result = execute_job(job)
        cache.put(job, result)  # lay the shard directory down
        shard = cache._path(job.key).parent
        orphan = shard / ".tmp-deadbeef.json"
        orphan.write_text('{"half": "a payload')
        assert ResultCache(directory=tmp_path / "cache").get(job) == result

        # Too young to sweep: an in-flight writer must not be raced.
        assert cache.clean_stale_tmp() == 0
        assert orphan.exists()
        # Age it past the stale horizon and it is debris.
        old = time.time() - STALE_TMP_SECONDS - 60
        os.utime(orphan, (old, old))
        assert cache.clean_stale_tmp() == 1
        assert not orphan.exists()

    def test_prune_sweeps_stale_tmp_too(self, tmp_path, job):
        cache = ResultCache(directory=tmp_path / "cache")
        cache.put(job, execute_job(job))
        shard = cache._path(job.key).parent
        orphan = shard / ".tmp-crashed.json"
        orphan.write_text("{}")
        old = time.time() - STALE_TMP_SECONDS - 60
        os.utime(orphan, (old, old))
        assert cache.prune() == 0  # the live entry survives
        assert not orphan.exists()


class TestMaintenance:
    def test_disk_usage_counts_entries_and_bytes(self, tmp_path, machine):
        cache = ResultCache(directory=tmp_path / "cache")
        assert cache.disk_usage() == {
            "directory": str(tmp_path / "cache"),
            "entries": 0,
            "bytes": 0,
        }
        for name in list(kernel_names())[:3]:
            job = pressure_job(make_kernel(name), machine)
            cache.put(job, execute_job(job))
        usage = cache.disk_usage()
        assert usage["entries"] == 3
        assert usage["bytes"] == cache.total_bytes() > 0

    def test_disk_usage_memory_only(self):
        assert ResultCache().disk_usage() == {
            "directory": None,
            "entries": 0,
            "bytes": 0,
        }

    def test_evict_over_size_drops_oldest_first(self, tmp_path, machine):
        cache = ResultCache(directory=tmp_path / "cache")
        jobs = [
            pressure_job(make_kernel(name), machine)
            for name in list(kernel_names())[:3]
        ]
        for age, job in enumerate(jobs):
            cache.put(job, execute_job(job))
            path = cache._path(job.key)
            stamp = time.time() - 1000 + age  # jobs[0] oldest on disk
            os.utime(path, (stamp, stamp))
        keep = cache._path(jobs[-1].key).stat().st_size
        removed = cache.evict_over_size(keep)
        assert removed == 2
        survivors = cache._disk_files()
        assert survivors == [cache._path(jobs[-1].key)]

    def test_evict_over_size_zero_clears_everything(self, tmp_path, job):
        cache = ResultCache(directory=tmp_path / "cache")
        cache.put(job, execute_job(job))
        assert cache.evict_over_size(0) == 1
        assert cache.entry_count() == 0

    def test_evict_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(directory=tmp_path).evict_over_size(-1)

    def test_evict_noop_when_under_budget(self, tmp_path, job):
        cache = ResultCache(directory=tmp_path / "cache")
        cache.put(job, execute_job(job))
        assert cache.evict_over_size(10**9) == 0
        assert cache.entry_count() == 1

    def test_maintenance_never_creates_the_directory(self, tmp_path):
        """Read-only uses on a mistyped path must not write anything."""
        missing = tmp_path / "no-such-cache"
        cache = ResultCache(directory=missing)
        assert cache.clear() == 0
        assert cache.prune() == 0
        assert cache.evict_over_size(0) == 0
        assert cache.clean_stale_tmp() == 0
        assert not missing.exists()

    def test_cli_stats_reports_usage(self, tmp_path, machine, capsys):
        from repro.__main__ import main as cli_main

        cache = ResultCache(directory=tmp_path / "cache")
        job = pressure_job(make_kernel("daxpy"), machine)
        cache.put(job, execute_job(job))
        code = cli_main(
            ["cache", "stats", "--cache-dir", str(tmp_path / "cache")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "entries:   1" in out
        assert str(tmp_path / "cache") in out

    def test_cli_prune_max_bytes_evicts(self, tmp_path, machine, capsys):
        from repro.__main__ import main as cli_main

        cache = ResultCache(directory=tmp_path / "cache")
        for name in list(kernel_names())[:3]:
            job = pressure_job(make_kernel(name), machine)
            cache.put(job, execute_job(job))
        code = cli_main(
            [
                "cache",
                "prune",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--max-bytes",
                "0",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "pruned 0" in out  # current-source entries are not orphans
        assert "evicted 3" in out
        assert cache.entry_count() == 0

    def test_concurrent_maintenance_is_serialized(self, tmp_path, machine):
        """Two processes pruning/evicting at once: every file is removed
        exactly once overall and both sweeps exit cleanly."""

        def sweep(directory, out):
            cache = ResultCache(directory=directory)
            out.put(cache.evict_over_size(0))

        cache = ResultCache(directory=tmp_path / "cache")
        for name in list(kernel_names())[:4]:
            job = pressure_job(make_kernel(name), machine)
            cache.put(job, execute_job(job))
        ctx = multiprocessing.get_context()
        out = ctx.Queue()
        procs = [
            ctx.Process(target=sweep, args=(tmp_path / "cache", out))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        removed = [out.get(timeout=60) for _ in procs]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert sum(removed) == 4
        assert cache.entry_count() == 0
