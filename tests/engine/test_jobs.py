"""Job construction, content fingerprints, and cross-process hash stability."""

import subprocess
import sys

import pytest

from repro.core.models import Model
from repro.engine.jobs import (
    EvalJob,
    evaluate_job,
    execute_job,
    graph_fingerprint,
    loop_fingerprint,
    machine_fingerprint,
    pressure_job,
)
from repro.ir.loop import Loop
from repro.machine.config import paper_config, pxly
from repro.workloads.kernels import example_loop, make_kernel
from repro.workloads.suite import quick_suite


class TestFingerprints:
    def test_rebuilt_loop_same_fingerprint(self):
        assert loop_fingerprint(example_loop()) == loop_fingerprint(
            example_loop()
        )

    def test_names_do_not_matter(self):
        loop = example_loop()
        renamed = Loop(
            name="something-else",
            graph=loop.graph.copy(name="other"),
            trip_count=loop.trip_count,
        )
        assert loop_fingerprint(loop) == loop_fingerprint(renamed)

    def test_trip_count_matters(self):
        assert loop_fingerprint(example_loop(trip_count=10)) != loop_fingerprint(
            example_loop(trip_count=20)
        )

    def test_different_kernels_differ(self):
        assert loop_fingerprint(make_kernel("daxpy")) != loop_fingerprint(
            make_kernel("dot_product")
        )

    def test_machine_fingerprint_structure_sensitive(self):
        assert machine_fingerprint(paper_config(3)) != machine_fingerprint(
            paper_config(6)
        )
        assert machine_fingerprint(paper_config(3)) != machine_fingerprint(
            pxly(2, 3)
        )

    def test_machine_fingerprint_name_insensitive(self):
        a = paper_config(3)
        b = paper_config(3)
        assert a.name == b.name
        assert machine_fingerprint(a) == machine_fingerprint(b)

    def test_suite_seed_changes_fingerprints(self):
        from repro.workloads.suite import perfect_club_like

        a = perfect_club_like(8, seed=1, include_kernels=False).loops
        b = perfect_club_like(8, seed=2, include_kernels=False).loops
        assert [loop_fingerprint(l) for l in a] != [
            loop_fingerprint(l) for l in b
        ]


class TestJobKeys:
    def test_kind_validated(self):
        with pytest.raises(ValueError):
            EvalJob(kind="bogus", loop=example_loop(), machine=paper_config(3))

    def test_model_validated(self):
        with pytest.raises(ValueError):
            EvalJob(
                kind="evaluate",
                loop=example_loop(),
                machine=paper_config(3),
                model="no-such-model",
            )

    def test_pressure_key_ignores_evaluate_options(self):
        loop, machine = example_loop(), paper_config(3)
        a = EvalJob(kind="pressure", loop=loop, machine=machine)
        b = EvalJob(
            kind="pressure", loop=loop, machine=machine, victim_policy="first"
        )
        assert a.key == b.key

    def test_evaluate_key_covers_options(self):
        loop, machine = example_loop(), paper_config(3)
        base = evaluate_job(loop, machine, Model.SWAPPED, 32)
        assert base.key != evaluate_job(loop, machine, Model.SWAPPED, 64).key
        assert base.key != evaluate_job(loop, machine, Model.UNIFIED, 32).key
        assert (
            base.key
            != evaluate_job(
                loop, machine, Model.SWAPPED, 32, victim_policy="first"
            ).key
        )

    def test_kind_separates_keys(self):
        loop, machine = example_loop(), paper_config(3)
        assert (
            pressure_job(loop, machine).key
            != evaluate_job(loop, machine, Model.UNIFIED, None).key
        )


STABILITY_SCRIPT = """
import sys
from repro.core.models import Model
from repro.engine.jobs import evaluate_job, pressure_job
from repro.machine.config import paper_config
from repro.workloads.suite import quick_suite

loops = list(quick_suite(12, seed=7))
machine = paper_config(6)
for loop in loops:
    print(pressure_job(loop, machine).key)
    print(evaluate_job(loop, machine, Model.SWAPPED, 32).key)
"""


class TestCrossProcessStability:
    def test_keys_stable_in_fresh_interpreter(self):
        """Keys must match across interpreters (hash randomization etc.)."""
        expected = []
        machine = paper_config(6)
        for loop in quick_suite(12, seed=7):
            expected.append(pressure_job(loop, machine).key)
            expected.append(
                evaluate_job(loop, machine, Model.SWAPPED, 32).key
            )
        result = subprocess.run(
            [sys.executable, "-c", STABILITY_SCRIPT],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.split() == expected


class TestExecuteJob:
    def test_pressure_matches_direct_report(self, paper_l6):
        from repro.core.pressure import pressure_report

        loop = make_kernel("daxpy")
        result = execute_job(pressure_job(loop, paper_l6))
        direct = pressure_report(loop, paper_l6)
        assert result.unified == direct.unified
        assert result.partitioned == direct.partitioned
        assert result.swapped == direct.swapped
        assert result.ii == direct.ii
        assert result.trip_count == loop.trip_count

    def test_evaluate_matches_direct_evaluation(self, paper_l6):
        from repro.spill.spiller import evaluate_loop

        loop = make_kernel("hydro_fragment")
        result = execute_job(evaluate_job(loop, paper_l6, Model.UNIFIED, 16))
        direct = evaluate_loop(loop, paper_l6, Model.UNIFIED, 16)
        assert result.ii == direct.ii
        assert result.cycles == direct.cycles
        assert result.spilled_values == direct.spilled_values
        assert result.fits == direct.fits
        assert result.memory_ops_per_iteration == direct.memory_ops_per_iteration
        assert result.traffic_density == pytest.approx(direct.traffic_density)
