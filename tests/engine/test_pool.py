"""Pool execution: serial/pooled equality, caching, ordering, ModelRun parity."""

import pytest

from repro.analysis.performance import run_model
from repro.core.models import Model
from repro.engine.cache import ResultCache
from repro.engine.jobs import evaluate_job, pressure_job
from repro.engine.pool import Engine, run_jobs, serial_engine
from repro.machine.config import paper_config
from repro.workloads.suite import quick_suite


@pytest.fixture(scope="module")
def machine():
    return paper_config(6)


@pytest.fixture(scope="module")
def loops():
    return list(quick_suite(10))


@pytest.fixture(scope="module")
def jobs(loops, machine):
    return [pressure_job(loop, machine) for loop in loops] + [
        evaluate_job(loop, machine, Model.SWAPPED, 24) for loop in loops
    ]


class TestRunJobs:
    def test_pool_equals_serial(self, jobs):
        serial = run_jobs(jobs, workers=0)
        pooled = run_jobs(jobs, workers=2)
        assert serial == pooled

    def test_results_in_job_order(self, jobs, loops):
        results = run_jobs(jobs, workers=2)
        assert [r.loop_name for r in results] == [
            loop.name for loop in loops
        ] * 2

    def test_negative_workers_rejected(self, jobs):
        with pytest.raises(ValueError):
            run_jobs(jobs, workers=-1)

    def test_duplicate_jobs_computed_once(self, machine, loops):
        cache = ResultCache(directory=None)
        jobs = [pressure_job(loops[0], machine) for _ in range(5)]
        results = run_jobs(jobs, workers=0, cache=cache)
        assert len(set(map(id, results))) <= 2  # one compute + cached reuse
        assert cache.stats.stores == 1  # duplicates are not re-stored
        assert len({r.unified for r in results}) == 1

    def test_progress_reports_every_job(self, jobs):
        seen = []
        run_jobs(jobs, workers=0, progress=lambda done, total: seen.append(
            (done, total)
        ))
        assert seen[-1] == (len(jobs), len(jobs))
        assert [d for d, _ in seen] == sorted(d for d, _ in seen)

    def test_cache_short_circuits_second_run(self, tmp_path, jobs):
        cache = ResultCache(directory=tmp_path / "c")
        cold = run_jobs(jobs, workers=2, cache=cache)
        assert cache.stats.misses == len(jobs)
        warm_cache = ResultCache(directory=tmp_path / "c")
        warm = run_jobs(jobs, workers=2, cache=warm_cache)
        assert warm_cache.stats.hits == len(jobs)
        assert warm_cache.stats.misses == 0
        assert cold == warm


class TestEngine:
    def test_run_model_matches_direct(self, loops, machine):
        engine = serial_engine()
        via_engine = engine.run_model(loops, machine, Model.UNIFIED, 24)
        direct = run_model(loops, machine, Model.UNIFIED, 24)
        assert via_engine.cycles == direct.cycles
        assert via_engine.total_spills == direct.total_spills
        assert via_engine.loops_spilled == direct.loops_spilled
        assert via_engine.loops_not_fitting == direct.loops_not_fitting

    def test_run_model_pooled_matches_serial(self, loops, machine):
        pooled = Engine(workers=2).run_model(loops, machine, Model.SWAPPED, 24)
        serial = Engine(workers=0).run_model(loops, machine, Model.SWAPPED, 24)
        assert pooled.evaluations == serial.evaluations

    def test_shared_engine_collapses_repeats(self, loops, machine):
        engine = serial_engine()
        engine.pressure_reports(loops, machine)
        before = engine.cache.stats.misses
        engine.pressure_reports(loops, machine)  # Figure 7 after Figure 6
        assert engine.cache.stats.misses == before
        assert engine.cache.stats.hits >= len(loops)

    def test_jobs_run_counter(self, loops, machine):
        engine = serial_engine()
        engine.pressure_reports(loops, machine)
        assert engine.jobs_run == len(loops)

    def test_worker_pool_reused_across_maps(self, loops, machine):
        with Engine(workers=2) as engine:
            engine.pressure_reports(loops, machine)
            first = engine._pool
            engine.run_model(loops, machine, Model.UNIFIED, 24)
            assert engine._pool is first is not None
        assert engine._pool is None  # context exit released the workers

    def test_serial_engine_spawns_no_pool(self, loops, machine):
        engine = serial_engine()
        engine.pressure_reports(loops, machine)
        assert engine._pool is None

    def test_all_hits_map_spawns_no_pool(self, loops, machine, tmp_path):
        cache = ResultCache(directory=tmp_path / "c")
        with Engine(workers=2, cache=cache) as cold:
            cold.pressure_reports(loops, machine)
        with Engine(
            workers=2, cache=ResultCache(directory=tmp_path / "c")
        ) as warm:
            warm.pressure_reports(loops, machine)
            assert warm.cache.stats.misses == 0
            assert warm._pool is None  # warm path must not pay worker startup


class TestChunkedDispatch:
    def test_execute_chunk_preserves_indices(self, jobs):
        from repro.engine.jobs import execute_job
        from repro.engine.pool import _execute_chunk

        chunk = list(enumerate(jobs[:4]))
        batch = _execute_chunk(chunk)
        assert [index for index, _ in batch] == [0, 1, 2, 3]
        for (index, result), job in zip(batch, jobs[:4]):
            assert result == execute_job(job)

    def test_explicit_chunksize_matches_serial(self, jobs):
        serial = run_jobs(jobs, workers=0)
        for chunksize in (1, 3, len(jobs)):
            chunked = run_jobs(jobs, workers=2, chunksize=chunksize)
            assert chunked == serial

    def test_progress_covers_every_job_when_chunked(self, jobs):
        seen = []
        run_jobs(
            jobs,
            workers=2,
            chunksize=4,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (len(jobs), len(jobs))
        assert [done for done, _ in seen] == list(range(1, len(jobs) + 1))
