"""Grid-batched execution: batched == per-point == legacy, bit for bit.

The batch tier moves sharing into the engine (one
:class:`repro.kernel.batch.LoopChain` per job group), so the differential
contract is stated here at the ``run_jobs`` boundary: the same job list
must produce the same :class:`JobResult` objects under every kernel tier,
over the golden Figure 8/9 bench grid and under every policy knob the
array path claims to support.
"""

from __future__ import annotations

import pytest

from repro import kernel
from repro.core.models import Model
from repro.core.swapping import SwapEstimator
from repro.engine.cache import ResultCache
from repro.engine.jobs import (
    batch_key,
    evaluate_job,
    execute_batch,
    execute_job,
    pressure_job,
)
from repro.engine.pool import _group_misses, run_jobs
from repro.bench import LATENCY, bench_grid
from repro.ir.loop import Loop
from repro.kernel import batch as kbatch
from repro.machine.config import paper_config, pxly
from repro.pipeline.policies import SPILL_POLICIES, SpillPolicy
from repro.workloads.suite import perfect_club_like


@pytest.fixture(scope="module")
def machine():
    return paper_config(LATENCY)


@pytest.fixture(scope="module")
def loops():
    return list(perfect_club_like(10))


@pytest.fixture(scope="module")
def grid_jobs(loops, machine):
    """The golden bench grid (Figures 8/9 shape) plus pressure points."""
    jobs = [
        evaluate_job(loop, mach, model, budget)
        for loop, mach, model, budget in bench_grid(loops, machine)
    ]
    jobs += [pressure_job(loop, machine) for loop in loops[:4]]
    jobs.append(
        pressure_job(
            loops[0], machine, swap_estimator=SwapEstimator.FIRSTFIT
        )
    )
    return jobs


def _tiers(jobs, tiers=("batch", "1", "0")):
    out = {}
    for tier in tiers:
        with kernel.use_kernels(tier):
            out[tier] = run_jobs(jobs, workers=0, cache=None)
    return out


class TestTierToggle:
    def test_tier_round_trip(self):
        prior = kernel.set_kernels("1")
        try:
            assert kernel.kernel_tier() == "1"
            assert kernel.kernels_enabled()
            assert not kernel.batch_enabled()
            assert kernel.set_kernels("batch") == "1"
            assert kernel.batch_enabled()
        finally:
            kernel.set_kernels(prior)

    def test_boolean_compatibility(self):
        with kernel.use_kernels(True):
            assert kernel.kernel_tier() == "batch"
        with kernel.use_kernels(False):
            assert kernel.kernel_tier() == "0"
            assert not kernel.kernels_enabled()

    def test_unknown_value_normalizes_to_batch(self):
        with kernel.use_kernels("2"):
            assert kernel.kernel_tier() == "batch"

    def test_use_kernels_restores_tier(self):
        before = kernel.kernel_tier()
        with kernel.use_kernels("0"):
            pass
        assert kernel.kernel_tier() == before


class TestDifferential:
    def test_golden_grid_identical_across_tiers(self, grid_jobs):
        out = _tiers(grid_jobs)
        assert out["batch"] == out["1"]
        assert out["1"] == out["0"]

    @pytest.mark.parametrize(
        "policy", ["first", "most_registers", "most_consumers", "least_traffic"]
    )
    def test_alternate_policies_identical(self, loops, machine, policy):
        jobs = [
            evaluate_job(
                loop, machine, Model.UNIFIED, 24, victim_policy=policy
            )
            for loop in loops[:4]
        ]
        out = _tiers(jobs)
        assert out["batch"] == out["1"] == out["0"]

    @pytest.mark.parametrize("escalation", ["increment", "geometric"])
    def test_increase_ii_strategy_identical(self, loops, escalation):
        machine = pxly(2, 6)
        jobs = [
            evaluate_job(
                loop,
                machine,
                Model.UNIFIED,
                16,
                pressure_strategy="increase_ii",
                ii_escalation=escalation,
            )
            for loop in loops[:4]
        ]
        out = _tiers(jobs)
        assert out["batch"] == out["1"] == out["0"]

    def test_execute_batch_matches_execute_job(self, loops, machine):
        loop = loops[0]
        jobs = [evaluate_job(loop, machine, Model.IDEAL, None)]
        for budget in (16, 32):
            for model in (Model.UNIFIED, Model.PARTITIONED, Model.SWAPPED):
                jobs.append(evaluate_job(loop, machine, model, budget))
        jobs.append(
            evaluate_job(
                loop,
                machine,
                Model.SWAPPED,
                24,
                swap_estimator=SwapEstimator.FIRSTFIT,
            )
        )
        jobs.append(pressure_job(loop, machine))
        assert len({batch_key(job) for job in jobs}) == 1
        assert execute_batch(jobs) == [execute_job(job) for job in jobs]


class TestDispatch:
    def test_serial_fallback_groups_batches(self, grid_jobs):
        """``workers=0`` rides the grouped path, results in job order."""
        with kernel.use_kernels("batch"):
            batched = run_jobs(grid_jobs, workers=0, cache=None)
        assert [r.loop_name for r in batched] == [
            job.loop.name for job in grid_jobs
        ]

    def test_groups_split_by_content_not_name(self, loops, machine):
        loop = loops[0]
        twin = Loop(
            name="twin", graph=loop.graph, trip_count=loop.trip_count + 7
        )
        jobs = [
            evaluate_job(loop, machine, Model.UNIFIED, 32),
            evaluate_job(loops[1], machine, Model.UNIFIED, 32),
            evaluate_job(twin, machine, Model.UNIFIED, 32),
        ]
        groups = _group_misses(list(enumerate(jobs)))
        # Same graph content (the twin) shares a group despite the
        # different name and trip count; a different loop does not.
        assert [len(g) for g in groups] == [2, 1]

    def test_warm_second_pass_hits_cache(self, grid_jobs):
        cache = ResultCache(directory=None)
        with kernel.use_kernels("batch"):
            first = run_jobs(grid_jobs, workers=0, cache=cache)
            lookups_before = cache.stats.lookups
            second = run_jobs(grid_jobs, workers=0, cache=cache)
        assert first == second
        assert cache.stats.hits >= lookups_before  # second pass: all hits

    def test_custom_policy_falls_back_per_job(self, loops, machine):
        class LowestId(SpillPolicy):
            name = "test-lowest-id"

            def select(self, schedule, lts):
                from repro.pipeline.policies import spillable_values

                candidates = spillable_values(schedule.graph)
                return min(candidates) if candidates else None

        assert not kbatch.supports("test-lowest-id", "spill")
        SPILL_POLICIES[LowestId.name] = LowestId()
        try:
            jobs = [
                evaluate_job(
                    loop,
                    machine,
                    Model.UNIFIED,
                    24,
                    victim_policy="test-lowest-id",
                )
                for loop in loops[:3]
            ]
            out = _tiers(jobs)
            assert out["batch"] == out["1"] == out["0"]
        finally:
            del SPILL_POLICIES[LowestId.name]


class TestChainSupports:
    def test_array_policies_supported(self):
        for policy in kbatch.ARRAY_POLICIES:
            assert kbatch.supports(policy, "spill")

    def test_increase_ii_supports_any_policy(self):
        assert kbatch.supports("anything", "increase_ii")

    def test_unsupported_policy_rejected_by_chain(self, loops, machine):
        with pytest.raises(ValueError, match="no array"):
            kbatch.LoopChain(
                loops[0].graph, machine, victim_policy="custom-policy"
            )
