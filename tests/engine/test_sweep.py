"""Sweep construction, execution, and aggregation."""

import pytest

from repro.core.models import Model
from repro.engine.jobs import EVALUATE, PRESSURE
from repro.engine.pool import Engine
from repro.engine.sweep import (
    NAMED_SWEEPS,
    SweepSpec,
    build_points,
    format_outcome,
    named_sweep,
    run_sweep,
)


class TestBuildPoints:
    def test_pressure_grid_size(self):
        spec = SweepSpec(kind=PRESSURE, n_loops=6, latencies=(3, 6))
        points = build_points(spec)
        assert len(points) == 6 * 2  # loops x machines

    def test_evaluate_grid_size(self):
        spec = SweepSpec(
            kind=EVALUATE,
            n_loops=5,
            latencies=(6,),
            budgets=(32, 64),
            models=(Model.UNIFIED, Model.SWAPPED),
        )
        points = build_points(spec)
        # 5 ideal baselines + 5 loops x 2 budgets x 2 models
        assert len(points) == 5 + 5 * 2 * 2

    def test_ideal_baseline_always_present(self):
        spec = SweepSpec(kind=EVALUATE, n_loops=4, latencies=(3,))
        points = build_points(spec)
        assert any(p.model == Model.IDEAL.value for p in points)

    def test_multiple_seeds_multiply_points(self):
        base = SweepSpec(kind=PRESSURE, n_loops=4, latencies=(3,))
        double = SweepSpec(
            kind=PRESSURE, n_loops=4, latencies=(3,), seeds=(1, 2)
        )
        assert len(build_points(double)) == 2 * len(build_points(base))

    def test_cluster_counts_produce_machines(self):
        spec = SweepSpec(
            kind=PRESSURE, n_loops=3, latencies=(3,), cluster_counts=(1, 2, 4)
        )
        machines = {p.machine for p in build_points(spec)}
        assert len(machines) == 3

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            SweepSpec(kind="bogus")


class TestNamedSweeps:
    def test_registry_names(self):
        assert {"pressure", "performance", "rf-size", "clusters"} <= set(
            NAMED_SWEEPS
        )

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="rf-size"):
            named_sweep("nope")

    def test_overrides_applied(self):
        spec = named_sweep("performance", n_loops=7, seeds=(3,))
        assert spec.n_loops == 7
        assert spec.seeds == (3,)


class TestRunSweep:
    @pytest.fixture(scope="class")
    def outcome(self):
        spec = SweepSpec(
            kind=EVALUATE,
            n_loops=6,
            latencies=(6,),
            budgets=(24,),
            models=(Model.UNIFIED, Model.PARTITIONED),
        )
        return run_sweep(spec, engine=Engine(workers=2))

    def test_every_point_resolved(self, outcome):
        assert all(p.result is not None for p in outcome.points)

    def test_throughput_positive(self, outcome):
        assert outcome.points_per_second > 0

    def test_report_renders(self, outcome):
        text = format_outcome(outcome)
        assert "paper-L6" in text
        assert "points" in text

    def test_aggregate_perf_bounded_by_ideal(self, outcome):
        rows = [
            line.split()
            for line in format_outcome(outcome).splitlines()
            if line.startswith("paper-L6")
        ]
        assert rows
        for row in rows:
            assert float(row[4]) <= 1.0 + 1e-9

    def test_pressure_sweep_renders(self):
        spec = SweepSpec(kind=PRESSURE, n_loops=5, latencies=(3,))
        outcome = run_sweep(spec, engine=Engine(workers=0))
        text = format_outcome(outcome)
        assert "mean unified" in text
