"""Result-cache behavior: hits, misses, persistence, corruption, LRU."""

import json

import pytest

from repro.core.models import Model
from repro.engine.cache import ResultCache
from repro.engine.jobs import evaluate_job, execute_job, pressure_job
from repro.machine.config import paper_config
from repro.workloads.kernels import make_kernel


@pytest.fixture()
def machine():
    return paper_config(6)


@pytest.fixture()
def job(machine):
    return pressure_job(make_kernel("daxpy"), machine)


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(directory=tmp_path / "cache")


class TestHitMiss:
    def test_empty_cache_misses(self, cache, job):
        assert cache.get(job) is None
        assert cache.stats.misses == 1

    def test_put_then_hit(self, cache, job):
        result = execute_job(job)
        cache.put(job, result)
        assert cache.get(job) == result
        assert cache.stats.hits == 1

    def test_persists_across_instances(self, tmp_path, job):
        first = ResultCache(directory=tmp_path / "c")
        result = execute_job(job)
        first.put(job, result)
        second = ResultCache(directory=tmp_path / "c")
        assert second.get(job) == result
        assert second.stats.hits == 1

    def test_distinct_jobs_distinct_entries(self, cache, machine):
        loop = make_kernel("daxpy")
        a = evaluate_job(loop, machine, Model.UNIFIED, 16)
        b = evaluate_job(loop, machine, Model.UNIFIED, 32)
        cache.put(a, execute_job(a))
        assert cache.get(b) is None
        assert cache.entry_count() == 1

    def test_memory_only_cache(self, job):
        cache = ResultCache(directory=None)
        result = execute_job(job)
        cache.put(job, result)
        assert cache.get(job) == result
        assert cache.entry_count() == 0


class TestCorruption:
    def _entry_path(self, cache, job):
        paths = list(cache.directory.glob("*/*.json"))
        assert len(paths) == 1
        return paths[0]

    def _fresh(self, cache):
        """Same directory, empty memory tier -- forces a disk read."""
        return ResultCache(directory=cache.directory)

    def test_garbage_json_is_a_miss_and_removed(self, cache, job):
        cache.put(job, execute_job(job))
        path = self._entry_path(cache, job)
        path.write_text("{ not json")
        fresh = self._fresh(cache)
        assert fresh.get(job) is None
        assert fresh.stats.corrupt == 1
        assert not path.exists()

    def test_key_mismatch_rejected(self, cache, job):
        cache.put(job, execute_job(job))
        path = self._entry_path(cache, job)
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        fresh = self._fresh(cache)
        assert fresh.get(job) is None
        assert fresh.stats.corrupt == 1

    def test_schema_mismatch_rejected(self, cache, job):
        cache.put(job, execute_job(job))
        path = self._entry_path(cache, job)
        payload = json.loads(path.read_text())
        payload["schema"] = -1
        path.write_text(json.dumps(payload))
        fresh = self._fresh(cache)
        assert fresh.get(job) is None
        assert fresh.stats.corrupt == 1

    def test_truncated_result_rejected(self, cache, job):
        cache.put(job, execute_job(job))
        path = self._entry_path(cache, job)
        payload = json.loads(path.read_text())
        del payload["result"]["unified"]
        path.write_text(json.dumps(payload))
        fresh = self._fresh(cache)
        assert fresh.get(job) is None
        assert fresh.stats.corrupt == 1

    def test_corrupt_entry_recomputed_and_restored(self, cache, job):
        result = execute_job(job)
        cache.put(job, result)
        path = self._entry_path(cache, job)
        path.write_text("junk")
        fresh = self._fresh(cache)
        assert fresh.get(job) is None
        fresh.put(job, result)
        assert self._fresh(cache).get(job) == result


class TestLruAndMaintenance:
    def test_memory_tier_bounded(self, machine):
        cache = ResultCache(directory=None, max_memory_entries=4)
        jobs = [
            evaluate_job(make_kernel("daxpy"), machine, Model.UNIFIED, budget)
            for budget in (8, 12, 16, 20, 24, 28)
        ]
        for j in jobs:
            cache.put(j, execute_job(j))
        assert len(cache._memory) == 4
        # Oldest entries were evicted; without a disk tier they miss.
        assert cache.get(jobs[0]) is None
        assert cache.get(jobs[-1]) is not None

    def test_clear(self, cache, job):
        cache.put(job, execute_job(job))
        assert cache.entry_count() == 1
        assert cache.clear() == 1
        assert cache.entry_count() == 0
        assert cache.get(job) is None

    def test_describe_mentions_directory(self, cache, job):
        cache.put(job, execute_job(job))
        text = cache.describe()
        assert str(cache.directory) in text
        assert "entries on disk : 1" in text

    def test_prune_removes_orphaned_sources_keeps_current(self, cache, job):
        cache.put(job, execute_job(job))
        current = list(cache.directory.glob("*/*.json"))[0]
        stale = current.parent / ("f" * 64 + ".json")
        payload = json.loads(current.read_text())
        payload["source"] = "0" * 64  # entry keyed by an edited codebase
        payload["key"] = "f" * 64
        stale.write_text(json.dumps(payload))
        assert cache.prune() == 1
        assert not stale.exists()
        assert current.exists()
        assert cache.get(job) is not None

    def test_prune_removes_old_schema_entries(self, cache, job):
        cache.put(job, execute_job(job))
        shard = list(cache.directory.glob("*/*.json"))[0].parent
        orphan = shard / ("e" * 64 + ".json")
        orphan.write_text('{"schema": -3, "key": "' + "e" * 64 + '"}')
        assert cache.prune() == 1
        assert not orphan.exists()
        assert cache.get(job) is not None  # current entry untouched
