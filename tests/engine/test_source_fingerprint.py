"""The source fingerprint: deterministic, temp-file-proof cache salting."""

from pathlib import Path

from repro.engine.jobs import source_fingerprint, tree_fingerprint


def _make_tree(root: Path) -> None:
    (root / "pkg").mkdir()
    (root / "pkg" / "a.py").write_text("A = 1\n")
    (root / "pkg" / "b.py").write_text("B = 2\n")
    (root / "top.py").write_text("TOP = 3\n")


class TestTreeFingerprint:
    def test_stable_across_walks(self, tmp_path):
        _make_tree(tmp_path)
        assert tree_fingerprint(tmp_path) == tree_fingerprint(tmp_path)

    def test_invariant_to_enumeration_order(self, tmp_path, monkeypatch):
        """The digest must not depend on the order rglob yields files."""
        _make_tree(tmp_path)
        forward = tree_fingerprint(tmp_path)

        original = Path.rglob

        def reversed_rglob(self, pattern):
            return reversed(list(original(self, pattern)))

        monkeypatch.setattr(Path, "rglob", reversed_rglob)
        assert tree_fingerprint(tmp_path) == forward

    def test_content_changes_digest(self, tmp_path):
        _make_tree(tmp_path)
        before = tree_fingerprint(tmp_path)
        (tmp_path / "pkg" / "a.py").write_text("A = 99\n")
        assert tree_fingerprint(tmp_path) != before

    def test_rename_changes_digest(self, tmp_path):
        _make_tree(tmp_path)
        before = tree_fingerprint(tmp_path)
        (tmp_path / "pkg" / "a.py").rename(tmp_path / "pkg" / "c.py")
        assert tree_fingerprint(tmp_path) != before

    def test_editor_temp_files_ignored(self, tmp_path):
        """Editor locks, hidden checkpoints, and bytecode caches must not
        churn the cache key while a sweep runs."""
        _make_tree(tmp_path)
        before = tree_fingerprint(tmp_path)
        (tmp_path / "pkg" / ".#a.py").write_text("emacs lock\n")
        (tmp_path / ".hidden.py").write_text("hidden\n")
        checkpoints = tmp_path / ".ipynb_checkpoints"
        checkpoints.mkdir()
        (checkpoints / "a.py").write_text("checkpoint\n")
        pycache = tmp_path / "pkg" / "__pycache__"
        pycache.mkdir()
        (pycache / "stale.py").write_text("cache\n")
        assert tree_fingerprint(tmp_path) == before

    def test_vanished_file_skipped_atomically(self, tmp_path, monkeypatch):
        """A file disappearing mid-walk contributes neither path nor
        content -- the digest equals a walk that never saw it."""
        _make_tree(tmp_path)
        without = tree_fingerprint(tmp_path)
        ghost = tmp_path / "pkg" / "ghost.py"
        ghost.write_text("G = 4\n")

        original = Path.read_bytes

        def flaky_read(self):
            if self.name == "ghost.py":
                raise OSError("vanished mid-walk")
            return original(self)

        monkeypatch.setattr(Path, "read_bytes", flaky_read)
        assert tree_fingerprint(tmp_path) == without


class TestSourceFingerprint:
    def test_cached_and_stable(self):
        assert source_fingerprint() == source_fingerprint()
        assert len(source_fingerprint()) == 64
