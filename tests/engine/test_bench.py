"""The ``repro bench`` driver: snapshot shape, CLI, regression gate."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main as cli_main
from repro.bench import (
    RATIO_TOLERANCES,
    SCENARIOS,
    SERVE_LOOPS,
    baseline_gaps,
    check_regression,
    format_snapshot,
    run_bench,
)


@pytest.fixture(scope="module")
def snapshot():
    return run_bench(
        n_loops=2,
        scenarios=("cold_kernel", "cold_batch", "cold_legacy", "warm"),
    )


class TestRunBench:
    def test_snapshot_shape(self, snapshot):
        assert set(snapshot) == {"meta", "scenarios", "ratios"}
        assert snapshot["meta"]["loops"] == 2
        for name in ("cold_kernel", "cold_batch", "cold_legacy", "warm"):
            data = snapshot["scenarios"][name]
            assert data["points"] == 2 * 7  # ideal + 2 budgets x 3 models
            assert data["seconds"] >= 0
        assert "kernel_speedup" in snapshot["ratios"]
        assert "batch_speedup" in snapshot["ratios"]
        assert "warm_speedup" in snapshot["ratios"]

    def test_batch_speedup_is_cold_over_batch(self, snapshot):
        expected = round(
            snapshot["scenarios"]["cold_kernel"]["seconds"]
            / snapshot["scenarios"]["cold_batch"]["seconds"],
            2,
        )
        assert snapshot["ratios"]["batch_speedup"] == expected

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown bench scenario"):
            run_bench(n_loops=1, scenarios=("nope",))

    def test_format_mentions_every_scenario(self, snapshot):
        text = format_snapshot(snapshot)
        for name in snapshot["scenarios"]:
            assert name in text
        assert "kernel_speedup" in text

    def test_dispatch_scenario_records_workers(self):
        snap = run_bench(n_loops=1, workers=0, scenarios=("dispatch",))
        assert snap["scenarios"]["dispatch"]["workers"] == 0
        assert snap["ratios"] == {}

    def test_simulate_scenario_is_informational(self):
        """The simulator timing rides along without a ratio, so an older
        baseline can never gate (or fail) on it."""
        snap = run_bench(n_loops=1, scenarios=("simulate",))
        assert snap["scenarios"]["simulate"]["points"] == 7
        assert snap["ratios"] == {}


class TestRegressionGate:
    def test_passes_within_tolerance(self, snapshot, tmp_path):
        baseline = dict(snapshot)
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        assert check_regression(snapshot, path, max_regression=0.25) == []

    def test_fails_on_regressed_ratio(self, snapshot, tmp_path):
        inflated = {
            "ratios": {
                "kernel_speedup": snapshot["ratios"]["kernel_speedup"] * 10
            }
        }
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(inflated))
        failures = check_regression(snapshot, path, max_regression=0.25)
        assert len(failures) == 1
        assert "kernel_speedup" in failures[0]

    def test_fails_on_scale_mismatch(self, snapshot, tmp_path):
        baseline = json.loads(json.dumps(snapshot))
        baseline["meta"]["loops"] = snapshot["meta"]["loops"] + 1
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        failures = check_regression(snapshot, path, max_regression=0.25)
        assert failures and "scale-dependent" in failures[0]

    def test_fails_on_missing_ratio(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"ratios": {"kernel_speedup": 2.0}}))
        failures = check_regression(
            {"ratios": {}}, path, max_regression=0.25
        )
        assert failures and "lacks the scenarios" in failures[0]

    def test_older_baseline_missing_new_scenario_passes(
        self, snapshot, tmp_path
    ):
        """A baseline predating cold_batch must not crash or fail the gate."""
        baseline = json.loads(json.dumps(snapshot))
        del baseline["scenarios"]["cold_batch"]
        del baseline["ratios"]["batch_speedup"]
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(baseline))
        assert check_regression(snapshot, path, max_regression=0.25) == []
        gaps = baseline_gaps(snapshot, path)
        assert any("cold_batch" in gap for gap in gaps)
        assert any("batch_speedup" in gap for gap in gaps)

    def test_no_gaps_against_matching_baseline(self, snapshot, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps(snapshot))
        assert baseline_gaps(snapshot, path) == []

    def test_serve_scaleout_uses_its_wider_tolerance(self, tmp_path):
        """A host-dependent ratio is gated with its per-ratio band, not
        the CLI's default, so a smaller runner cannot spuriously fail."""
        assert RATIO_TOLERANCES["serve_scaleout"] == 0.5
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"ratios": {"serve_scaleout": 6.0}}))
        # 45% down: over --max-regression 0.25 but inside the 50% band.
        ok = {"ratios": {"serve_scaleout": 3.3}}
        assert check_regression(ok, path, max_regression=0.25) == []
        # A collapsed ratio (the dispatcher or shared cache broke) fails.
        bad = {"ratios": {"serve_scaleout": 1.1}}
        failures = check_regression(bad, path, max_regression=0.25)
        assert failures and "serve_scaleout" in failures[0]
        assert "50%" in failures[0]

    def test_cli_flag_cannot_tighten_past_per_ratio_band(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"ratios": {"serve_scaleout": 6.0, "batch_speedup": 3.0}}
            )
        )
        snap = {"ratios": {"serve_scaleout": 3.3, "batch_speedup": 2.7}}
        # Strict CLI tolerance: batch_speedup still gates at 5%, while
        # serve_scaleout keeps its own 50% band.
        failures = check_regression(snap, path, max_regression=0.05)
        assert len(failures) == 1
        assert "batch_speedup" in failures[0]


class TestCli:
    def test_bench_subcommand_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = cli_main(
            [
                "bench",
                "--loops",
                "1",
                "--scenario",
                "cold_kernel",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        data = json.loads(out.read_text())
        assert data["scenarios"]["cold_kernel"]["points"] == 7
        assert "cold_kernel" in capsys.readouterr().out

    def test_bench_gate_exit_code(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"ratios": {"kernel_speedup": 1e9}}))
        code = cli_main(
            [
                "bench",
                "--loops",
                "1",
                "--scenario",
                "cold_kernel",
                "--scenario",
                "cold_legacy",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        assert "bench regression" in capsys.readouterr().err

    def test_scenario_registry_is_cli_choices(self):
        assert SCENARIOS == (
            "cold_kernel",
            "cold_batch",
            "cold_legacy",
            "warm",
            "dispatch",
            "simulate",
            "check",
            "serve_single",
            "serve_throughput",
        )

    def test_gate_notes_stale_baseline(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"ratios": {}}))
        code = cli_main(
            [
                "bench",
                "--loops",
                "1",
                "--scenario",
                "cold_kernel",
                "--scenario",
                "cold_batch",
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "bench note" in out
        assert "batch_speedup" in out
