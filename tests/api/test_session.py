"""Session semantics: numbers match the core, concurrency shares the cache."""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import (
    EvaluateRequest,
    ExperimentRequest,
    LoopSpec,
    MachineSpec,
    PressureRequest,
    ReportRequest,
    RequestValidationError,
    ScheduleRequest,
    Session,
    SweepRequest,
    UnknownExperimentError,
)
from repro.core.models import Model
from repro.engine.sweep import format_outcome, named_sweep, run_sweep
from repro.machine.config import paper_config
from repro.pipeline.pipelines import run_evaluation, run_pressure
from repro.workloads.kernels import make_kernel

DAXPY = LoopSpec(kind="kernel", name="daxpy")
HYDRO = LoopSpec(kind="kernel", name="hydro_fragment")


@pytest.fixture()
def session():
    with Session() as s:
        yield s


class TestNumbersMatchTheCore:
    def test_pressure_matches_direct_pipeline(self, session):
        response = session.pressure(PressureRequest(loop=DAXPY))
        direct = run_pressure(make_kernel("daxpy"), paper_config(3))
        assert (response.unified, response.partitioned, response.swapped) == (
            direct.unified,
            direct.partitioned,
            direct.swapped,
        )
        assert response.ii == direct.ii
        assert response.machine == paper_config(3).name

    def test_evaluate_matches_direct_pipeline(self, session):
        request = EvaluateRequest(
            loop=HYDRO, model="swapped", register_budget=16
        )
        response = session.evaluate(request)
        direct = run_evaluation(
            make_kernel("hydro_fragment"),
            paper_config(3),
            Model.SWAPPED,
            16,
        )
        assert response.ii == direct.ii
        assert response.spilled_values == direct.spilled_values
        assert response.fits == direct.fits
        assert response.registers_required == direct.requirement.registers

    def test_schedule_reports_shape(self, session):
        response = session.schedule(
            ScheduleRequest(
                loop=LoopSpec(kind="example"),
                machine=MachineSpec(kind="example"),
            )
        )
        assert response.ii == 1  # the paper's Section 4.1 example
        assert response.mii <= response.ii
        assert response.n_ops == 7  # L1 L2 M3 A4 M5 A6 S7
        assert response.kernel  # rendered kernel rides along

    def test_sweep_text_matches_direct_run(self, session):
        request = SweepRequest(name="rf-size", n_loops=3)
        response = session.sweep(request)
        direct = format_outcome(
            run_sweep(named_sweep("rf-size", n_loops=3))
        )
        # Strip the timing footer: wall seconds differ run to run.
        strip = lambda text: text[: text.rfind("points in")]  # noqa: E731
        assert strip(response.text) == strip(direct)
        assert len(response.headers) == len(response.rows[0])


class TestSessionDefaults:
    def test_default_machine_fills_none(self):
        with Session(machine=MachineSpec(kind="paper", latency=6)) as s:
            response = s.pressure(PressureRequest(loop=DAXPY))
        assert response.machine == paper_config(6).name

    def test_request_machine_overrides_default(self):
        with Session(machine=MachineSpec(kind="paper", latency=6)) as s:
            response = s.pressure(
                PressureRequest(loop=DAXPY, machine=MachineSpec(latency=3))
            )
        assert response.machine == paper_config(3).name

    def test_policy_defaults_ride_into_jobs(self):
        with Session(victim_policy="first") as s:
            response = s.evaluate(
                EvaluateRequest(loop=HYDRO, model="unified",
                                register_budget=8)
            )
            # Same request under an explicit matching policy: same key,
            # so the session's default demonstrably reached the job.
            explicit = s.evaluate(
                EvaluateRequest(loop=HYDRO, model="unified",
                                register_budget=8, victim_policy="first")
            )
        assert explicit.cached
        assert response.ii == explicit.ii

    def test_bad_session_default_fails_at_init(self):
        with pytest.raises(ValueError, match="victim policy"):
            Session(victim_policy="rng")


class TestDispatch:
    def test_submit_routes_by_type(self, session):
        response = session.submit(PressureRequest(loop=DAXPY))
        assert response.unified > 0

    def test_submit_rejects_foreign_types(self, session):
        with pytest.raises(RequestValidationError, match="unsupported"):
            session.submit(object())

    def test_submit_dict_is_wire_symmetric(self, session):
        request = PressureRequest(loop=DAXPY)
        out = session.submit_dict(request.to_dict())
        assert out["type"] == "pressure.response"
        assert out["unified"] == session.pressure(request).unified

    def test_unknown_experiment_surfaces(self, session):
        with pytest.raises(UnknownExperimentError):
            session.experiment(ExperimentRequest(name="figure0"))

    def test_experiment_params_validated_before_running(self, session):
        with pytest.raises(RequestValidationError, match="unknown param"):
            session.experiment(
                ExperimentRequest(name="figure6", params={"zoom": 2})
            )

    def test_stats_counts_requests(self, session):
        before = session.stats()["requests_served"]
        session.pressure(PressureRequest(loop=DAXPY))
        assert session.stats()["requests_served"] == before + 1


class TestConcurrency:
    def test_two_threads_share_one_cache(self, session):
        """Two clients of one session: one computes, the other hits."""
        request = EvaluateRequest(
            loop=HYDRO, model="partitioned", register_budget=16
        )
        barrier = threading.Barrier(2)

        def submit():
            barrier.wait()
            return session.evaluate(request)

        with ThreadPoolExecutor(max_workers=2) as pool:
            first, second = pool.map(
                lambda _: submit(), range(2)
            )
        # Identical numbers either way...
        assert first.ii == second.ii
        assert first.registers_required == second.registers_required
        # ...and exactly one of the two paid for them.
        assert sorted([first.cached, second.cached]) == [False, True]
        assert session.engine.cache.stats.hits >= 1

    def test_many_threads_many_requests_consistent(self, session):
        requests = [
            EvaluateRequest(loop=DAXPY, model=model, register_budget=budget)
            for model in ("unified", "partitioned", "swapped")
            for budget in (8, 16)
        ] * 3  # every point requested three times, interleaved
        with ThreadPoolExecutor(max_workers=4) as pool:
            responses = list(pool.map(session.evaluate, requests))
        by_key = {}
        for request, response in zip(requests, responses):
            key = (request.model, request.register_budget)
            by_key.setdefault(key, []).append(
                (response.ii, response.registers_required)
            )
        for key, values in by_key.items():
            assert len(set(values)) == 1, key
        # 6 distinct points, 18 requests: at least 12 were cache hits.
        assert session.engine.cache.stats.hits >= 12


class TestReport:
    def test_report_through_session(self, session, tmp_path):
        response = session.report(
            ReportRequest(
                n_loops=12,
                fmt="md",
                out_dir=str(tmp_path),
                include_text=True,
                stamp=False,
            )
        )
        assert response.checks_gated > 0
        assert response.summary.startswith("checks:")
        assert (tmp_path / "report.md").exists()
        assert response.text and "reproduction report" in response.text
        assert response.path == str(tmp_path / "report.md")
