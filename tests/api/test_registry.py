"""Registry integrity: discovery, schemas, and the suite-section contract."""

import json

import pytest

from repro.api import (
    EXPERIMENTS,
    Experiment,
    Param,
    RequestValidationError,
    UnknownExperimentError,
    capabilities,
    get_experiment,
    list_experiments,
    register_experiment,
    suite_sections,
)
from repro.engine.sweep import NAMED_SWEEPS
from repro.pipeline.policies import II_ESCALATIONS, SPILL_POLICIES

#: The historical hard-coded suite of ``python -m repro run``: the registry
#: must serve exactly these sections, in this order, under these titles --
#: that is what keeps the text report byte-identical across the refactor.
EXPECTED_SECTIONS = [
    ("example", "Tables 2/3/4 -- example loop"),
    ("table1", "Table 1 -- PxLy allocatable loops"),
    ("figure6", "Figure 6 -- static distributions"),
    ("figure7", "Figure 7 -- dynamic distributions"),
    ("figure8", "Figure 8 -- performance"),
    ("figure9", "Figure 9 -- traffic density"),
    ("cost", "Cost model -- Section 3.2"),
]


class TestDiscovery:
    def test_suite_sections_preserve_order_and_titles(self):
        assert [
            (name, title) for name, title, _ in suite_sections()
        ] == EXPECTED_SECTIONS

    def test_every_named_sweep_is_registered(self):
        registered = {e.name for e in list_experiments(kind="sweep")}
        assert registered == set(NAMED_SWEEPS)

    def test_suite_entry_exists(self):
        assert get_experiment("suite").kind == "suite"

    def test_list_filters_by_kind(self):
        for experiment in list_experiments(kind="experiment"):
            assert experiment.kind == "experiment"
        assert list_experiments() == list(EXPERIMENTS.values())

    def test_get_unknown_raises_with_known_names(self):
        with pytest.raises(UnknownExperimentError, match="figure6"):
            get_experiment("figure66")

    def test_describe_is_json_serializable(self):
        for experiment in list_experiments():
            record = json.loads(json.dumps(experiment.describe()))
            assert record["name"] == experiment.name
            assert {p["name"] for p in record["params"]} == {
                p.name for p in experiment.params
            }

    def test_capabilities_reflect_live_registries(self):
        caps = capabilities()
        assert caps["spill_policies"] == sorted(SPILL_POLICIES)
        assert caps["ii_escalations"] == sorted(II_ESCALATIONS)
        assert caps["sweeps"] == sorted(NAMED_SWEEPS)
        assert {e["name"] for e in caps["experiments"]} == set(EXPERIMENTS)
        json.dumps(caps)  # the serve discovery endpoint ships this verbatim

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_experiment(get_experiment("figure6"))


class TestParamSchemas:
    def test_unknown_param_rejected(self):
        with pytest.raises(RequestValidationError, match="unknown param"):
            get_experiment("figure6").validate({"loopz": 3})

    def test_type_mismatch_rejected(self):
        with pytest.raises(RequestValidationError, match="integer"):
            get_experiment("figure6").validate({"loops": "many"})
        with pytest.raises(RequestValidationError, match="integer"):
            get_experiment("figure6").validate({"loops": True})

    def test_minimum_enforced(self):
        with pytest.raises(RequestValidationError, match=">= 1"):
            get_experiment("figure6").validate({"loops": 0})

    def test_maximum_enforced(self):
        with pytest.raises(RequestValidationError, match="<="):
            get_experiment("figure6").validate({"loops": 10**8})
        with pytest.raises(RequestValidationError, match="<="):
            get_experiment("suite").validate({"spill_loops": 10**8})

    def test_choices_enforced(self):
        with pytest.raises(RequestValidationError, match="one of"):
            get_experiment("figure8").validate({"victim_policy": "dice"})

    def test_defaults_filled(self):
        validated = get_experiment("figure8").validate({})
        assert validated["loops"] == 200
        assert validated["victim_policy"] == "longest"

    def test_nullable_param_accepts_none(self):
        validated = get_experiment("suite").validate({"spill_loops": None})
        assert validated["spill_loops"] is None

    def test_non_nullable_param_rejects_none(self):
        with pytest.raises(RequestValidationError, match="null"):
            get_experiment("suite").validate({"loops": None})

    def test_param_describe_carries_constraints(self):
        param = Param(
            "p", "str", default="a", choices=("a", "b"), help="pick one"
        )
        record = param.describe()
        assert record["choices"] == ["a", "b"]
        assert param.coerce("a") == "a"
        with pytest.raises(RequestValidationError):
            param.coerce("c")


class TestExecution:
    def test_experiment_runs_and_formats_at_tiny_scale(self):
        experiment = get_experiment("table1")
        result = experiment.run(loops=6)
        text = experiment.format(result)
        assert "P2L6" in text

    def test_sweep_entry_runs_with_overrides(self):
        experiment = get_experiment("rf-size")
        outcome = experiment.run(loops=3, victim_policy="first")
        assert outcome.spec.n_loops == 3
        assert outcome.spec.victim_policies == ("first",)
        assert outcome.points

    def test_pressure_sweep_entry_has_no_spill_params(self):
        names = {p.name for p in get_experiment("pressure").params}
        assert "victim_policy" not in names
        assert "ii_escalation" not in names


def test_custom_registration_round_trip():
    experiment = Experiment(
        name="__test_probe__",
        kind="experiment",
        title="probe",
        description="registered by the test suite",
        params=(Param("n", "int", default=1, minimum=1),),
        runner=lambda engine=None, n=1: n * 2,
        formatter=lambda result: f"result={result}",
    )
    register_experiment(experiment)
    try:
        assert get_experiment("__test_probe__").run(n=3) == 6
        assert experiment.format(6) == "result=6"
        # Registered experiments surface in discovery immediately.
        assert "__test_probe__" in {
            e["name"] for e in capabilities()["experiments"]
        }
    finally:
        del EXPERIMENTS["__test_probe__"]
